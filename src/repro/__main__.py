"""Command-line interface: regenerate artifacts and run benchmarks.

Examples::

    python -m repro list                      # what can I run?
    python -m repro fig8 --jobs 4             # one figure, 4 worker procs
    python -m repro evaluate --scale 0.5      # every table & figure
    python -m repro all --quick --jobs 2      # everything + merged report
    python -m repro run 130.li --system smtx  # one benchmark, one system
    python -m repro run ispell --trace        # with a protocol trace summary
"""

from __future__ import annotations

# lint-file-ok: RL005 (subcommands lazily import their stacks so list/help stay fast)

import argparse
import json
import os
import pathlib
import sys
import time

from .experiments import (
    BenchmarkRunner,
    contention_spec,
    format_contention_sweep,
    format_fig1,
    format_fig2,
    format_fig5,
    format_fig8,
    format_fig9,
    format_table1,
    format_table3,
    run_contention_sweep,
    run_fig1,
    run_fig2,
    run_fig5,
    run_fig8,
    run_fig9,
    run_table1,
    run_table3,
)
from .experiments.fig2_smtx_rwset import fig2_spec
from .experiments.fig8_speedup import fig8_spec
from .experiments.fig9_setsizes import fig9_spec
from .experiments.table1_stats import table1_spec
from .experiments.table3_power import table3_spec
from .workloads.suite import BENCHMARK_NAMES

_QUICK_SCALE = 0.25
_DEFAULT_REPORT = "REPORT_sweep.json"

_ARTIFACTS = {
    "contention": lambda runner: format_contention_sweep(
        run_contention_sweep(scale=runner.scale, engine=runner.engine)),
    "fig1": lambda runner: format_fig1(run_fig1()),
    "fig2": lambda runner: format_fig2(run_fig2(runner=runner)),
    "fig5": lambda runner: format_fig5(run_fig5()),
    "fig8": lambda runner: format_fig8(run_fig8(runner=runner)),
    "fig9": lambda runner: format_fig9(run_fig9(runner=runner)),
    "table1": lambda runner: format_table1(run_table1(runner=runner)),
    "table3": lambda runner: format_table3(run_table3(runner=runner)),
}

#: Request lists per artifact, for batching ahead of the drivers.  An
#: artifact without an entry (fig1, fig5) runs no engine requests.
_SPECS = {
    "contention": lambda runner: contention_spec(runner.scale).requests,
    "fig2": lambda runner: fig2_spec(runner).requests,
    "fig8": lambda runner: fig8_spec(runner).requests,
    "fig9": lambda runner: fig9_spec(runner).requests,
    "table1": lambda runner: table1_spec(runner).requests,
    "table3": lambda runner: table3_spec(runner).requests,
}


def _prefetch(runner: BenchmarkRunner, names) -> None:
    """Batch every selected artifact's runs through the engine at once —
    with ``jobs > 1`` this is where the fan-out happens; the drivers then
    read back cache hits in spec order."""
    requests = []
    for name in names:
        if name in _SPECS:
            requests.extend(_SPECS[name](runner))
    if requests:
        runner.prefetch(requests)


def _cmd_list(_args) -> int:
    print("artifacts :", ", ".join(sorted(_ARTIFACTS)),
          "+ evaluate / all (everything)")
    print("benchmarks:", ", ".join(BENCHMARK_NAMES))
    print("systems   : sequential, hmtx, smtx-minimal, smtx-substantial,"
          " smtx-maximal, oracle")
    return 0


def _cmd_artifact(args) -> int:
    runner = BenchmarkRunner(scale=args.scale, jobs=args.jobs)
    names = sorted(_ARTIFACTS) if args.artifact == "evaluate" \
        else [args.artifact]
    start = time.time()
    _prefetch(runner, names)
    for name in names:
        print(_ARTIFACTS[name](runner))
        print()
    print(f"({time.time() - start:.0f}s at scale {args.scale}, "
          f"jobs {args.jobs})")
    return 0


def _cmd_all(args) -> int:
    """Every artifact through the sweep engine, plus a merged report.

    The report file is a deterministic function of (scale, code): wall
    times and job counts stay out of it, so ``--jobs N`` output is
    byte-identical to serial (the CI sweep-smoke job diffs exactly this).
    Wall timing can be appended to a separate bench file via
    ``--bench-output``.
    """
    scale = _QUICK_SCALE if args.quick else args.scale
    runner = BenchmarkRunner(scale=scale, jobs=args.jobs)
    names = sorted(_ARTIFACTS)
    start = time.perf_counter()  # lint-ok: RL008 (wall time is printed and routed to --bench-output only, never into the deterministic report)
    _prefetch(runner, names)
    artifacts = {name: _ARTIFACTS[name](runner) for name in names}
    wall = time.perf_counter() - start  # lint-ok: RL008 (same print-only timing as above)
    report = {
        "schema": "hmtx-sweep-report/1",
        "scale": scale,
        "artifacts": artifacts,
        "records": [record.to_report() for record in runner.records()],
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for name in names:
        print(artifacts[name])
        print()
    print(f"wrote {output} ({wall:.1f}s at scale {scale}, "
          f"jobs {args.jobs}, {os.cpu_count()} cpus)")
    if args.bench_output:
        _record_sweep_timing(pathlib.Path(args.bench_output), args, scale,
                             wall, runner.engine.spawn_overhead_seconds)
    return 0


def _record_sweep_timing(path: pathlib.Path, args, scale: float,
                         wall: float, spawn_overhead: float = 0.0) -> None:
    """Merge this invocation's wall time into the sweep bench file."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data.setdefault("schema", "hmtx-sweep-bench/1")
    data["cpus"] = os.cpu_count()
    mode = "quick" if args.quick else "full"
    section = data.setdefault("runs", {}).setdefault(mode, {})
    section[f"jobs-{args.jobs}"] = {
        "wall_seconds": round(wall, 2),
        "scale": scale,
        "spawn_overhead_seconds": round(spawn_overhead, 3),
    }
    serial = section.get("jobs-1", {}).get("wall_seconds")
    if serial:
        for key, run in section.items():
            run["speedup_vs_serial"] = round(serial / run["wall_seconds"], 2)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"recorded {mode}/jobs-{args.jobs} timing in {path}")


def _cmd_run(args) -> int:
    from .runtime.paradigms import run_sequential, run_workload
    from .smtx import ValidationMode, run_smtx
    from .workloads import executor_factory_for, make_benchmark

    workload = make_benchmark(args.benchmark, args.scale)
    executor_factory = executor_factory_for(workload)
    tracers = []
    system_factory = None
    if args.trace:
        from .core import HMTXSystem, MachineConfig
        from .trace import ProtocolTracer

        def system_factory():
            system = HMTXSystem(MachineConfig())
            tracers.append(ProtocolTracer.attach(system.hierarchy))
            return system

    if args.system == "sequential":
        result = run_sequential(workload, executor_factory=executor_factory,
                                system_factory=system_factory)
    elif args.system == "hmtx":
        result = run_workload(workload, executor_factory=executor_factory,
                              system_factory=system_factory)
    elif args.system.startswith("smtx"):
        mode = ValidationMode(args.system.split("-", 1)[1]) \
            if "-" in args.system else ValidationMode.MINIMAL
        result = run_smtx(workload, mode=mode,
                          executor_factory=executor_factory)
    else:
        print(f"unknown system {args.system!r}", file=sys.stderr)
        return 2
    stats = result.system.stats
    ok = workload.observed_result(result.system) == \
        workload.expected_result(result.system)
    print(f"{args.benchmark} on {args.system}: {result.cycles:,} cycles "
          f"({result.paradigm}); {stats.committed} transactions, "
          f"{stats.aborted} aborts; result "
          f"{'matches sequential semantics' if ok else '*** WRONG ***'}")
    if tracers:
        from .trace import format_summary
        print(format_summary(tracers[0].summary()))
        tracers[0].detach()
    if args.stats:
        from .experiments import stats_report
        print(stats_report(result))
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Hardware Multithreaded Transactions (ASPLOS 2018) "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list artifacts, benchmarks, systems")

    for name in sorted(_ARTIFACTS) + ["evaluate"]:
        p = sub.add_parser(name, help=f"regenerate {name}"
                           if name != "evaluate" else "regenerate everything")
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload size multiplier (default 1.0)")
        p.add_argument("--jobs", type=int, default=1,
                       help="sweep-engine worker processes (default 1)")
        p.set_defaults(artifact=name)

    p = sub.add_parser(
        "all", help="regenerate everything and write a merged JSON report")
    p.add_argument("--scale", type=float, default=1.0,
                   help="workload size multiplier (default 1.0)")
    p.add_argument("--quick", action="store_true",
                   help=f"reduced scale ({_QUICK_SCALE}) for CI smoke")
    p.add_argument("--jobs", type=int, default=1,
                   help="sweep-engine worker processes (default 1); the "
                        "report is byte-identical for every jobs value")
    p.add_argument("--output", default=_DEFAULT_REPORT,
                   help=f"merged report file (default {_DEFAULT_REPORT})")
    p.add_argument("--bench-output", default=None,
                   help="also record this invocation's wall time "
                        "(e.g. BENCH_sweep.json)")

    p = sub.add_parser(
        "bench", add_help=False,
        help="measure simulator wall-clock throughput (BENCH_hotpath.json)")
    p.set_defaults(command="bench")

    p = sub.add_parser(
        "analyze", add_help=False,
        help="model-check the protocol, racecheck backend traces, lint")
    p.set_defaults(command="analyze")

    p = sub.add_parser(
        "obs", add_help=False,
        help="observe one run: metrics, transaction timeline, cycle profile")
    p.set_defaults(command="obs")

    p = sub.add_parser(
        "svc", add_help=False,
        help="service workloads: tail-latency artifact, adversarial "
             "search, survivor replay")
    p.set_defaults(command="svc")

    p = sub.add_parser(
        "scaling", add_help=False,
        help="topology scaling sweep: sockets x cores presets, "
             "VID-reset storm curve (REPORT_scaling.json)")
    p.set_defaults(command="scaling")

    p = sub.add_parser("run", help="run one benchmark under one system")
    p.add_argument("benchmark", choices=BENCHMARK_NAMES)
    p.add_argument("--system", default="hmtx",
                   choices=["sequential", "hmtx", "smtx-minimal",
                            "smtx-substantial", "smtx-maximal"])
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--trace", action="store_true",
                   help="attach a protocol tracer and print its summary")
    p.add_argument("--stats", action="store_true",
                   help="print the full statistics dump")

    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["bench"]:
        # bench owns its full flag set (and --help) — hand over directly.
        from .experiments.bench import main as bench_main
        return bench_main(argv[1:])
    if argv[:1] == ["analyze"]:
        # analyze owns its full flag set (and --help) too.
        from .analysis.cli import main as analyze_main
        return analyze_main(argv[1:])
    if argv[:1] == ["obs"]:
        # obs owns its full flag set (and --help) too.
        from .obs.cli import main as obs_main
        return obs_main(argv[1:])
    if argv[:1] == ["svc"]:
        # svc owns its full flag set (and --help) too.
        from .svc.cli import main as svc_main
        return svc_main(argv[1:])
    if argv[:1] == ["scaling"]:
        # scaling owns its full flag set (and --help) too.
        from .experiments.scaling_sweep import main as scaling_main
        return scaling_main(argv[1:])
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "all":
        return _cmd_all(args)
    return _cmd_artifact(args)


if __name__ == "__main__":
    raise SystemExit(main())
