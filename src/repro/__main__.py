"""Command-line interface: regenerate artifacts and run benchmarks.

Examples::

    python -m repro list                      # what can I run?
    python -m repro fig8                      # one figure
    python -m repro evaluate --scale 0.5      # every table & figure
    python -m repro run 130.li --system smtx  # one benchmark, one system
    python -m repro run ispell --trace        # with a protocol trace summary
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (
    BenchmarkRunner,
    format_contention_sweep,
    format_fig1,
    format_fig2,
    format_fig5,
    format_fig8,
    format_fig9,
    format_table1,
    format_table3,
    run_contention_sweep,
    run_fig1,
    run_fig2,
    run_fig5,
    run_fig8,
    run_fig9,
    run_table1,
    run_table3,
)
from .workloads.suite import BENCHMARK_NAMES

_ARTIFACTS = {
    "contention": lambda runner: format_contention_sweep(
        run_contention_sweep()),
    "fig1": lambda runner: format_fig1(run_fig1()),
    "fig2": lambda runner: format_fig2(run_fig2(runner=runner)),
    "fig5": lambda runner: format_fig5(run_fig5()),
    "fig8": lambda runner: format_fig8(run_fig8(runner=runner)),
    "fig9": lambda runner: format_fig9(run_fig9(runner=runner)),
    "table1": lambda runner: format_table1(run_table1(runner=runner)),
    "table3": lambda runner: format_table3(run_table3(runner=runner)),
}


def _cmd_list(_args) -> int:
    print("artifacts :", ", ".join(sorted(_ARTIFACTS)), "+ evaluate (all)")
    print("benchmarks:", ", ".join(BENCHMARK_NAMES))
    print("systems   : sequential, hmtx, smtx-minimal, smtx-substantial,"
          " smtx-maximal")
    return 0


def _cmd_artifact(args) -> int:
    runner = BenchmarkRunner(scale=args.scale)
    names = sorted(_ARTIFACTS) if args.artifact == "evaluate" \
        else [args.artifact]
    start = time.time()
    for name in names:
        print(_ARTIFACTS[name](runner))
        print()
    print(f"({time.time() - start:.0f}s at scale {args.scale})")
    return 0


def _cmd_run(args) -> int:
    from .runtime.paradigms import run_sequential, run_workload
    from .smtx import ValidationMode, run_smtx
    from .workloads import executor_factory_for, make_benchmark

    workload = make_benchmark(args.benchmark, args.scale)
    executor_factory = executor_factory_for(workload)
    tracers = []
    system_factory = None
    if args.trace:
        from .core import HMTXSystem, MachineConfig
        from .trace import ProtocolTracer

        def system_factory():
            system = HMTXSystem(MachineConfig())
            tracers.append(ProtocolTracer.attach(system.hierarchy))
            return system

    if args.system == "sequential":
        result = run_sequential(workload, executor_factory=executor_factory,
                                system_factory=system_factory)
    elif args.system == "hmtx":
        result = run_workload(workload, executor_factory=executor_factory,
                              system_factory=system_factory)
    elif args.system.startswith("smtx"):
        mode = ValidationMode(args.system.split("-", 1)[1]) \
            if "-" in args.system else ValidationMode.MINIMAL
        result = run_smtx(workload, mode=mode,
                          executor_factory=executor_factory)
    else:
        print(f"unknown system {args.system!r}", file=sys.stderr)
        return 2
    stats = result.system.stats
    ok = workload.observed_result(result.system) == \
        workload.expected_result(result.system)
    print(f"{args.benchmark} on {args.system}: {result.cycles:,} cycles "
          f"({result.paradigm}); {stats.committed} transactions, "
          f"{stats.aborted} aborts; result "
          f"{'matches sequential semantics' if ok else '*** WRONG ***'}")
    if tracers:
        from .trace import format_summary
        print(format_summary(tracers[0].summary()))
        tracers[0].detach()
    if args.stats:
        from .experiments import stats_report
        print(stats_report(result))
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Hardware Multithreaded Transactions (ASPLOS 2018) "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list artifacts, benchmarks, systems")

    for name in sorted(_ARTIFACTS) + ["evaluate"]:
        p = sub.add_parser(name, help=f"regenerate {name}"
                           if name != "evaluate" else "regenerate everything")
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload size multiplier (default 1.0)")
        p.set_defaults(artifact=name)

    p = sub.add_parser(
        "bench", add_help=False,
        help="measure simulator wall-clock throughput (BENCH_hotpath.json)")
    p.set_defaults(command="bench")

    p = sub.add_parser("run", help="run one benchmark under one system")
    p.add_argument("benchmark", choices=BENCHMARK_NAMES)
    p.add_argument("--system", default="hmtx",
                   choices=["sequential", "hmtx", "smtx-minimal",
                            "smtx-substantial", "smtx-maximal"])
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--trace", action="store_true",
                   help="attach a protocol tracer and print its summary")
    p.add_argument("--stats", action="store_true",
                   help="print the full statistics dump")

    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["bench"]:
        # bench owns its full flag set (and --help) — hand over directly.
        from .experiments.bench import main as bench_main
        return bench_main(argv[1:])
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_artifact(args)


if __name__ == "__main__":
    raise SystemExit(main())
