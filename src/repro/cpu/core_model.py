"""Core execution model: charges cycles for ops and drives branch prediction.

The :class:`CoreExecutor` is the bridge between the instruction IR
(:mod:`repro.cpu.isa`) and the HMTX system.  It is deliberately simple — a
fixed cost per non-memory op, hierarchy-provided latency for memory ops, and
a mispredict penalty with wrong-path load side effects — because the paper's
phenomena live in the memory system, not in out-of-order scheduling detail.

Wrong-path loads are the one microarchitectural detail HMTX *does* depend
on (section 5.1): on a mispredicted branch, the loads listed on the op's
wrong path execute (moving data and, without SLAs, marking lines) before the
squash.  Their latency hides under the mispredict penalty, as it would in an
out-of-order core.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from .branch import BranchPredictor, CalibratedPredictor, GsharePredictor
from .isa import (
    AbortMTX,
    Arrive,
    BeginMTX,
    Branch,
    CommitMTX,
    InitMTX,
    Load,
    Op,
    OpCosts,
    Output,
    Store,
    Work,
)


@dataclass
class ExecStats:
    """Per-run instruction mix, for Table 1's branch columns."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0

    @property
    def branch_fraction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.branches / self.instructions

    @property
    def mispredict_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.mispredicts / self.branches


class CoreExecutor:
    """Executes IR ops for all threads of one simulated machine."""

    def __init__(self, system, costs: Optional[OpCosts] = None,
                 predictor_factory: Optional[Callable[[], BranchPredictor]] = None
                 ) -> None:
        self.system = system
        self.costs = costs or system.config.op_costs
        self._predictor_factory = predictor_factory or GsharePredictor
        self._predictors: Dict[int, BranchPredictor] = {}
        self._pc: Dict[int, int] = defaultdict(int)
        self.stats = ExecStats()

    def predictor(self, tid: int) -> BranchPredictor:
        if tid not in self._predictors:
            self._predictors[tid] = self._predictor_factory()
        return self._predictors[tid]

    def execute(self, tid: int, op: Op, now: int = 0) -> Tuple[Any, int]:
        """Execute ``op`` for thread ``tid`` at core-local time ``now``.

        Returns ``(value, latency_cycles)``; ``value`` is sent back into the
        workload generator (meaningful for :class:`Load`).
        May raise :class:`~repro.errors.MisspeculationError`.
        """
        stats = self.stats
        stats.instructions += 1
        self._pc[tid] += 4
        # Identity dispatch on the concrete op class (the ISA is a closed
        # set of final dataclasses), ordered by dynamic frequency.
        cls = op.__class__
        if cls is Work:
            cycles = op.cycles
            if cycles > 1:
                stats.instructions += cycles - 1
            return None, cycles * self.costs.work_unit
        if cls is Load:
            stats.loads += 1
            result = self.system.load(tid, op.addr, now=now)
            return result.value, result.latency
        if cls is Store:
            stats.stores += 1
            result = self.system.store(tid, op.addr, op.value, now=now)
            return None, result.latency
        if cls is Branch:
            return None, self._execute_branch(tid, op)
        if cls is Arrive:
            # Open-loop arrival: idle until the request's timestamp, or —
            # when the core is already past it — charge nothing and hand
            # the accumulated queue wait back to the generator.
            if op.ts > now:
                return 0, op.ts - now
            return now - op.ts, 0
        if cls is BeginMTX:
            return None, self.system.begin_mtx(tid, op.vid)
        if cls is CommitMTX:
            return None, self.system.commit_mtx(tid, op.vid)
        if cls is AbortMTX:
            return None, self.system.abort_mtx(tid, op.vid)
        if cls is InitMTX:
            return None, self.system.init_mtx(tid, op.handler)
        if cls is Output:
            self.system.output(tid, op.value)
            return None, 1
        raise TypeError(f"CoreExecutor cannot execute {op!r}")

    def _execute_branch(self, tid: int, op: Branch) -> int:  # hot-path
        predictor = self.predictor(tid)
        count = op.count
        stats = self.stats
        stats.branches += count
        stats.instructions += (count - 1) + op.work_cycles
        costs = self.costs
        latency = op.work_cycles + count * costs.branch
        # Fused predictor loops: when the op carries no wrong-path loads a
        # mispredict has no side effects, so predict() can be unrolled
        # inline with the table/history/stat updates batched.  The
        # per-branch state evolution (and therefore the mispredict stream)
        # is bit-identical to calling predict() per branch; ops *with*
        # wrong-path loads keep the exact original call sequence.
        if not op.wrong_path_loads:
            pcls = predictor.__class__
            if pcls is GsharePredictor:
                table = predictor._table
                history = predictor._history
                hmask = predictor._history_mask
                tmask = (1 << predictor.table_bits) - 1
                taken = op.taken
                tbit = 1 if taken else 0
                base_pc = self._pc[tid]
                mispredicts = 0
                penalty = costs.branch_mispredict_penalty
                for n in range(count):
                    index = (((base_pc + 4 * n) >> 2) ^ history) & tmask
                    counter = table[index]
                    if (counter >= 2) != taken:
                        mispredicts += 1
                        latency += penalty
                    if taken:
                        if counter < 3:
                            table[index] = counter + 1
                    elif counter > 0:
                        table[index] = counter - 1
                    history = ((history << 1) | tbit) & hmask
                predictor._history = history
                pstats = predictor.stats
                pstats.predictions += count
                pstats.mispredictions += mispredicts
                stats.mispredicts += mispredicts
                return latency
            if pcls is CalibratedPredictor:
                state = predictor._state
                rate = predictor.rate
                mispredicts = 0
                penalty = costs.branch_mispredict_penalty
                for _ in range(count):
                    state = (state * 6364136223846793005
                             + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
                    if (state >> 11) / 9007199254740992.0 < rate:
                        mispredicts += 1
                        latency += penalty
                predictor._state = state
                pstats = predictor.stats
                pstats.predictions += count
                pstats.mispredictions += mispredicts
                stats.mispredicts += mispredicts
                return latency
        for n in range(count):
            pc = self._pc[tid] + 4 * n
            if not predictor.predict(pc, op.taken):
                continue
            stats.mispredicts += 1
            latency += costs.branch_mispredict_penalty
            # Wrong-path loads execute before the squash; their cache
            # effects are real but their latency hides under the redirect
            # penalty.
            for addr in op.wrong_path_loads:
                self.system.wrong_path_load(tid, addr)
        return latency
