"""Interrupt and exception injection — section 5.2.

Long-running transactions must survive interrupts (context switches, timer
ticks) and exceptions (demand paging).  HMTX supports this by attaching VIDs
only to loads and stores whose PC falls inside the program's registered text
segment; handler code therefore performs *non-speculative* memory operations
that neither mark lines nor trigger misspeculation.

:class:`InterruptInjector` fires a handler every ``period`` cycles of a
core's execution.  The handler touches a configurable number of words in a
dedicated kernel region through the system's ``kernel_load``/``kernel_store``
interface (the PC-range mechanism) and charges its latency to the
interrupted thread — modelling preemption cost without perturbing
speculative state, which the test suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import MisspeculationError

KERNEL_REGION_BASE = 0x7F00_0000
"""Kernel data region; disjoint from every workload's address space."""


@dataclass
class InterruptInjector:
    """Periodic interrupt/exception model.

    Parameters
    ----------
    period:
        Cycles of per-core progress between interrupts; 0 disables.
    handler_accesses:
        Words the handler reads and writes per interrupt.
    handler_compute:
        Extra cycles of handler computation per interrupt.
    """

    period: int = 0
    handler_accesses: int = 8
    handler_compute: int = 200
    fired: int = field(default=0, init=False)
    #: Aborts this injector's handler accesses triggered (cause
    #: ``INTERRUPT`` in the txctl taxonomy): a handler store landed on
    #: live speculative state.  Zero in the default configuration, whose
    #: kernel region is disjoint from every workload — the section 5.2
    #: guarantee the test suite checks.
    aborts_caused: int = field(default=0, init=False)
    _next_fire: Dict[int, int] = field(default_factory=dict, init=False)

    def maybe_interrupt(self, system, tid: int, core: int, clock: int) -> int:
        """Fire the handler if ``core`` crossed its next interrupt point.

        Returns the cycles the handler consumed (0 when no interrupt).
        ``system`` duck-types :class:`~repro.core.system.HMTXSystem`.
        """
        if self.period <= 0:
            return 0
        due = self._next_fire.setdefault(core, self.period)
        if clock < due:
            return 0
        self._next_fire[core] = clock + self.period
        self.fired += 1
        latency = self.handler_compute
        base = KERNEL_REGION_BASE + core * 4096
        try:
            for i in range(self.handler_accesses):
                addr = base + 8 * i
                latency += system.kernel_load(tid, addr).latency
                latency += system.kernel_store(tid, addr, self.fired).latency
        except MisspeculationError:
            # The system already classified this as an INTERRUPT abort
            # and flushed speculative state; count it at the source too.
            self.aborts_caused += 1
            raise
        return latency
