"""Branch predictor models.

Branch misprediction matters to HMTX because wrong-path loads that already
executed would, naively, mark cache lines with their VID and later trigger
*false* misspeculations (section 5.1).  The evaluation's benchmarks have
mispredict rates between 0.245% and 5.59% (Table 1), so the predictor model
must produce a controllable, repeatable mispredict stream.

Two models are provided:

* :class:`GsharePredictor` — a real gshare (global history XOR PC indexing a
  2-bit counter table).  Used by protocol-level tests to get organic
  mispredict behaviour.
* :class:`CalibratedPredictor` — mispredicts at a configured rate using a
  deterministic LCG stream.  Used by the workload models so each benchmark
  reproduces its Table 1 mispredict rate exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PredictorStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def mispredict_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class BranchPredictor:
    """Interface: :meth:`predict` returns True when the branch mispredicts."""

    def __init__(self) -> None:
        self.stats = PredictorStats()

    def predict(self, pc: int, taken: bool) -> bool:
        raise NotImplementedError


class GsharePredictor(BranchPredictor):
    """Classic gshare: global-history XOR PC indexes 2-bit counters."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12) -> None:
        super().__init__()
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._table = [2] * (1 << table_bits)  # weakly taken
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def predict(self, pc: int, taken: bool) -> bool:
        index = ((pc >> 2) ^ self._history) & ((1 << self.table_bits) - 1)
        counter = self._table[index]
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        # Update the 2-bit saturating counter and global history.
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.stats.predictions += 1
        if mispredicted:
            self.stats.mispredictions += 1
        return mispredicted


class CalibratedPredictor(BranchPredictor):
    """Mispredicts at a fixed rate, deterministically.

    A 64-bit LCG drives the decision so runs are reproducible and the
    realised rate converges to ``rate`` (used to dial in each benchmark's
    Table 1 mispredict rate).
    """

    _LCG_MULT = 6364136223846793005
    _LCG_INC = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, rate: float, seed: int = 0xC0FFEE) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ValueError("mispredict rate must be in [0, 1]")
        self.rate = rate
        self._state = seed & self._MASK

    def _next_unit(self) -> float:
        self._state = (self._state * self._LCG_MULT + self._LCG_INC) & self._MASK
        return (self._state >> 11) / float(1 << 53)

    def predict(self, pc: int, taken: bool) -> bool:
        # _next_unit inlined: one call per simulated branch adds up.
        state = (self._state * self._LCG_MULT + self._LCG_INC) & self._MASK
        self._state = state
        mispredicted = (state >> 11) / 9007199254740992.0 < self.rate
        stats = self.stats
        stats.predictions += 1
        if mispredicted:
            stats.mispredictions += 1
        return mispredicted
