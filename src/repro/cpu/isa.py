"""Instruction IR executed by the simulated cores.

Workload programs are Python generators that *yield* these operations and
receive load results back (coroutine style), which lets value-dependent
control flow — pointer chasing, data-dependent branches — run against the
simulated memory exactly as the real benchmarks do against DRAM.

The MTX instructions mirror section 3.1 of the paper:

* :class:`BeginMTX` — ``beginMTX(VID)``: set the per-thread VID register;
  VID 0 returns to non-speculative execution *without* committing.
* :class:`CommitMTX` — ``commitMTX(VID)``: atomically group-commit the MTX.
* :class:`AbortMTX` — ``abortMTX(VID)``: software-triggered abort (e.g.
  control-flow misspeculation detected in a later pipeline stage).
* :class:`InitMTX` — ``initMTX(pc)``: register the recovery handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class Op:
    """Base class for all simulated operations."""


@dataclass(frozen=True)
class Load(Op):
    """Load the word at ``addr``; the generator receives the value."""

    addr: int


@dataclass(frozen=True)
class Store(Op):
    """Store ``value`` to the word at ``addr``."""

    addr: int
    value: int


@dataclass(frozen=True)
class Work(Op):
    """``cycles`` of pure computation (no memory traffic)."""

    cycles: int


@dataclass(frozen=True)
class Branch(Op):
    """A conditional branch (or a burst of them).

    ``taken`` is the architecturally correct outcome; the core's branch
    predictor guesses, and on a mispredict the pipeline executes
    ``wrong_path_loads`` — loads whose squashing is exactly what the SLA
    mechanism of section 5.1 must tolerate — before the penalty is paid and
    the correct path resumes.

    ``count`` folds a burst of ``count`` branches interleaved with
    ``work_cycles`` cycles of straight-line compute into one op, so
    branch-dense code regions keep the simulator's op count manageable
    while the predictor still sees every branch.
    """

    taken: bool
    wrong_path_loads: Tuple[int, ...] = field(default_factory=tuple)
    count: int = 1
    work_cycles: int = 0


@dataclass(frozen=True)
class Arrive(Op):
    """Open-loop request arrival: wait until simulated time ``ts``.

    Service workloads (:mod:`repro.svc`) attach a pre-computed arrival
    timestamp to each request so threads experience *queueing* rather
    than closed-loop lockstep: if the core reaches this op before
    ``ts``, it idles until the request exists; if it reaches it late,
    the op is free and the generator receives the accumulated queue
    wait (``now - ts``) as the op's value.  The op never touches the
    memory system, so it is speculation-neutral — replaying it after an
    abort just re-reads the (now past) arrival time.
    """

    ts: int


@dataclass(frozen=True)
class BeginMTX(Op):
    """``beginMTX(VID)``; VID 0 resumes non-speculative execution."""

    vid: int


@dataclass(frozen=True)
class CommitMTX(Op):
    """``commitMTX(VID)``: atomic group commit of the whole MTX."""

    vid: int


@dataclass(frozen=True)
class AbortMTX(Op):
    """``abortMTX(VID)``: software-detected misspeculation."""

    vid: int


@dataclass(frozen=True)
class InitMTX(Op):
    """``initMTX(pc)``: register recovery code for this thread."""

    handler: Any


@dataclass(frozen=True)
class Produce(Op):
    """Enqueue ``value`` on inter-thread queue ``queue`` (DSWP plumbing)."""

    queue: str
    value: Any


@dataclass(frozen=True)
class Consume(Op):
    """Dequeue from ``queue``; blocks until a value is available."""

    queue: str


@dataclass(frozen=True)
class Output(Op):
    """Program output, buffered until commit (section 4.7)."""

    value: Any


@dataclass
class OpCosts:
    """Base cycle costs of non-memory operations (Table 2 machine).

    Memory-op latency comes from the cache hierarchy; these are the
    front-end costs layered on top.
    """

    work_unit: int = 1
    branch: int = 1
    branch_mispredict_penalty: int = 14
    mtx_instruction: int = 2
    queue_op: int = 4


def format_trace(ops: List[Op], limit: Optional[int] = 20) -> str:
    """Pretty-print an op list (debugging/teaching aid)."""
    shown = ops if limit is None else ops[:limit]
    lines = [f"  {i:4d}: {op!r}" for i, op in enumerate(shown)]
    if limit is not None and len(ops) > limit:
        lines.append(f"  ... ({len(ops) - limit} more)")
    return "\n".join(lines)
