"""Instruction IR executed by the simulated cores.

Workload programs are Python generators that *yield* these operations and
receive load results back (coroutine style), which lets value-dependent
control flow — pointer chasing, data-dependent branches — run against the
simulated memory exactly as the real benchmarks do against DRAM.

The MTX instructions mirror section 3.1 of the paper:

* :class:`BeginMTX` — ``beginMTX(VID)``: set the per-thread VID register;
  VID 0 returns to non-speculative execution *without* committing.
* :class:`CommitMTX` — ``commitMTX(VID)``: atomically group-commit the MTX.
* :class:`AbortMTX` — ``abortMTX(VID)``: software-triggered abort (e.g.
  control-flow misspeculation detected in a later pipeline stage).
* :class:`InitMTX` — ``initMTX(pc)``: register the recovery handler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple


class Op:
    """Base class for all simulated operations.

    Ops are immutable-by-convention value objects.  They were frozen
    dataclasses originally, but a workload generator yields one object
    per simulated op, so construction cost is on the simulator's
    critical path — hand-written ``__slots__`` classes construct ~2-3x
    faster than ``@dataclass(frozen=True)`` (whose ``__init__`` routes
    every field write through ``object.__setattr__``).  Equality, hashing
    and ``repr`` keep the dataclass conventions.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        fields = ", ".join(f"{name}={getattr(self, name)!r}"
                           for name in self.__slots__)
        return f"{self.__class__.__name__}({fields})"

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in self.__slots__)

    def __hash__(self) -> int:
        return hash(tuple(getattr(self, name) for name in self.__slots__))


class Load(Op):
    """Load the word at ``addr``; the generator receives the value."""

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        self.addr = addr


class Store(Op):
    """Store ``value`` to the word at ``addr``."""

    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: int) -> None:
        self.addr = addr
        self.value = value


class Work(Op):
    """``cycles`` of pure computation (no memory traffic)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        self.cycles = cycles


class Branch(Op):
    """A conditional branch (or a burst of them).

    ``taken`` is the architecturally correct outcome; the core's branch
    predictor guesses, and on a mispredict the pipeline executes
    ``wrong_path_loads`` — loads whose squashing is exactly what the SLA
    mechanism of section 5.1 must tolerate — before the penalty is paid and
    the correct path resumes.

    ``count`` folds a burst of ``count`` branches interleaved with
    ``work_cycles`` cycles of straight-line compute into one op, so
    branch-dense code regions keep the simulator's op count manageable
    while the predictor still sees every branch.
    """

    __slots__ = ("taken", "wrong_path_loads", "count", "work_cycles")

    def __init__(self, taken: bool,
                 wrong_path_loads: Tuple[int, ...] = (),
                 count: int = 1, work_cycles: int = 0) -> None:
        self.taken = taken
        self.wrong_path_loads = wrong_path_loads
        self.count = count
        self.work_cycles = work_cycles


class Arrive(Op):
    """Open-loop request arrival: wait until simulated time ``ts``.

    Service workloads (:mod:`repro.svc`) attach a pre-computed arrival
    timestamp to each request so threads experience *queueing* rather
    than closed-loop lockstep: if the core reaches this op before
    ``ts``, it idles until the request exists; if it reaches it late,
    the op is free and the generator receives the accumulated queue
    wait (``now - ts``) as the op's value.  The op never touches the
    memory system, so it is speculation-neutral — replaying it after an
    abort just re-reads the (now past) arrival time.
    """

    __slots__ = ("ts",)

    def __init__(self, ts: int) -> None:
        self.ts = ts


class BeginMTX(Op):
    """``beginMTX(VID)``; VID 0 resumes non-speculative execution."""

    __slots__ = ("vid",)

    def __init__(self, vid: int) -> None:
        self.vid = vid


class CommitMTX(Op):
    """``commitMTX(VID)``: atomic group commit of the whole MTX."""

    __slots__ = ("vid",)

    def __init__(self, vid: int) -> None:
        self.vid = vid


class AbortMTX(Op):
    """``abortMTX(VID)``: software-detected misspeculation."""

    __slots__ = ("vid",)

    def __init__(self, vid: int) -> None:
        self.vid = vid


class InitMTX(Op):
    """``initMTX(pc)``: register recovery code for this thread."""

    __slots__ = ("handler",)

    def __init__(self, handler: Any) -> None:
        self.handler = handler


class Produce(Op):
    """Enqueue ``value`` on inter-thread queue ``queue`` (DSWP plumbing)."""

    __slots__ = ("queue", "value")

    def __init__(self, queue: str, value: Any) -> None:
        self.queue = queue
        self.value = value


class Consume(Op):
    """Dequeue from ``queue``; blocks until a value is available."""

    __slots__ = ("queue",)

    def __init__(self, queue: str) -> None:
        self.queue = queue


class Output(Op):
    """Program output, buffered until commit (section 4.7)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


@dataclass
class OpCosts:
    """Base cycle costs of non-memory operations (Table 2 machine).

    Memory-op latency comes from the cache hierarchy; these are the
    front-end costs layered on top.
    """

    work_unit: int = 1
    branch: int = 1
    branch_mispredict_penalty: int = 14
    mtx_instruction: int = 2
    queue_op: int = 4


def format_trace(ops: List[Op], limit: Optional[int] = 20) -> str:
    """Pretty-print an op list (debugging/teaching aid)."""
    shown = ops if limit is None else ops[:limit]
    lines = [f"  {i:4d}: {op!r}" for i, op in enumerate(shown)]
    if limit is not None and len(ops) > limit:
        lines.append(f"  ... ({len(ops) - limit} more)")
    return "\n".join(lines)
