"""CPU substrate: instruction IR, branch prediction, core timing, interrupts."""

from .branch import BranchPredictor, CalibratedPredictor, GsharePredictor, PredictorStats
from .core_model import CoreExecutor, ExecStats
from .interrupts import KERNEL_REGION_BASE, InterruptInjector
from .isa import (
    AbortMTX,
    BeginMTX,
    Branch,
    CommitMTX,
    Consume,
    InitMTX,
    Load,
    Op,
    OpCosts,
    Output,
    Produce,
    Store,
    Work,
    format_trace,
)

__all__ = [
    "AbortMTX",
    "BeginMTX",
    "Branch",
    "BranchPredictor",
    "CalibratedPredictor",
    "CommitMTX",
    "Consume",
    "CoreExecutor",
    "ExecStats",
    "GsharePredictor",
    "InitMTX",
    "InterruptInjector",
    "KERNEL_REGION_BASE",
    "Load",
    "Op",
    "OpCosts",
    "Output",
    "PredictorStats",
    "Produce",
    "Store",
    "Work",
    "format_trace",
]
