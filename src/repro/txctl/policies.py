"""Pluggable retry/backoff policies for abort recovery.

A policy answers one question: *given this classified abort, what should
the runtime do before the next attempt?*  The answer is a
:class:`RetryDecision` — retry speculatively (optionally after a backoff
delay), retry in serialised one-transaction-at-a-time mode, or give up on
speculation and take the non-speculative serial fallback.

The policies mirror the contention-management folklore of real HTM
deployments (the RTM fallback path classifies abort causes and delays
retry to avoid the lemming effect; hybrid-TM studies show this layer
dominates end-to-end throughput under contention):

* :class:`ImmediateRetry` — the seed runtime's behaviour: retry at once.
* :class:`ExponentialBackoff` — delay doubles per consecutive abort, with
  a deterministic jitter keyed by the aborting VID so distinct
  transactions desynchronise *reproducibly* (the simulator must stay
  bit-deterministic; real implementations use a PRNG here).
* :class:`CapacityAware` — capacity overflows are deterministic; a repeat
  capacity abort of the same transaction cannot succeed speculatively and
  goes straight to the fallback.
* :class:`LemmingAvoidance` — while the serial-fallback lock is held,
  speculative retries are pointless (they will conflict with the
  fallback's writes or immediately re-enter the fallback queue), so the
  retry is delayed until after the lock's expected hold time.

Policies are deterministic, stateless across runs (``reset()`` restores
pristine state), and composable: the cause-sensitive ones wrap an inner
policy that handles the transient causes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from .causes import AbortCause, AbortEvent


class Action(enum.Enum):
    """What the runtime does about an abort."""

    #: Re-run speculatively (after ``delay`` stall cycles).
    RETRY = "retry"
    #: Re-run speculatively but serialised: one transaction in flight.
    SERIALIZE = "serialize"
    #: Re-run non-speculatively under the global fallback lock.
    FALLBACK = "fallback"


@dataclass(frozen=True)
class RetryDecision:
    """A policy's verdict on one abort."""

    action: Action
    #: Cycles every core stalls before the next attempt (backoff).
    delay: int = 0
    #: Why the policy decided this (surfaces in stats/debugging).
    reason: str = ""


@dataclass(frozen=True)
class PolicyContext:
    """Runtime facts a policy may condition on."""

    #: Total recoveries so far in this run (1-based at first abort).
    attempt: int = 1
    #: Aborts this VID has suffered (including this one).
    vid_attempts: int = 1
    #: Aborts this VID has suffered *with this cause* (including this one).
    cause_attempts: int = 1
    #: Consecutive recoveries without a single commit of progress.
    no_progress: int = 0
    #: True while the serial-fallback global lock is held.
    fallback_lock_held: bool = False


class RetryPolicy:
    """Interface: map ``(event, context)`` to a :class:`RetryDecision`."""

    name = "policy"

    def decide(self, event: AbortEvent, ctx: PolicyContext) -> RetryDecision:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget per-run state (called when a manager is rebound)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ImmediateRetry(RetryPolicy):
    """Retry speculatively at once — the seed runtime's hard-coded loop."""

    name = "immediate"

    def decide(self, event: AbortEvent, ctx: PolicyContext) -> RetryDecision:
        return RetryDecision(Action.RETRY, 0, "immediate retry")


def deterministic_jitter(vid: int, attempt: int, spread: int) -> int:
    """Reproducible pseudo-random jitter in ``[0, spread)``.

    Keyed by the aborting VID (and the attempt number) through a Knuth
    multiplicative hash: two transactions that abort on the same line get
    *different* delays — breaking the retry convoy — yet every rerun of
    the simulation sees identical timing.
    """
    if spread <= 0:
        return 0
    h = (vid * 2654435761 + attempt * 40503) & 0xFFFFFFFF
    h ^= h >> 16
    return h % spread


class ExponentialBackoff(RetryPolicy):
    """Delay doubles per consecutive abort of the transaction, plus jitter.

    ``delay = min(ceiling, base * factor**(vid_attempts - 1)) + jitter``
    where ``jitter`` is deterministic in the VID (see
    :func:`deterministic_jitter`).
    """

    name = "backoff"

    def __init__(self, base: int = 32, factor: int = 2,
                 ceiling: int = 4096, jitter: Optional[int] = None) -> None:
        self.base = base
        self.factor = factor
        self.ceiling = ceiling
        #: Jitter spread; defaults to ``base`` (one quantum of spread).
        self.jitter = base if jitter is None else jitter

    def backoff_cycles(self, vid: int, attempts: int) -> int:
        exponent = min(max(attempts, 1) - 1, 20)  # clamp: no huge powers
        delay = min(self.ceiling, self.base * self.factor ** exponent)
        return delay + deterministic_jitter(vid, attempts, self.jitter)

    def decide(self, event: AbortEvent, ctx: PolicyContext) -> RetryDecision:
        delay = self.backoff_cycles(event.vid, ctx.vid_attempts)
        return RetryDecision(Action.RETRY, delay,
                             f"backoff attempt {ctx.vid_attempts}")


class CapacityAware(RetryPolicy):
    """No speculative retry on repeat capacity aborts — they cannot succeed.

    A capacity overflow (section 5.4) is a function of the transaction's
    write-set footprint, not of interleaving: the same speculative
    execution will evict the same version past the LLC again.  The first
    capacity abort is retried once (commits by *other* transactions may
    have released cache space); a repeat goes straight to the
    non-speculative fallback, which has no footprint limit.  Transient
    causes delegate to ``inner``.
    """

    name = "capacity-aware"

    def __init__(self, inner: Optional[RetryPolicy] = None,
                 max_capacity_attempts: int = 1) -> None:
        self.inner = inner or ExponentialBackoff()
        self.max_capacity_attempts = max_capacity_attempts

    def decide(self, event: AbortEvent, ctx: PolicyContext) -> RetryDecision:
        if event.cause is AbortCause.CAPACITY_OVERFLOW \
                and ctx.cause_attempts > self.max_capacity_attempts:
            return RetryDecision(
                Action.FALLBACK, 0,
                f"VID {event.vid} capacity abort x{ctx.cause_attempts}: "
                "speculative retry cannot succeed")
        return self.inner.decide(event, ctx)

    def reset(self) -> None:
        self.inner.reset()


class LemmingAvoidance(RetryPolicy):
    """Delay speculative retry while the fallback lock is held.

    The classic HTM *lemming effect*: one thread takes the serial
    fallback, every speculative retry conflicts with it (or observes the
    lock held and aborts), falls back too, and the system never leaves
    serial mode.  The cure is the same as on real hardware: while the
    lock is held, wait it out — retry only after the expected hold time —
    so speculation resumes once the fallback drains.
    """

    name = "lemming"

    def __init__(self, inner: Optional[RetryPolicy] = None,
                 lock_hold_estimate: int = 2048) -> None:
        self.inner = inner or ExponentialBackoff()
        self.lock_hold_estimate = lock_hold_estimate

    def decide(self, event: AbortEvent, ctx: PolicyContext) -> RetryDecision:
        if ctx.fallback_lock_held:
            delay = self.lock_hold_estimate + deterministic_jitter(
                event.vid, ctx.attempt, self.lock_hold_estimate // 4)
            return RetryDecision(Action.RETRY, delay,
                                 "fallback lock held: delayed retry")
        return self.inner.decide(event, ctx)

    def reset(self) -> None:
        self.inner.reset()


#: Name -> constructor for the experiment sweep and the CLI.
POLICIES: Dict[str, type] = {
    ImmediateRetry.name: ImmediateRetry,
    ExponentialBackoff.name: ExponentialBackoff,
    CapacityAware.name: CapacityAware,
    LemmingAvoidance.name: LemmingAvoidance,
}


def make_policy(name: str) -> RetryPolicy:
    """Instantiate a policy by registry name (CLI / sweep plumbing)."""
    if name not in POLICIES:
        raise ValueError(f"unknown retry policy {name!r}; "
                         f"choose from {sorted(POLICIES)}")
    return POLICIES[name]()
