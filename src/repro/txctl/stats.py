"""Per-VID / per-cause contention statistics.

One :class:`ContentionStats` instance rides inside
:class:`~repro.core.stats.SystemStats` (``stats.contention``), so every
abort the system records is broken down by :class:`~repro.txctl.causes.
AbortCause` and by the VID that detected it, and every recovery decision
the :class:`~repro.txctl.manager.ContentionManager` takes is counted.
``experiments/table1_stats.py`` and ``experiments/contention_sweep.py``
report these columns; ``experiments/statsdump.py`` dumps them raw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .causes import AbortCause, AbortEvent


@dataclass
class ContentionStats:
    """Abort-cause and recovery-decision counters for one system run."""

    #: Total classified aborts (matches ``SystemStats.aborted`` when every
    #: abort goes through the classifying paths).
    aborts: int = 0
    #: Abort counts keyed by cause value (``"conflict"``, ``"capacity"``…).
    by_cause: Dict[str, int] = field(default_factory=dict)
    #: Abort counts keyed by the detecting VID.
    by_vid: Dict[int, int] = field(default_factory=dict)
    #: Abort counts keyed by ``(vid, cause value)`` — the repeat-capacity
    #: detection of :class:`~repro.txctl.policies.CapacityAware` reads this.
    by_vid_cause: Dict[Tuple[int, str], int] = field(default_factory=dict)
    #: Speculative retries granted by the active policy.
    retries: int = 0
    #: Total delay cycles injected by backoff decisions.
    backoff_cycles: int = 0
    #: Recoveries restarted in serialised (one-TX-in-flight) mode.
    serialized_recoveries: int = 0
    #: Times the runtime entered the non-speculative serial fallback.
    fallback_entries: int = 0
    #: Iterations completed under the serial fallback's global lock.
    fallback_iterations: int = 0
    #: Escalations announced by the livelock detector, keyed by level name.
    escalations: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_abort(self, vid: int, cause: AbortCause) -> None:
        self.aborts += 1
        key = cause.value
        self.by_cause[key] = self.by_cause.get(key, 0) + 1
        self.by_vid[vid] = self.by_vid.get(vid, 0) + 1
        vc = (vid, key)
        self.by_vid_cause[vc] = self.by_vid_cause.get(vc, 0) + 1

    def record_event(self, event: AbortEvent) -> None:
        self.record_abort(event.vid, event.cause)

    def record_escalation(self, level_name: str) -> None:
        self.escalations[level_name] = self.escalations.get(level_name, 0) + 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def cause_count(self, cause: AbortCause) -> int:
        return self.by_cause.get(cause.value, 0)

    def vid_cause_count(self, vid: int, cause: AbortCause) -> int:
        return self.by_vid_cause.get((vid, cause.value), 0)

    def cause_summary(self) -> str:
        """Compact ``cause=count`` listing in taxonomy order, for tables."""
        parts = []
        for cause in AbortCause:
            count = self.by_cause.get(cause.value, 0)
            if count:
                parts.append(f"{cause.value}={count}")
        return " ".join(parts) if parts else "-"
