"""Serial fallback: guaranteed forward progress without speculation.

After repeated failed speculative attempts, the runtime re-executes the
remaining hot-loop iterations *non-speculatively* — the whole-body
``sequential_iteration`` fragments, VID 0, single thread — under a global
fallback lock.  This is the software fallback path every best-effort HTM
must provide: non-speculative execution has no conflict window (nothing
else runs) and no footprint limit (plain ``M`` lines write back to memory
freely), so it completes workloads that can *never* succeed speculatively,
such as a transaction whose write set exceeds the cache hierarchy
(section 5.4's deterministic overflow aborts).

MTX atomicity is preserved across the switch: the abort that triggered
the fallback already rolled every cache back to the last *committed*
state (section 4.4's all-or-nothing abort), the fallback resumes at
iteration ``stats.committed`` recomputing register state from committed
memory (``recover_carry``), and no speculative work runs concurrently —
the lock holder is the only live thread.  An iteration is therefore
either fully visible (committed speculatively, or completed by the
fallback's in-order non-speculative writes) or not at all.

The :class:`FallbackLock` is observable (``held``/``holder``) so the
:class:`~repro.txctl.policies.LemmingAvoidance` policy can delay
speculative retries while a fallback drains.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..cpu.isa import Op, Work

Program = Generator[Op, Any, None]


class FallbackLock:
    """The global serial-execution lock (observable test-and-set)."""

    def __init__(self) -> None:
        self.holder: Optional[int] = None
        self.acquisitions = 0

    @property
    def held(self) -> bool:
        return self.holder is not None

    def acquire(self, tid: int) -> None:
        if self.holder is not None:
            raise RuntimeError(
                f"fallback lock already held by thread {self.holder}")
        self.holder = tid
        self.acquisitions += 1

    def release(self, tid: int) -> None:
        if self.holder != tid:
            raise RuntimeError(
                f"thread {tid} releasing fallback lock held by {self.holder}")
        self.holder = None


class SerialFallback:
    """Builds and accounts for non-speculative serial re-execution.

    Parameters
    ----------
    lock_acquire_cycles / lock_release_cycles:
        Cost of the global lock handshake (an uncontended atomic RMW plus
        fence on acquire; a store-release on release).
    """

    def __init__(self, lock_acquire_cycles: int = 40,
                 lock_release_cycles: int = 10,
                 lock: Optional[FallbackLock] = None) -> None:
        self.lock_acquire_cycles = lock_acquire_cycles
        self.lock_release_cycles = lock_release_cycles
        self.lock = lock or FallbackLock()
        #: Completed fallback executions (lock acquire..release spans).
        self.executions = 0

    # ------------------------------------------------------------------

    def program(self, system, workload, tid: int = 0,
                stats=None) -> Program:
        """One-thread program running iterations ``committed..n`` at VID 0.

        ``system`` duck-types :class:`~repro.core.system.HMTXSystem`;
        ``workload`` is any :class:`~repro.workloads.base.Workload`.
        ``stats`` (a :class:`~repro.txctl.stats.ContentionStats`) receives
        per-iteration accounting when provided.
        """
        def body() -> Program:
            self.lock.acquire(tid)
            try:
                yield Work(self.lock_acquire_cycles)
                start = system.stats.committed
                carry = (workload.recover_carry(system, start) if start
                         else workload.initial_carry(system))
                for i in range(start, workload.iterations):
                    carry = yield from workload.sequential_iteration(i, carry)
                    if stats is not None:
                        stats.fallback_iterations += 1
                yield Work(self.lock_release_cycles)
            finally:
                self.lock.release(tid)
                self.executions += 1
        return body()

    @staticmethod
    def idle_program() -> Program:
        """A program for the non-lock-holding threads: park immediately."""
        return
        yield  # pragma: no cover - makes this function a generator
