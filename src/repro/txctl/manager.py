"""The :class:`ContentionManager` facade: policy + detector + fallback.

This is the one object the runtime talks to.  On every abort the paradigm
executors (:mod:`repro.runtime.paradigms`) hand the manager the raised
:class:`~repro.errors.MisspeculationError`; the manager classifies it
(:mod:`~repro.txctl.causes`), records per-VID/per-cause statistics
(:mod:`~repro.txctl.stats`), updates the livelock detector
(:mod:`~repro.txctl.livelock`), consults the configured retry policy
(:mod:`~repro.txctl.policies`), and returns a single
:class:`~repro.txctl.policies.RetryDecision` the runtime executes:

* ``RETRY``     — rebuild speculative programs (stall ``delay`` first);
* ``SERIALIZE`` — rebuild in one-transaction-in-flight mode;
* ``FALLBACK``  — run the rest of the loop non-speculatively under the
  global lock (:mod:`~repro.txctl.fallback`).

The manager enforces the escalation contract: decisions are monotone
(once serialised, never back to free-running speculation; once fallen
back, done), livelock escalates instead of raising, and the hard recovery
bound ends in the fallback — or, only when the fallback is explicitly
disabled, in a typed :class:`~repro.errors.LivelockError` that names the
offending VID and the recovery count.
"""

from __future__ import annotations

from typing import Optional

from ..errors import LivelockError
from .causes import AbortEvent, event_from_exception
from .fallback import SerialFallback
from .livelock import EscalationLevel, LivelockDetector
from .policies import (
    Action,
    ExponentialBackoff,
    PolicyContext,
    RetryDecision,
    RetryPolicy,
)
from .stats import ContentionStats

#: Default hard bound on recoveries before the manager stops speculating.
DEFAULT_MAX_RECOVERIES = 64
#: Consecutive no-progress recoveries before serialising (matches the
#: seed runtime's behaviour, now one rung of the ladder).
DEFAULT_SERIALIZE_AFTER = 2
#: Consecutive no-progress recoveries before the non-speculative fallback
#: (serialisation gets a chance first: it cures conflicts, not capacity).
DEFAULT_FALLBACK_AFTER = 4

#: Sentinel distinguishing "default fallback" from "fallback disabled".
_DEFAULT_FALLBACK = object()


class ContentionManager:
    """Decides, per abort, how the runtime recovers.

    Parameters
    ----------
    policy:
        The pluggable retry policy (default
        :class:`~repro.txctl.policies.ExponentialBackoff`).
    detector:
        Livelock detector; pass ``None`` for the default window.
    fallback:
        The serial fallback.  ``None`` **disables** the fallback; the
        hard recovery bound then raises
        :class:`~repro.errors.LivelockError` (the seed behaviour, typed).
    max_recoveries / serialize_after_no_progress /
    fallback_after_no_progress:
        The escalation ladder's rungs (see module docstring).
    stats:
        Destination for counters; when the manager is bound to a system
        (:meth:`bind`) the system's ``stats.contention`` is used so the
        numbers surface in Table 1 and the stats dump.
    """

    def __init__(self, policy: Optional[RetryPolicy] = None,
                 detector: Optional[LivelockDetector] = None,
                 fallback=_DEFAULT_FALLBACK,
                 max_recoveries: int = DEFAULT_MAX_RECOVERIES,
                 serialize_after_no_progress: int = DEFAULT_SERIALIZE_AFTER,
                 fallback_after_no_progress: int = DEFAULT_FALLBACK_AFTER,
                 stats: Optional[ContentionStats] = None) -> None:
        self.policy = policy or ExponentialBackoff()
        self.detector = detector or LivelockDetector()
        self.fallback: Optional[SerialFallback] = (
            SerialFallback() if fallback is _DEFAULT_FALLBACK else fallback)
        self.max_recoveries = max_recoveries
        self.serialize_after_no_progress = serialize_after_no_progress
        self.fallback_after_no_progress = fallback_after_no_progress
        self.stats = stats or ContentionStats()
        #: Whether on_abort records events itself.  A manager bound to a
        #: system must not: the system already recorded every abort (with
        #: its cause) at the source, in the same shared ContentionStats.
        self._records_aborts = True
        # Per-run state ------------------------------------------------
        self.recoveries = 0
        self.no_progress = 0
        self.serialized = False
        self.fallback_taken = False
        self.last_event: Optional[AbortEvent] = None
        self._last_committed: Optional[int] = None
        self._vid_attempts: dict = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bind(self, system) -> "ContentionManager":
        """Attach to a system run: share its stats, reset per-run state.

        Safe to call once per run; a manager instance is single-run (like
        the scheduler it advises).
        """
        self.stats = system.stats.contention
        self._records_aborts = False
        self._last_committed = system.stats.committed
        self.recoveries = 0
        self.no_progress = 0
        self.serialized = False
        self.fallback_taken = False
        self.last_event = None
        self._vid_attempts = {}
        self.policy.reset()
        self.detector.reset()
        return self

    @property
    def fallback_lock_held(self) -> bool:
        return self.fallback is not None and self.fallback.lock.held

    # ------------------------------------------------------------------
    # The decision point
    # ------------------------------------------------------------------

    def on_abort(self, exc: BaseException,
                 committed: int) -> RetryDecision:
        """Classify ``exc``, record it, and decide the next attempt.

        ``committed`` is ``system.stats.committed`` at the abort, used
        for progress tracking.  Raises
        :class:`~repro.errors.LivelockError` only when the hard bound is
        hit with the fallback disabled.
        """
        event = event_from_exception(exc, committed=committed)
        self.last_event = event
        self.recoveries += 1
        if self._records_aborts:
            self.stats.record_event(event)
        self._vid_attempts[event.vid] = \
            self._vid_attempts.get(event.vid, 0) + 1

        baseline = self._last_committed or 0
        progressed = committed > baseline
        self._last_committed = committed
        self.no_progress = 0 if progressed else self.no_progress + 1

        before = self.detector.level
        level = self.detector.observe(progressed)
        if level > before:
            self.stats.record_escalation(str(level))

        ctx = PolicyContext(
            attempt=self.recoveries,
            vid_attempts=self._vid_attempts[event.vid],
            cause_attempts=self.stats.vid_cause_count(event.vid, event.cause),
            no_progress=self.no_progress,
            fallback_lock_held=self.fallback_lock_held,
        )
        decision = self.policy.decide(event, ctx)
        decision = self._escalate(event, decision, level)
        self._account(decision)
        return decision

    # ------------------------------------------------------------------

    def _escalate(self, event: AbortEvent, decision: RetryDecision,
                  level: EscalationLevel) -> RetryDecision:
        """Overlay the ladder on the policy's verdict (monotone)."""
        want_fallback = (
            decision.action is Action.FALLBACK
            or level >= EscalationLevel.FALLBACK
            or self.no_progress >= self.fallback_after_no_progress
            or self.recoveries > self.max_recoveries
            # A repeat non-transient abort cannot succeed speculatively
            # regardless of policy: don't burn the whole recovery budget.
            or (not event.cause.transient
                and self.stats.vid_cause_count(event.vid, event.cause) > 1
                and self.serialized)
        )
        if want_fallback:
            if self.fallback is None:
                raise LivelockError(event.vid, self.recoveries,
                                    detail=f"cause {event.cause}; "
                                           "serial fallback disabled")
            return RetryDecision(Action.FALLBACK, 0,
                                 decision.reason or "escalated to fallback")
        want_serial = (
            self.serialized
            or decision.action is Action.SERIALIZE
            or level >= EscalationLevel.SERIALIZE
            or self.no_progress >= self.serialize_after_no_progress
        )
        if want_serial:
            return RetryDecision(Action.SERIALIZE, decision.delay,
                                 decision.reason or "escalated to serialize")
        if level >= EscalationLevel.BACKOFF and decision.delay == 0:
            # Detector demands at least some spacing between attempts.
            return RetryDecision(Action.RETRY, 64,
                                 "livelock detector: minimum backoff")
        return decision

    def _account(self, decision: RetryDecision) -> None:
        if decision.action is Action.FALLBACK:
            self.fallback_taken = True
            self.stats.fallback_entries += 1
        elif decision.action is Action.SERIALIZE:
            self.serialized = True
            self.stats.serialized_recoveries += 1
            self.stats.backoff_cycles += decision.delay
        else:
            self.stats.retries += 1
            self.stats.backoff_cycles += decision.delay
