"""Abort taxonomy: *why* a multithreaded transaction aborted.

The paper's lazy abort machinery (per-cache ``LC_VID`` snapshots,
Committed/Aborted processing, section 5.4's overflow-triggered aborts)
reports *that* an MTX aborted; recovering intelligently additionally needs
to know *why*.  Real HTM deployments (Intel RTM being the canonical
example) expose exactly such a cause word in the abort status register,
and the software fallback path branches on it: conflicts are transient and
worth retrying, capacity overflows are deterministic and are not, explicit
aborts are the program's own decision.

Every abort in this reproduction is classified at its source:

==================  =====================================================
cause               raised by
==================  =====================================================
CONFLICT            :mod:`repro.coherence.protocol` write-outcome logic —
                    a store's VID fell inside another version's window
                    (``hierarchy._raise_misspeculation``)
CAPACITY_OVERFLOW   :mod:`repro.coherence.hierarchy` /
                    :mod:`repro.coherence.overflow` — a speculative
                    version was selected as an LLC (or overflow-table)
                    victim, section 5.4
WRONG_PATH          :mod:`repro.core.system` in the no-SLA ablation — a
                    branch-mispredicted load marked a line and caused a
                    *false* conflict the SLA mechanism would have avoided
                    (section 5.1)
INTERRUPT           :mod:`repro.core.system` kernel accesses — an
                    interrupt/exception handler's non-speculative store
                    landed on live speculative state (section 5.2)
EXPLICIT            ``abortMTX`` — software-detected misspeculation
                    (section 3.1)
==================  =====================================================

The cause travels on the :class:`~repro.errors.MisspeculationError`
itself (its ``cause`` attribute), so it crosses the coherence/runtime
boundary without any side channel; :func:`classify` recovers a cause from
any misspeculation error, including ones raised by code that predates the
taxonomy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AbortCause(enum.Enum):
    """Why a transaction aborted (the RTM-style abort status word)."""

    #: A genuine data-dependence violation between transactions.
    CONFLICT = "conflict"
    #: A speculative version was evicted past the last-level cache (5.4);
    #: deterministic — retrying the same speculative execution cannot
    #: succeed.
    CAPACITY_OVERFLOW = "capacity"
    #: A branch-mispredicted (wrong-path) load marked a line (no-SLA mode)
    #: and triggered a false conflict (5.1).
    WRONG_PATH = "wrong-path"
    #: An interrupt/exception handler's non-speculative access collided
    #: with live speculative state (5.2).
    INTERRUPT = "interrupt"
    #: Software called ``abortMTX`` (3.1).
    EXPLICIT = "explicit"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def transient(self) -> bool:
        """Can a plain speculative retry plausibly succeed?

        Conflicts, wrong-path false aborts and interrupt collisions depend
        on interleaving and go away under a different schedule; capacity
        overflows are a property of the transaction's footprint and
        recur deterministically.  Explicit aborts are the program's call —
        the runtime retries them (the recovery handler re-executes from
        committed state), so they count as transient too.
        """
        return self is not AbortCause.CAPACITY_OVERFLOW


def classify(exc: BaseException) -> AbortCause:
    """Map a misspeculation exception to its :class:`AbortCause`.

    Prefers the cause stamped at the raise site (``exc.cause``); falls
    back on the exception type — an un-stamped
    :class:`~repro.errors.SpeculativeOverflowError` is a capacity abort,
    anything else a conflict (the conservative default: transient,
    retryable).
    """
    cause = getattr(exc, "cause", None)
    if isinstance(cause, AbortCause):
        return cause
    # Late import keeps this module dependency-free for the low layers.
    from ..errors import SpeculativeOverflowError  # lint-ok: RL005 (errors.py default-classifies via this module; a top-level import would cycle)
    if isinstance(exc, SpeculativeOverflowError):
        return AbortCause.CAPACITY_OVERFLOW
    return AbortCause.CONFLICT


@dataclass(frozen=True)
class AbortEvent:
    """One classified abort, as seen by the contention manager."""

    #: VID of the transaction whose access detected the misspeculation.
    vid: int
    cause: AbortCause
    #: Address involved (``-1`` when not address-related, e.g. explicit).
    addr: int = -1
    #: Human-readable reason from the raise site.
    reason: str = ""
    #: Transactions committed system-wide when the abort fired.
    committed: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" @0x{self.addr:x}" if self.addr >= 0 else ""
        return f"abort[{self.cause}] vid={self.vid}{where}"


def event_from_exception(exc: BaseException,
                         committed: int = 0) -> AbortEvent:
    """Build an :class:`AbortEvent` from a raised misspeculation error."""
    return AbortEvent(
        vid=getattr(exc, "vid", 0),
        cause=classify(exc),
        addr=getattr(exc, "addr", -1),
        reason=str(exc),
        committed=committed,
    )
