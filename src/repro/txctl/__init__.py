"""``repro.txctl`` — contention management and abort recovery.

The paper's hardware tells the runtime *that* an MTX aborted (lazy
commit/abort, section 4.4; overflow aborts, section 5.4).  This package
is the software layer that decides what to do about it:

``causes``
    The abort taxonomy — every abort is classified at its source as
    CONFLICT / CAPACITY_OVERFLOW / WRONG_PATH / INTERRUPT / EXPLICIT.
``policies``
    Pluggable retry policies: immediate retry, exponential backoff with
    deterministic VID-keyed jitter, capacity-aware (no retry on repeat
    capacity aborts), and lemming avoidance (delay while the fallback
    lock is held).
``fallback``
    The serial fallback: non-speculative re-execution under a global
    lock — guaranteed forward progress, preserving MTX atomicity.
``livelock``
    Sliding-window commit/abort-ratio monitoring that *escalates*
    (backoff -> serialize -> fallback) instead of raising.
``stats``
    Per-VID and per-cause counters, exported through
    ``SystemStats.contention`` into Table 1 and the stats dump.
``manager``
    The :class:`ContentionManager` facade the runtime consults on every
    abort.

``experiments/contention_sweep.py`` compares the policies head-to-head
on a high-conflict linked-list workload.
"""

from .causes import AbortCause, AbortEvent, classify, event_from_exception
from .fallback import FallbackLock, SerialFallback
from .livelock import EscalationLevel, LivelockDetector
from .manager import ContentionManager
from .policies import (
    POLICIES,
    Action,
    CapacityAware,
    ExponentialBackoff,
    ImmediateRetry,
    LemmingAvoidance,
    PolicyContext,
    RetryDecision,
    RetryPolicy,
    deterministic_jitter,
    make_policy,
)
from .stats import ContentionStats

__all__ = [
    "Action",
    "AbortCause",
    "AbortEvent",
    "CapacityAware",
    "ContentionManager",
    "ContentionStats",
    "EscalationLevel",
    "ExponentialBackoff",
    "FallbackLock",
    "ImmediateRetry",
    "LemmingAvoidance",
    "LivelockDetector",
    "POLICIES",
    "PolicyContext",
    "RetryDecision",
    "RetryPolicy",
    "SerialFallback",
    "classify",
    "deterministic_jitter",
    "event_from_exception",
    "make_policy",
]
