"""Livelock detection: watch commit/abort ratios, escalate instead of dying.

The seed runtime counted recoveries and raised ``ReproError("abort
livelock")`` at a fixed bound — punting the problem to the caller.  This
detector replaces the counter with a *sliding window* over recent abort
events: each abort is tagged with whether any transaction committed since
the previous abort (forward progress).  When the windowed no-progress
ratio rises, the detector escalates the recovery posture one level at a
time instead of raising:

====================  =================================================
level                 meaning for the contention manager
====================  =================================================
``NORMAL``            let the configured policy decide alone
``BACKOFF``           inject at least a minimum backoff delay
``SERIALIZE``         one transaction in flight (conflicts impossible)
``FALLBACK``          abandon speculation: serial non-speculative
                      execution under the global lock
====================  =================================================

Escalation is monotone within a run (``level`` never decreases), matching
the guarantee the runtime needs: once serialised, stay serialised until
the run completes — oscillating back to full speculation mid-recovery is
how real systems re-enter the livelock they just escaped.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional


class EscalationLevel(enum.IntEnum):
    """Monotone recovery-posture ladder."""

    NORMAL = 0
    BACKOFF = 1
    SERIALIZE = 2
    FALLBACK = 3

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


class LivelockDetector:
    """Sliding-window abort/commit-ratio monitor with monotone escalation.

    Parameters
    ----------
    window:
        Number of most-recent abort events considered.
    min_events:
        Aborts observed before any escalation is allowed (a single abort
        is not a livelock; the manager's no-progress ladder handles the
        first few aborts, so the window only speaks once it has data).
    backoff_ratio / serialize_ratio / fallback_ratio:
        No-progress fractions of the window at which the corresponding
        level is reached.  With the defaults, a quarter of the window
        without progress triggers backoff, half triggers serialisation
        and a window with almost no progress triggers the fallback.
    """

    def __init__(self, window: int = 8, min_events: int = 4,
                 backoff_ratio: float = 0.25,
                 serialize_ratio: float = 0.5,
                 fallback_ratio: float = 0.9) -> None:
        if not 0 < backoff_ratio <= serialize_ratio <= fallback_ratio:
            raise ValueError("escalation ratios must be ordered and positive")
        self.window = window
        self.min_events = min_events
        self.backoff_ratio = backoff_ratio
        self.serialize_ratio = serialize_ratio
        self.fallback_ratio = fallback_ratio
        self._events: Deque[bool] = deque(maxlen=window)  # True = progressed
        self._level = EscalationLevel.NORMAL

    # ------------------------------------------------------------------

    def observe(self, progressed: bool) -> EscalationLevel:
        """Record one abort event; returns the (possibly raised) level."""
        self._events.append(progressed)
        candidate = self._assess()
        if candidate > self._level:
            self._level = candidate
        return self._level

    def _assess(self) -> EscalationLevel:
        if len(self._events) < self.min_events:
            return EscalationLevel.NORMAL
        ratio = self.no_progress_ratio
        if ratio >= self.fallback_ratio:
            return EscalationLevel.FALLBACK
        if ratio >= self.serialize_ratio:
            return EscalationLevel.SERIALIZE
        if ratio >= self.backoff_ratio:
            return EscalationLevel.BACKOFF
        return EscalationLevel.NORMAL

    # ------------------------------------------------------------------

    @property
    def level(self) -> EscalationLevel:
        """Current (monotone) escalation level."""
        return self._level

    @property
    def no_progress_ratio(self) -> float:
        """Fraction of windowed aborts that made no commit progress."""
        if not self._events:
            return 0.0
        stalled = sum(1 for progressed in self._events if not progressed)
        return stalled / len(self._events)

    def events_seen(self) -> int:
        return len(self._events)

    def reset(self) -> None:
        """Forget everything (fresh run)."""
        self._events.clear()
        self._level = EscalationLevel.NORMAL
