"""Directory-based HMTX coherence — the paper's section 8 scaling path.

"Future work could adapt the HMTX coherence scheme to a directory-based
protocol to allow for efficient scaling to many more cores."

The snoopy design broadcasts every miss on a shared bus, so concurrent
misses serialise (``HierarchyConfig.bus_occupancy``) — fine at 4 cores,
ruinous at 16.  :class:`DirectoryHierarchy` replaces the bus with a banked
directory co-located with the L2:

* a **sharer map** tracks, per line address, which caches may hold
  versions.  Installs update it eagerly; removals are lazy, so the map is a
  conservative superset and a probe may find the entry stale (counted) —
  exactly how real sparse directories behave between acknowledgments;
* a miss consults the line's home **bank** (address-interleaved, each with
  its own occupancy window) and probes only the recorded sharers instead of
  broadcasting, so misses to different banks proceed in parallel;
* version selection, conflict detection, commit/abort, overflow — the
  entire HMTX protocol layer — is inherited unchanged, which is the point:
  the paper's scheme needs no global state to pick a version or detect a
  conflict, so it drops into a directory organisation directly.

Commit/abort remain broadcasts (they are O(1) register/event-log updates
per cache under the lazy scheme); the directory charges them a multicast
latency that grows logarithmically with core count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .cache import VersionedCache
from .hierarchy import AccessKind, HierarchyConfig, MemoryHierarchy
from .line import CacheLine, LineView
from .states import State


@dataclass
class DirectoryStats:
    """Directory-specific event counters."""

    lookups: int = 0
    probes_sent: int = 0
    stale_probes: int = 0
    invalidations_sent: int = 0
    bank_wait_cycles: int = 0


@dataclass
class DirectoryConfig(HierarchyConfig):
    """Directory knobs on top of the base machine configuration."""

    #: Address-interleaved directory banks (each an independent pipeline).
    directory_banks: int = 8
    #: Cycles to look up a directory bank entry.
    directory_latency: int = 12
    #: Cycles each lookup occupies its bank.
    bank_occupancy: int = 4
    #: One-way point-to-point link latency between tiles.
    link_latency: int = 10


class DirectoryHierarchy(MemoryHierarchy):
    """The HMTX memory system with a banked directory instead of a bus."""

    def __init__(self, config: Optional[DirectoryConfig] = None) -> None:
        config = config or DirectoryConfig()
        super().__init__(config)
        self.dconfig = config
        self.dir_stats = DirectoryStats()
        #: line address -> names of caches that may hold a version.
        self._sharers: Dict[int, Set[str]] = {}
        #: Each socket carries its own ``directory_banks`` banks next to
        #: its LLC slice (one socket — today's flat bank array — when no
        #: multi-socket topology is declared).
        sockets = config.topology.sockets if self._multi_socket else 1
        self._bank_free: List[int] = [0] * (sockets * config.directory_banks)
        self._caches_by_name = {c.name: c for c in self._all_caches()}

    # ------------------------------------------------------------------
    # Sharer-map maintenance
    # ------------------------------------------------------------------

    def _install(self, cache: VersionedCache, line: CacheLine) -> "LineView":
        self._sharers.setdefault(line.addr, set()).add(cache.name)
        return super()._install(cache, line)

    def _record_presence(self, cache: VersionedCache, addr: int) -> None:
        self._sharers.setdefault(addr, set()).add(cache.name)

    def sharers_of(self, addr: int) -> Set[str]:
        """The (conservative) recorded sharer set of a line."""
        base = addr - (addr % self.config.line_size)
        return set(self._sharers.get(base, set()))

    def check_directory_invariant(self) -> None:
        """Every cached version's holder appears in the sharer map.

        Under a multi-socket topology two further invariants bind the
        sliced LLC to the directory: a line's home slice owns its
        directory entry (the entry lives in the home socket's banks, so
        any version resident in a *non-home* slice would be invisible to
        the probes the home bank sends), and hence no version may reside
        in a non-home slice at all.
        """
        for cache in self._all_caches():
            in_llc = cache in self._llc_group
            for line in cache.all_lines():
                if line.state is State.INVALID:
                    continue
                recorded = self._sharers.get(line.addr, set())
                assert cache.name in recorded, \
                    f"{cache.name} holds 0x{line.addr:x} unrecorded"
                if in_llc and self._multi_socket:
                    # Independently recomputed from the topology spec so a
                    # broken ``_home_llc`` router is caught, not trusted.
                    home = self.llc_slices[self._topo.home_socket(
                        line.addr, self.config.line_size)]
                    assert cache is home, \
                        (f"version of 0x{line.addr:x} resident in "
                         f"{cache.name}, not its home slice {home.name}")

    # ------------------------------------------------------------------
    # Timing: banked directory instead of one shared bus
    # ------------------------------------------------------------------

    def _bank_of(self, addr: int) -> int:
        line = addr // self.config.line_size
        bank = line % self.dconfig.directory_banks
        if not self._multi_socket:
            return bank
        # The entry lives in the home socket's bank array, co-located with
        # the home LLC slice.
        home = self._topo.home_socket(addr, self.config.line_size)
        return home * self.dconfig.directory_banks + bank

    def _link(self, socket_a: int, socket_b: int) -> int:
        """One-way tile-to-tile message latency.

        The flat machine keeps the historical uniform ``link_latency``;
        multi-socket machines charge the topology's intra/cross-socket
        hops.
        """
        if not self._multi_socket:
            return self.dconfig.link_latency
        return self._topo.hop_latency(socket_a, socket_b)

    def _bank_transaction(self, addr: int, now: int) -> int:
        bank = self._bank_of(addr)
        wait = max(0, self._bank_free[bank] - now)
        self._bank_free[bank] = now + wait + self.dconfig.bank_occupancy
        self.dir_stats.bank_wait_cycles += wait
        return wait + self.dconfig.directory_latency

    def _bus_transaction(self, now: int) -> int:
        """Misses are arbitrated per bank, not on one global bus.

        The base class calls this with only the current time; the actual
        per-bank accounting happens in :meth:`_fetch`, so this contributes
        nothing extra.
        """
        return 0

    # ------------------------------------------------------------------
    # Miss handling: directory lookup + targeted probes
    # ------------------------------------------------------------------

    def _fetch(self, core: int, addr: int, vid: int,
               kind: AccessKind, now: int = 0) -> Tuple[CacheLine, int, str]:
        self.stats.bus_snoops += 1     # kept: "coherence transactions"
        self.dir_stats.lookups += 1
        l1 = self.l1s[core]
        base = l1.line_addr(addr)
        req_socket = self._cache_socket[l1.name]
        home_socket = (self._topo.home_socket(base, self.config.line_size)
                       if self._multi_socket else 0)
        # Request travels to the line's home bank: one intra-socket hop on
        # the flat machine, a cross-socket hop when the home is remote.
        latency = self._bank_transaction(base, now) \
            + self._link(req_socket, home_socket)
        spec_modified_asserted = l1.has_latest_spec_version(addr)
        recorded = [name for name in sorted(self.sharers_of(addr))
                    if name != l1.name]
        for name in recorded:
            cache = self._caches_by_name[name]
            self.dir_stats.probes_sent += 1
            if cache.has_latest_spec_version(addr):
                spec_modified_asserted = True
            owner = cache.lookup(addr, vid)
            if owner is None or owner.state is State.SS:
                if not cache.versions(addr):
                    # Stale directory entry: the holder silently dropped
                    # its copy; clean the map.
                    self.dir_stats.stale_probes += 1
                    self._sharers.get(base, set()).discard(name)
                continue
            self.stats.peer_transfers += 1
            # The owner forwards the line directly to the requester
            # (three-hop protocol); charge the requester<->owner leg.
            owner_socket = self._cache_socket.get(name, home_socket)
            latency += self._link(req_socket, owner_socket)
            if self.overflow_table is not None and cache is self.overflow_table:
                latency += cache.hit_latency
                self.overflow_table.refills += 1
            line = self._receive_from_owner(core, cache, owner, vid, kind)
            return line, latency, cache.name
        # Memory responds through the home bank.
        self.stats.memory_fetches += 1
        latency += self.config.memory_latency
        data = self.memory.read_line(addr)
        eff = l1.effective_vid(vid)
        if spec_modified_asserted:
            self.stats.overflow_retrievals += 1
            line = CacheLine(base, State.SO, data, 0, eff + 1)
        else:
            line = CacheLine(base, State.EXCLUSIVE, data)
        return self._install(l1, line), latency, "memory"

    # ------------------------------------------------------------------
    # Invalidations become targeted multicasts
    # ------------------------------------------------------------------

    def _invalidate_nonspec_everywhere(self, addr: int,
                                       keep: Optional[CacheLine] = None) -> None:
        # Same semantics as the base class (non-speculative copies plus
        # silent S-S copies), delivered as directed invalidations.
        for name in sorted(self.sharers_of(addr)):
            cache = self._caches_by_name[name]
            self.dir_stats.invalidations_sent += 1
            for line in cache.versions(addr):
                if line is keep:
                    continue
                if line.is_speculative() and line.state is not State.SS:
                    continue
                cache.drop(line)

    def _scrub_ss_copies(self, addr: int, mod_vid: int) -> None:
        dropped = False
        for name in sorted(self.sharers_of(addr)):
            cache = self._caches_by_name[name]
            for line in cache.versions(addr):
                if line.state is State.SS and line.mod_vid == mod_vid:
                    cache.drop(line)
                    dropped = True
        if dropped:
            self.stats.ss_invalidations += 1
            self.dir_stats.invalidations_sent += 1

    # ------------------------------------------------------------------
    # Broadcasts: multicast tree, log-depth latency
    # ------------------------------------------------------------------

    def _multicast_latency(self) -> int:
        if self._multi_socket:
            # Cross-socket tree over the interconnect, then on-die trees;
            # identical cost model to the base hierarchy's multi-socket
            # broadcast (the directory just delivers it point-to-point).
            return self._topo.multicast_latency(self.config.broadcast_latency)
        fanout_depth = max(1, math.ceil(math.log2(self.config.num_cores + 1)))
        return self.config.broadcast_latency \
            + fanout_depth * self.dconfig.link_latency

    def commit(self, vid: int) -> int:
        super().commit(vid)
        return self._multicast_latency()

    def abort(self) -> int:
        super().abort()
        return self._multicast_latency()
