"""Coherence states: MOESI plus the four speculative HMTX states.

The base protocol is snoopy MOESI (section 4.1).  HMTX adds four
*speculative* states:

``S-M`` (:attr:`State.SM`)
    The latest speculative version of a line with respect to original
    program order, dirty w.r.t. memory.
``S-O`` (:attr:`State.SO`)
    A speculatively accessed version later superseded by a speculative
    write with a higher VID; kept so lower-VID reads find their data.
``S-E`` (:attr:`State.SE`)
    Like S-M, but no version of the line was ever modified (clean);
    ``modVID`` is always 0 in this state.
``S-S`` (:attr:`State.SS`)
    A shared copy of a speculatively accessed line in a peer cache; never
    responds to snoops (an S-M/S-O/S-E copy responds instead).
"""

from __future__ import annotations

import enum


class State(enum.Enum):
    """MOESI + speculative coherence states of a cache line."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    OWNED = "O"
    MODIFIED = "M"
    SM = "S-M"
    SO = "S-O"
    SE = "S-E"
    SS = "S-S"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


SPECULATIVE_STATES = frozenset({State.SM, State.SO, State.SE, State.SS})
NONSPECULATIVE_STATES = frozenset(
    {State.INVALID, State.SHARED, State.EXCLUSIVE, State.OWNED, State.MODIFIED}
)

#: States whose data differs from (or may differ from) main memory and must
#: eventually be written back: M and O, plus S-M / S-O versions carrying
#: speculative or not-yet-written-back data.
DIRTY_STATES = frozenset({State.MODIFIED, State.OWNED, State.SM, State.SO})

#: States that may be silently dropped without writeback.
CLEAN_STATES = frozenset({State.SHARED, State.EXCLUSIVE, State.SE, State.SS})

#: "Latest version" speculative states: the copy that a write with a high
#: enough VID may extend, and that answers snoops for VIDs >= modVID.
LATEST_SPEC_STATES = frozenset({State.SM, State.SE})

#: Superseded / shared speculative states that only serve reads with VIDs
#: strictly below their highVID.
SUPERSEDED_SPEC_STATES = frozenset({State.SO, State.SS})

#: States granting write permission without a bus transaction.
WRITABLE_STATES = frozenset({State.MODIFIED, State.EXCLUSIVE})


# Fast-path flags: each State member carries its classification as plain
# attributes, so the hot loops read ``state.speculative`` instead of hashing
# enum members into a frozenset on every access (see DESIGN.md,
# "Fast-path indexing").  The sets above remain the source of truth.
for _state in State:
    _state.speculative = _state in SPECULATIVE_STATES
    _state.dirty = _state in DIRTY_STATES
    _state.latest_spec = _state in LATEST_SPEC_STATES
    _state.superseded_spec = _state in SUPERSEDED_SPEC_STATES
del _state


# ----------------------------------------------------------------------
# Integer state codes (struct-of-arrays line store, DESIGN.md section 13)
# ----------------------------------------------------------------------
#
# The line store keeps coherence states as one byte per line in a
# ``bytearray`` column.  The numbering is chosen so the protocol's state
# *classes* become range checks instead of set membership:
#
#   non-speculative valid : 1 <= code <= 4
#   speculative           : code >= CODE_SM  (5)
#   latest  (S-M / S-E)   : CODE_SM <= code <= CODE_SE  (5..6)
#   superseded (S-O / S-S): code >= CODE_SO  (7..8)

CODE_INVALID = 0
CODE_SHARED = 1
CODE_EXCLUSIVE = 2
CODE_OWNED = 3
CODE_MODIFIED = 4
CODE_SM = 5
CODE_SE = 6
CODE_SO = 7
CODE_SS = 8

#: code -> State member (index with a state code).
STATE_FROM_CODE = (
    State.INVALID, State.SHARED, State.EXCLUSIVE, State.OWNED,
    State.MODIFIED, State.SM, State.SE, State.SO, State.SS,
)

#: per-code dirty flag as an indexable byte table (M, O, S-M, S-O).
DIRTY_BY_CODE = bytes(
    1 if STATE_FROM_CODE[c] in DIRTY_STATES else 0
    for c in range(len(STATE_FROM_CODE))
)

for _code, _state in enumerate(STATE_FROM_CODE):
    _state.code = _code
del _code, _state


def is_speculative(state: State) -> bool:
    """True for the four HMTX speculative states."""
    return state.speculative


def is_dirty(state: State) -> bool:
    """True when a line in ``state`` must be written back before dropping."""
    return state.dirty


def is_valid(state: State) -> bool:
    """True for any state other than Invalid."""
    return state is not State.INVALID
