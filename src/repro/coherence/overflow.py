"""Unbounded read/write sets: the memory-side overflow version table.

The paper's section 8: "similar to prior systems [27], unlimited read and
write sets could be supported by overflowing speculatively modified versions
of lines into memory and managing them via data structures."

This module implements that extension.  When the last-level cache must evict
a speculative version that the base protocol would abort on (anything except
an ``S-O`` backup with ``modVID == 0``), the version instead moves into an
:class:`OverflowVersionTable` — a software-managed, memory-resident
structure.  The table participates in the version-lookup protocol exactly
like a cache (same hit windows, same lazy commit/abort processing, same
``S-M`` assertion for section 5.4 retrieval), but with main-memory latency
plus a management overhead per touch.

Implementation note: the table reuses :class:`~repro.coherence.cache.
VersionedCache` with a single, very wide set — overflow is rare, linear
scans of the resident versions are exactly what a software hash structure
would do, and all of the lazy event-log machinery comes for free.
"""

from __future__ import annotations

from ..errors import SpeculativeOverflowError
from ..txctl.causes import AbortCause
from .cache import VersionedCache

#: Extra cycles per overflow-table operation on top of memory latency
#: (hashing, pointer chasing in the software structure).
TABLE_MANAGEMENT_CYCLES = 60

#: How many overflowed versions the table holds before the system falls
#: back to aborting (a safety valve; "unlimited" in practice).
DEFAULT_TABLE_CAPACITY = 65536


class OverflowVersionTable(VersionedCache):
    """Memory-resident home for speculative versions evicted past the LLC."""

    def __init__(self, line_size: int = 64, memory_latency: int = 200,
                 capacity: int = DEFAULT_TABLE_CAPACITY,
                 vid_bits: int = 6) -> None:
        super().__init__(
            name="OverflowTable",
            size=capacity * line_size,
            assoc=capacity,               # one set: fully associative
            line_size=line_size,
            hit_latency=memory_latency + TABLE_MANAGEMENT_CYCLES,
            vid_bits=vid_bits,
        )
        self.spills = 0
        self.refills = 0

    def set_index(self, addr: int) -> int:
        """Single-set (software hash) organisation."""
        return 0

    def spill(self, line) -> None:
        """Accept a speculative version evicted past the LLC."""
        self.spills += 1
        evicted = self.install(line)
        if evicted:
            # install() only evicts when the capacity safety valve blows;
            # the caller treats that as the base protocol's overflow abort.
            victim = evicted[0]
            raise SpeculativeOverflowError(
                f"overflow table capacity exceeded evicting "
                f"{victim.state}({victim.mod_vid},{victim.high_vid})",
                vid=victim.mod_vid, addr=victim.addr,
                cause=AbortCause.CAPACITY_OVERFLOW)

    def resident_versions(self) -> int:
        return self.occupancy()
