"""Set-associative, version-aware cache with lazy commit/abort processing.

A :class:`VersionedCache` stores *versions* of cache lines: several
:class:`~repro.coherence.line.CacheLine` objects with the same address but
different ``(modVID, highVID)`` tags may coexist within one set
(section 4.1).  The set index depends only on the address, so versions
compete for the same ways.

Lazy commit/abort (section 5.3): commits and aborts are recorded by setting
the per-cache ``LC_VID`` register and flash-setting the per-line CB/AB bits;
the actual Figure 6/7 transition of a line is applied the next time that
line is touched or chosen as an eviction victim
(:meth:`VersionedCache.process_lazy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .line import CacheLine
from .protocol import abort_transition, commit_transition, reset_transition, version_hits
from .states import (
    CLEAN_STATES,
    State,
    is_speculative,
)
from .vid import CascadedComparator


@dataclass
class CacheStats:
    """Per-cache event counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    version_copies: int = 0
    lazy_commits_processed: int = 0
    lazy_aborts_processed: int = 0
    commit_broadcasts: int = 0
    abort_broadcasts: int = 0
    vid_resets: int = 0


# Victim-selection priority classes, lowest value evicted first (section 5.4:
# prioritise overflowable S-O copies over speculative lines whose eviction
# from the LLC would force an abort).
_PRIORITY_INVALID = 0
_PRIORITY_CLEAN_NONSPEC = 1
_PRIORITY_DIRTY_NONSPEC = 2
_PRIORITY_SPEC_SHARED = 3       # S-S: silently droppable peer copies
_PRIORITY_SPEC_OVERFLOWABLE = 4  # S-O with modVID == 0: may go to memory
_PRIORITY_SPEC_PINNED = 5        # eviction past the LLC aborts


def victim_priority(line: CacheLine) -> int:
    """Eviction priority class of a line (lower evicts first)."""
    if line.state is State.INVALID:
        return _PRIORITY_INVALID
    if not line.is_speculative():
        if line.state in CLEAN_STATES:
            return _PRIORITY_CLEAN_NONSPEC
        return _PRIORITY_DIRTY_NONSPEC
    if line.state is State.SS:
        return _PRIORITY_SPEC_SHARED
    if line.state is State.SO and line.mod_vid == 0:
        return _PRIORITY_SPEC_OVERFLOWABLE
    return _PRIORITY_SPEC_PINNED


class VersionedCache:
    """One level of HMTX-capable cache (an L1 or the shared L2).

    Parameters
    ----------
    name:
        Human-readable identifier (``"L1[0]"``, ``"L2"``).
    size:
        Capacity in bytes.
    assoc:
        Ways per set.
    line_size:
        Bytes per line.
    hit_latency:
        Cycles charged for a hit at this level.
    vid_bits:
        Width of the VID comparators (for the section 4.5 model).
    """

    def __init__(self, name: str, size: int, assoc: int, line_size: int = 64,
                 hit_latency: int = 2, vid_bits: int = 6) -> None:
        if size % (assoc * line_size):
            raise ValueError("cache size must be a multiple of assoc * line_size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.num_sets = size // (assoc * line_size)
        self.lc_vid = 0
        self.stats = CacheStats()
        self.comparator = CascadedComparator(bits=vid_bits)
        self._sets: Dict[int, List[CacheLine]] = {
            i: [] for i in range(self.num_sets)
        }
        self._tick = 0
        #: LC_VID snapshots at each abort broadcast (lazy abort processing).
        self._abort_history: List[int] = []

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def set_index(self, addr: int) -> int:
        """Set index depends only on the address, never on VIDs (4.1)."""
        return (self.line_addr(addr) // self.line_size) % self.num_sets

    def _touch(self, line: CacheLine) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    # ------------------------------------------------------------------
    # Lazy commit/abort processing (section 5.3)
    # ------------------------------------------------------------------

    def process_lazy(self, line: CacheLine) -> Optional[CacheLine]:
        """Resolve a line's pending commit/abort transitions (section 5.3).

        Replays, in broadcast order, every event the line has not yet
        processed: for each unseen abort, the commits up to the pre-abort
        ``LC_VID`` apply first (Figure 6), then the abort (Figure 7);
        finally the current ``LC_VID`` commit level applies.  Commit
        processing needs no per-line pending bit because
        :func:`~repro.coherence.protocol.commit_transition` is idempotent —
        re-applying the current commit level to an up-to-date line is a
        no-op.

        Returns the line if it is still valid afterwards, or ``None`` if a
        transition invalidated it (in which case it has been removed from
        its set).
        """
        if not line.is_speculative():
            line.seen_aborts = len(self._abort_history)
            return line
        while line.seen_aborts < len(self._abort_history):
            lc_at_abort = self._abort_history[line.seen_aborts]
            line.seen_aborts += 1
            state, (mod, high) = commit_transition(
                line.state, line.mod_vid, line.high_vid, lc_at_abort)
            self.stats.lazy_commits_processed += 1
            state, (mod, high) = abort_transition(state, mod, high)
            self.stats.lazy_aborts_processed += 1
            line.state, line.mod_vid, line.high_vid = state, mod, high
            if line.state is State.INVALID:
                self._remove(line)
                return None
            if not line.is_speculative():
                line.seen_aborts = len(self._abort_history)
                return line
        state, (mod, high) = commit_transition(
            line.state, line.mod_vid, line.high_vid, self.lc_vid)
        if state is not line.state or (mod, high) != line.vids:
            self.stats.lazy_commits_processed += 1
        line.state, line.mod_vid, line.high_vid = state, mod, high
        if line.state is State.INVALID:
            self._remove(line)
            return None
        return line

    def _remove(self, line: CacheLine) -> None:
        lines = self._sets[self.set_index(line.addr)]
        if line in lines:
            lines.remove(line)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def versions(self, addr: int) -> List[CacheLine]:
        """All valid versions of ``addr`` present, lazily processed first."""
        base = self.line_addr(addr)
        out = []
        for line in list(self._sets[self.set_index(addr)]):
            if line.addr != base:
                continue
            processed = self.process_lazy(line)
            if processed is not None:
                out.append(processed)
        return out

    def effective_vid(self, req_vid: int) -> int:
        """Non-speculative requests use ``LC_VID`` for hit logic (5.3)."""
        return self.lc_vid if req_vid == 0 else req_vid

    def lookup(self, addr: int, req_vid: int) -> Optional[CacheLine]:
        """Return the unique version a request with ``req_vid`` hits, if any.

        ``req_vid`` is the raw request VID; the LC_VID substitution for
        non-speculative requests happens here.
        """
        eff = self.effective_vid(req_vid)
        hit = None
        for line in self.versions(addr):
            if line.is_speculative():
                # Model the tag-check energy of the VID comparators (4.5).
                self.comparator.compare(eff, line.mod_vid)
                self.comparator.compare(eff, line.high_vid)
            if version_hits(line.state, line.mod_vid, line.high_vid, eff):
                if hit is not None:
                    raise AssertionError(
                        f"{self.name}: two versions hit VID {eff} at "
                        f"0x{addr:x}: {hit} and {line}"
                    )
                hit = line
        if hit is not None:
            self._touch(hit)
        return hit

    def has_latest_spec_version(self, addr: int) -> bool:
        """Is there an ``S-M`` version asserting "speculatively modified"?

        Used for the section 5.4 overflow-retrieval assertion: when an S-M
        copy snoops a request it cannot serve, it asserts that the line was
        speculatively modified, so a memory response must arrive as
        ``S-O(0, reqVID + 1)``.
        """
        return any(
            line.state is State.SM and line.mod_vid > 0
            for line in self.versions(addr)
        )

    # ------------------------------------------------------------------
    # Installation and eviction
    # ------------------------------------------------------------------

    def install(self, line: CacheLine) -> List[CacheLine]:
        """Insert a version, evicting as needed.

        An existing version with the same ``(addr, modVID)`` is replaced
        (it is the same conceptual version, e.g. a stale shared copy).
        Returns the evicted lines; the hierarchy decides whether they are
        written back, passed down a level, overflowed to memory, or force
        an abort (section 5.4).
        """
        lines = self._sets[self.set_index(line.addr)]
        for existing in list(lines):
            if existing.addr == line.addr and existing.mod_vid == line.mod_vid \
                    and existing.is_speculative() == line.is_speculative():
                lines.remove(existing)
        evicted: List[CacheLine] = []
        while True:
            # Resolve pending lazy transitions first: committed/aborted
            # versions may free slots without any real eviction.
            for candidate in list(lines):
                self.process_lazy(candidate)
            if len(lines) < self.assoc:
                break
            victim = self._choose_victim(lines)
            lines.remove(victim)
            evicted.append(victim)
            self.stats.evictions += 1
        # A freshly installed line has no pending events in *this* cache.
        line.seen_aborts = len(self._abort_history)
        lines.append(line)
        self._touch(line)
        return evicted

    def _choose_victim(self, lines: List[CacheLine]) -> CacheLine:
        """LRU within the lowest occupied priority class (section 5.4).

        Callers have already lazily processed every line in the set.
        """
        live = [line for line in lines if line.state is not State.INVALID]
        if not live:
            return lines[0]
        return min(live, key=lambda l: (victim_priority(l), l.lru_tick))

    def drop(self, line: CacheLine) -> None:
        """Remove a version without writeback (silent invalidation)."""
        self._remove(line)

    def all_lines(self) -> Iterable[CacheLine]:
        for lines in self._sets.values():
            yield from list(lines)

    def occupancy(self) -> int:
        """Number of valid versions currently resident."""
        return sum(len(lines) for lines in self._sets.values())

    # ------------------------------------------------------------------
    # Broadcast operations (sections 4.4, 4.6, 5.3)
    # ------------------------------------------------------------------

    def broadcast_commit(self, vid: int) -> None:
        """Record a commit: bump ``LC_VID``.  O(1).

        No per-line VID comparison or state transition happens here — that
        is the entire point of the lazy scheme.  (The paper flash-sets a CB
        bit column; commit idempotence makes even that unnecessary in the
        simulator — see :meth:`process_lazy`.)
        """
        self.lc_vid = vid
        self.stats.commit_broadcasts += 1

    def broadcast_abort(self) -> None:
        """Record an abort: append to the abort history.  O(1).

        The history entry snapshots the ``LC_VID`` in force when the abort
        arrived, so lazy processing can order each line's pending commit
        transitions before the abort — the exact-ordering refinement of the
        paper's AB-bit scheme (see DESIGN.md).
        """
        self.stats.abort_broadcasts += 1
        self._abort_history.append(self.lc_vid)

    def vid_reset(self) -> None:
        """Apply the section 4.6 VID reset to this cache.

        Pending lazy transitions are resolved, then every surviving
        speculative line is scrubbed: latest versions become plain M/E
        ("this essentially commits them") and superseded copies die.
        ``LC_VID`` returns to 0.
        """
        self.stats.vid_resets += 1
        for line in self.all_lines():
            processed = self.process_lazy(line)
            if processed is None:
                continue
            new_state, (mod, high) = reset_transition(
                processed.state, processed.mod_vid, processed.high_vid)
            processed.state, processed.mod_vid, processed.high_vid = (
                new_state, mod, high)
            processed.seen_aborts = 0
            if processed.state is State.INVALID:
                self._remove(processed)
        self._abort_history.clear()
        self.lc_vid = 0
