"""Set-associative, version-aware cache with lazy commit/abort processing.

A :class:`VersionedCache` stores *versions* of cache lines: several
versions with the same address but different ``(modVID, highVID)`` tags may
coexist within one set (section 4.1).  The set index depends only on the
address, so versions compete for the same ways.

Lazy commit/abort (section 5.3): commits and aborts are recorded by setting
the per-cache ``LC_VID`` register and flash-setting the per-line CB/AB bits;
the actual Figure 6/7 transition of a line is applied the next time that
line is touched or chosen as an eviction victim
(:meth:`VersionedCache.process_lazy`).

Struct-of-arrays layer (DESIGN.md section 13): resident versions live as
slots in a per-cache :class:`~repro.coherence.store.LineStore` — parallel
``bytearray``/``array`` columns for state codes, VIDs, addresses and the
lazy-processing stamps.  The per-set lists, the per-base version buckets
and the presence map all hold plain slot integers, so the hot sweeps
(lookup, lazy folds, VID-reset scrubs, victim selection) run over
contiguous arrays with no per-line object in sight.  Cold paths and tests
get :class:`~repro.coherence.line.LineView` facades, identity-cached per
slot; eviction victims come back as detached
:class:`~repro.coherence.line.CacheLine` records.

Fast-path layer (DESIGN.md, "Fast-path indexing") — pure implementation
optimisations, invisible to the modelled protocol:

* an **event epoch** bumped on every commit/abort/reset broadcast; a line
  stamped with the current epoch provably has no pending lazy events, so
  :meth:`process_lazy` returns without replaying anything;
* a **per-base version index** (``line address -> [slots]``), so
  :meth:`versions`/:meth:`lookup` touch only the versions of the requested
  line instead of scanning the whole set;
* maintained **snoop-filter counters**: the number of resident speculative
  lines (Figure 9 footprint) and of live ``S-M(modVID>0)`` lines (the
  section 5.4 "speculatively modified" assertion), kept exact through the
  :meth:`_retag_slot` mutation funnel;
* an optional **presence listener** through which the hierarchy maintains
  its ``address -> holding caches`` map, replacing scan-every-cache snoops
  with index lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .line import CacheLine, LineView
from .protocol import (
    abort_transition,
    abort_transition_code,
    commit_transition,
    commit_transition_code,
    reset_transition_code,
    version_hits,
)
from .states import (
    CODE_INVALID,
    CODE_SE,
    CODE_SM,
    CODE_SO,
    STATE_FROM_CODE,
    State,
)
from .store import FREE_CODE, LineStore
from .vid import CascadedComparator


@dataclass
class CacheStats:
    """Per-cache event counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    version_copies: int = 0
    lazy_commits_processed: int = 0
    lazy_aborts_processed: int = 0
    commit_broadcasts: int = 0
    abort_broadcasts: int = 0
    vid_resets: int = 0


# Victim-selection priority classes, lowest value evicted first (section 5.4:
# prioritise overflowable S-O copies over speculative lines whose eviction
# from the LLC would force an abort).
_PRIORITY_INVALID = 0
_PRIORITY_CLEAN_NONSPEC = 1
_PRIORITY_DIRTY_NONSPEC = 2
_PRIORITY_SPEC_SHARED = 3       # S-S: silently droppable peer copies
_PRIORITY_SPEC_OVERFLOWABLE = 4  # S-O with modVID == 0: may go to memory
_PRIORITY_SPEC_PINNED = 5        # eviction past the LLC aborts

# Precomputed per-state priority (S-O is the one state whose class also
# depends on modVID; victim_priority special-cases it).
State.INVALID.victim_class = _PRIORITY_INVALID
State.SHARED.victim_class = _PRIORITY_CLEAN_NONSPEC
State.EXCLUSIVE.victim_class = _PRIORITY_CLEAN_NONSPEC
State.OWNED.victim_class = _PRIORITY_DIRTY_NONSPEC
State.MODIFIED.victim_class = _PRIORITY_DIRTY_NONSPEC
State.SS.victim_class = _PRIORITY_SPEC_SHARED
State.SO.victim_class = _PRIORITY_SPEC_PINNED
State.SM.victim_class = _PRIORITY_SPEC_PINNED
State.SE.victim_class = _PRIORITY_SPEC_PINNED

#: State code -> victim priority class (S-O with modVID == 0 is the one
#: code whose class the sweep special-cases to overflowable).
_VICTIM_CLASS_BY_CODE = bytes(
    STATE_FROM_CODE[code].victim_class for code in range(len(STATE_FROM_CODE))
)


def victim_priority(line) -> int:
    """Eviction priority class of a line (lower evicts first)."""
    state = line.state
    if state is State.SO and line.mod_vid == 0:
        return _PRIORITY_SPEC_OVERFLOWABLE
    return state.victim_class


class VersionedCache:
    """One level of HMTX-capable cache (an L1 or the shared L2).

    Parameters
    ----------
    name:
        Human-readable identifier (``"L1[0]"``, ``"L2"``).
    size:
        Capacity in bytes.
    assoc:
        Ways per set.
    line_size:
        Bytes per line.
    hit_latency:
        Cycles charged for a hit at this level.
    vid_bits:
        Width of the VID comparators (for the section 4.5 model).
    """

    def __init__(self, name: str, size: int, assoc: int, line_size: int = 64,
                 hit_latency: int = 2, vid_bits: int = 6) -> None:
        if size % (assoc * line_size):
            raise ValueError("cache size must be a multiple of assoc * line_size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.num_sets = size // (assoc * line_size)
        self.lc_vid = 0
        self.stats = CacheStats()
        self.comparator = CascadedComparator(bits=vid_bits)
        #: The struct-of-arrays slot arena holding every resident version.
        self._store = LineStore()
        #: Set lists of slot indices, allocated on first touch (a 32 MB L2
        #: has 16 k sets; most runs touch a handful).
        self._sets: Dict[int, List[int]] = {}
        self._tick = 0
        #: LC_VID snapshots at each abort broadcast (lazy abort processing).
        self._abort_history: List[int] = []
        # -- fast-path state ------------------------------------------------
        #: Event epoch: bumped on every commit/abort/reset broadcast.
        self._epoch = 0
        #: Epoch at which each set last had *every* line lazily processed.
        self._set_epochs: Dict[int, int] = {}
        #: line address -> resident version slots, in set-list order.
        self._by_base: Dict[int, List[int]] = {}
        #: slot -> LineView facade (identity-cached; popped on slot free).
        self._views: Dict[int, LineView] = {}
        #: Maintained counters backing the snoop filters.
        self._spec_lines = 0
        self._sm_live = 0
        #: Hierarchy hook: called ``(cache, base, present)`` when this cache
        #: gains its first / loses its last version of a line address.
        self.presence_listener: Optional[Callable] = None
        # Precomputed address masks (power-of-two geometry is the norm;
        # anything else falls back to div/mod).
        if line_size & (line_size - 1) == 0:
            self._offset_mask = line_size - 1
            self._line_shift = line_size.bit_length() - 1
        else:
            self._offset_mask = None
            self._line_shift = None
        self._index_mask = (self.num_sets - 1
                            if self.num_sets & (self.num_sets - 1) == 0
                            else None)

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        mask = self._offset_mask
        if mask is not None:
            return addr & ~mask
        return addr - (addr % self.line_size)

    def set_index(self, addr: int) -> int:
        """Set index depends only on the address, never on VIDs (4.1)."""
        if self._offset_mask is not None and self._index_mask is not None:
            return (addr >> self._line_shift) & self._index_mask
        return (self.line_addr(addr) // self.line_size) % self.num_sets

    def _set_list(self, index: int) -> List[int]:
        slots = self._sets.get(index)
        if slots is None:
            slots = self._sets[index] = []
        return slots

    # ------------------------------------------------------------------
    # Views and detached records
    # ------------------------------------------------------------------

    def _view(self, slot: int) -> LineView:
        view = self._views.get(slot)
        if view is None:
            view = self._views[slot] = LineView(self, slot)
        return view

    def _make_record(self, slot: int) -> CacheLine:
        """Snapshot a slot's columns into a detached CacheLine record."""
        store = self._store
        record = CacheLine(
            store.addr[slot], STATE_FROM_CODE[store.state[slot]],
            store.data[slot], store.mod_vid[slot], store.high_vid[slot],
            store.seen_aborts[slot], store.lru_tick[slot])
        record.epoch = store.epoch[slot]
        return record

    def _free_slot(self, slot: int) -> CacheLine:
        """Release an unlinked slot, detaching its view onto a record."""
        record = self._make_record(slot)
        view = self._views.pop(slot, None)
        if view is not None:
            view._detach(record)
        self._store.release(slot)
        return record

    # ------------------------------------------------------------------
    # Index / filter maintenance
    # ------------------------------------------------------------------

    def _index_add_slot(self, slot: int) -> None:
        """Enter a slot into the per-base index and filter counters."""
        store = self._store
        base = store.addr[slot]
        bucket = self._by_base.get(base)
        if bucket is None:
            bucket = self._by_base[base] = []
            if self.presence_listener is not None:
                self.presence_listener(self, base, True)
        bucket.append(slot)
        code = store.state[slot]
        if code >= CODE_SM:
            self._spec_lines += 1
            if code == CODE_SM and store.mod_vid[slot] > 0:
                self._sm_live += 1

    def _index_remove_slot(self, slot: int) -> None:
        """Drop a slot from the per-base index and filter counters."""
        store = self._store
        base = store.addr[slot]
        bucket = self._by_base[base]
        bucket.remove(slot)
        if not bucket:
            del self._by_base[base]
            if self.presence_listener is not None:
                self.presence_listener(self, base, False)
        code = store.state[slot]
        if code >= CODE_SM:
            self._spec_lines -= 1
            if code == CODE_SM and store.mod_vid[slot] > 0:
                self._sm_live -= 1

    def _retag_slot(self, slot: int, code: int, mod_vid: int,
                    high_vid: int) -> None:  # hot-path
        """Change a slot's state/VIDs, keeping the filter counters exact."""
        store = self._store
        old = store.state[slot]
        old_spec = old >= CODE_SM
        new_spec = code >= CODE_SM
        if old_spec != new_spec:
            self._spec_lines += 1 if new_spec else -1
        old_sm = old == CODE_SM and store.mod_vid[slot] > 0
        new_sm = code == CODE_SM and mod_vid > 0
        if old_sm != new_sm:
            self._sm_live += 1 if new_sm else -1
        store.state[slot] = code
        store.mod_vid[slot] = mod_vid
        store.high_vid[slot] = high_vid

    @property
    def speculative_lines(self) -> int:
        """Resident speculative versions (maintained Figure 9 counter)."""
        return self._spec_lines

    def holds(self, addr: int) -> bool:
        """O(1): does this cache hold any version of ``addr``'s line?"""
        return self.line_addr(addr) in self._by_base

    # ------------------------------------------------------------------
    # Lazy commit/abort processing (section 5.3)
    # ------------------------------------------------------------------

    def _process_lazy_slot(self, slot: int) -> Optional[int]:  # hot-path
        """Resolve a slot's pending commit/abort transitions (section 5.3).

        The struct-of-arrays core of :meth:`process_lazy`: replays, in
        broadcast order, every event the line has not yet processed — for
        each unseen abort, the commits up to the pre-abort ``LC_VID`` apply
        first (Figure 6), then the abort (Figure 7); finally the current
        ``LC_VID`` commit level applies.

        Returns the slot if the version survives, ``None`` if a transition
        invalidated it (in which case it has been unlinked and freed).
        """
        store = self._store
        epoch = self._epoch
        if store.epoch[slot] == epoch:
            return slot
        history = self._abort_history
        code = store.state[slot]
        if code < CODE_SM:
            store.seen_aborts[slot] = len(history)
            store.epoch[slot] = epoch
            return slot
        stats = self.stats
        mod = store.mod_vid[slot]
        high = store.high_vid[slot]
        seen = store.seen_aborts[slot]
        pending = len(history)
        while seen < pending:
            lc_at_abort = history[seen]
            seen += 1
            store.seen_aborts[slot] = seen
            code2, mod2, high2 = commit_transition_code(
                code, mod, high, lc_at_abort)
            stats.lazy_commits_processed += 1
            code2, mod2, high2 = abort_transition_code(code2, mod2, high2)
            stats.lazy_aborts_processed += 1
            self._retag_slot(slot, code2, mod2, high2)
            code, mod, high = code2, mod2, high2
            if code == CODE_INVALID:
                self._remove_slot(slot)
                return None
            if code < CODE_SM:
                store.seen_aborts[slot] = pending
                store.epoch[slot] = epoch
                return slot
        code2, mod2, high2 = commit_transition_code(code, mod, high, self.lc_vid)
        if code2 != code or mod2 != mod or high2 != high:
            stats.lazy_commits_processed += 1
            self._retag_slot(slot, code2, mod2, high2)
            if code2 == CODE_INVALID:
                self._remove_slot(slot)
                return None
        store.epoch[slot] = epoch
        return slot

    def process_lazy(self, line):
        """Resolve a line's pending transitions; object-facade entry point.

        Accepts a resident :class:`LineView` (the hot case, delegated to
        :meth:`_process_lazy_slot`), a detached view, or a plain
        :class:`CacheLine` record.  Returns the line if it is still valid
        afterwards, or ``None`` if a transition invalidated it (in which
        case it has been removed from its set).
        """
        if type(line) is LineView and line._snap is None:
            if line.cache is self:
                slot = line._slot
                return line if self._process_lazy_slot(slot) is not None else None
        return self._process_lazy_object(line)

    def _process_lazy_object(self, line):
        """Replay pending events on a detached record or foreign view.

        Mirrors the object-model implementation exactly (counters included)
        so behaviour for lines outside this cache's arena is unchanged.
        """
        epoch = self._epoch
        if line.epoch == epoch:
            return line
        if not line.state.speculative:
            line.seen_aborts = len(self._abort_history)
            line.epoch = epoch
            return line
        history = self._abort_history
        while line.seen_aborts < len(history):
            lc_at_abort = history[line.seen_aborts]
            line.seen_aborts += 1
            state, (mod, high) = commit_transition(
                line.state, line.mod_vid, line.high_vid, lc_at_abort)
            self.stats.lazy_commits_processed += 1
            state, (mod, high) = abort_transition(state, mod, high)
            self.stats.lazy_aborts_processed += 1
            line.retag(state, mod, high)
            if state is State.INVALID:
                return None
            if not state.speculative:
                line.seen_aborts = len(history)
                line.epoch = epoch
                return line
        state, (mod, high) = commit_transition(
            line.state, line.mod_vid, line.high_vid, self.lc_vid)
        if state is not line.state or mod != line.mod_vid or high != line.high_vid:
            self.stats.lazy_commits_processed += 1
            line.retag(state, mod, high)
        if state is State.INVALID:
            return None
        line.epoch = epoch
        return line

    def _remove_slot(self, slot: int) -> CacheLine:
        """Unlink a resident slot from its set and index, and free it."""
        store = self._store
        self._set_list(self.set_index(store.addr[slot])).remove(slot)
        self._index_remove_slot(slot)
        return self._free_slot(slot)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _process_bucket(self, base: int) -> Optional[List[int]]:  # hot-path
        """Lazily process every version of ``base``; return the survivors.

        Returns the (possibly shrunk) live bucket, or ``None`` when no
        version survives.  Skips the replay entirely when every slot is
        epoch-current — the sweep it skips would be an exact no-op.
        """
        bucket = self._by_base.get(base)
        if not bucket:
            return None
        epochs = self._store.epoch
        epoch = self._epoch
        for slot in bucket:
            if epochs[slot] != epoch:
                break
        else:
            return bucket
        process = self._process_lazy_slot
        # lint-ok: RL006 (epoch-gated fold: once per stale epoch, not per access)
        for slot in list(bucket):
            process(slot)
        bucket = self._by_base.get(base)
        return bucket if bucket else None

    def versions(self, addr: int) -> List[LineView]:
        """All valid versions of ``addr`` present, lazily processed first."""
        bucket = self._process_bucket(self.line_addr(addr))
        if bucket is None:
            return []
        view = self._view
        return [view(slot) for slot in bucket]

    def effective_vid(self, req_vid: int) -> int:
        """Non-speculative requests use ``LC_VID`` for hit logic (5.3)."""
        return self.lc_vid if req_vid == 0 else req_vid

    def lookup_slot(self, base: int, req_vid: int) -> Optional[int]:  # hot-path
        """Slot of the unique version a request with ``req_vid`` hits, if any.

        ``base`` must already be the line address; ``req_vid`` is the raw
        request VID (the LC_VID substitution for non-speculative requests
        happens here).
        """
        bucket = self._by_base.get(base)
        if not bucket:
            return None
        store = self._store
        if len(bucket) == 1:
            slot = bucket[0]
            # Dominant case: one resident non-speculative, fully-processed
            # version.  It hits any VID, engages no comparator, and cannot
            # collide with a second hit — skip the generic scan.
            if store.epoch[slot] == self._epoch and store.state[slot] < CODE_SM:
                self._tick += 1
                store.lru_tick[slot] = self._tick
                return slot
        eff = self.lc_vid if req_vid == 0 else req_vid
        bucket = self._process_bucket(base)
        if bucket is None:
            return None
        state_col = store.state
        mod_col = store.mod_vid
        high_col = store.high_vid
        compare = self.comparator.compare
        hit = None
        for slot in bucket:
            code = state_col[slot]
            if code >= CODE_SM:
                mod = mod_col[slot]
                high = high_col[slot]
                # Model the tag-check energy of the VID comparators (4.5).
                compare(eff, mod)
                compare(eff, high)
                if code <= CODE_SE:
                    hits = eff >= mod
                else:
                    hits = mod <= eff < high
            else:
                hits = code != CODE_INVALID
            if hits:
                if hit is not None:
                    raise AssertionError(
                        f"{self.name}: two versions hit VID {eff} at "
                        f"0x{base:x}: {self._view(hit)!r} and {self._view(slot)!r}"
                    )
                hit = slot
        if hit is not None:
            self._tick += 1
            store.lru_tick[hit] = self._tick
        return hit

    def lookup(self, addr: int, req_vid: int) -> Optional[LineView]:
        """Return the unique version a request with ``req_vid`` hits, if any."""
        slot = self.lookup_slot(self.line_addr(addr), req_vid)
        if slot is None:
            return None
        return self._view(slot)

    def has_latest_spec_version(self, addr: int) -> bool:
        """Is there an ``S-M`` version asserting "speculatively modified"?

        Used for the section 5.4 overflow-retrieval assertion: when an S-M
        copy snoops a request it cannot serve, it asserts that the line was
        speculatively modified, so a memory response must arrive as
        ``S-O(0, reqVID + 1)``.

        Fast path: no transition ever *creates* an ``S-M(modVID>0)`` line
        out of another state, so when the maintained count of such lines is
        zero and every resident version of the address is epoch-current
        (i.e. lazy processing would be a no-op), the answer is False without
        touching any line.
        """
        base = self.line_addr(addr)
        bucket = self._by_base.get(base)
        if not bucket:
            return False
        store = self._store
        if self._sm_live == 0:
            epochs = store.epoch
            epoch = self._epoch
            for slot in bucket:
                if epochs[slot] != epoch:
                    break
            else:
                return False
        bucket = self._process_bucket(base)
        if bucket is None:
            return False
        state_col = store.state
        mod_col = store.mod_vid
        for slot in bucket:
            if state_col[slot] == CODE_SM and mod_col[slot] > 0:
                return True
        return False

    # ------------------------------------------------------------------
    # Installation and eviction
    # ------------------------------------------------------------------

    def install_slot(self, line: CacheLine) -> Tuple[int, List[CacheLine]]:
        """Insert a version, evicting as needed; struct-of-arrays core.

        An existing version with the same ``(addr, modVID)`` is replaced
        (it is the same conceptual version, e.g. a stale shared copy).
        Returns the new slot and the evicted lines as detached records;
        the hierarchy decides whether they are written back, passed down a
        level, overflowed to memory, or force an abort (section 5.4).
        """
        store = self._store
        base = line.addr
        spec = line.state.speculative
        mod = line.mod_vid
        bucket = self._by_base.get(base)
        if bucket:
            state_col = store.state
            mod_col = store.mod_vid
            for slot in list(bucket):
                if mod_col[slot] == mod and (state_col[slot] >= CODE_SM) == spec:
                    self._remove_slot(slot)
        index = self.set_index(base)
        slots = self._set_list(index)
        evicted: List[CacheLine] = []
        epoch = self._epoch
        while True:
            # Resolve pending lazy transitions first: committed/aborted
            # versions may free slots without any real eviction.  Skipped
            # when the whole set is epoch-current — the replay would be a
            # no-op for every line.
            if self._set_epochs.get(index) != epoch:
                process = self._process_lazy_slot
                for candidate in list(slots):
                    process(candidate)
                self._set_epochs[index] = epoch
            if len(slots) < self.assoc:
                break
            victim = self._choose_victim_slot(slots)
            slots.remove(victim)
            self._index_remove_slot(victim)
            was_invalid = store.state[victim] == CODE_INVALID
            evicted.append(self._free_slot(victim))
            if not was_invalid:
                # An INVALID fallback victim never really left the
                # hierarchy; counting it would pollute the Table 1 /
                # ablation eviction numbers.
                self.stats.evictions += 1
        slot = store.alloc(base, line.state.code, line.data, mod, line.high_vid)
        # A freshly installed line has no pending events in *this* cache.
        store.seen_aborts[slot] = len(self._abort_history)
        store.epoch[slot] = epoch
        slots.append(slot)
        self._index_add_slot(slot)
        self._tick += 1
        store.lru_tick[slot] = self._tick
        return slot, evicted

    def install(self, line: CacheLine) -> List[CacheLine]:
        """Insert a version, evicting as needed; returns the evicted lines."""
        _, evicted = self.install_slot(line)
        return evicted

    def _choose_victim_slot(self, slots: List[int]) -> int:  # hot-path
        """LRU within the lowest occupied priority class (section 5.4).

        Callers have already lazily processed every slot in the set.
        """
        store = self._store
        state_col = store.state
        mod_col = store.mod_vid
        lru_col = store.lru_tick
        classes = _VICTIM_CLASS_BY_CODE
        best = -1
        best_pr = 6
        best_tick = 0
        for slot in slots:
            code = state_col[slot]
            if code == CODE_INVALID:
                continue
            if code == CODE_SO and mod_col[slot] == 0:
                pr = _PRIORITY_SPEC_OVERFLOWABLE
            else:
                pr = classes[code]
            tick = lru_col[slot]
            if best < 0 or pr < best_pr or (pr == best_pr and tick < best_tick):
                best = slot
                best_pr = pr
                best_tick = tick
        if best < 0:
            return slots[0]
        return best

    def drop(self, line) -> None:
        """Remove a version without writeback (silent invalidation)."""
        if type(line) is LineView and line._snap is None and line.cache is self:
            self._remove_slot(line._slot)

    def all_lines(self) -> Iterable[LineView]:
        view = self._view
        for slots in self._sets.values():
            for slot in list(slots):
                yield view(slot)

    def occupancy(self) -> int:
        """Number of valid versions currently resident."""
        return sum(len(slots) for slots in self._sets.values())

    # ------------------------------------------------------------------
    # Broadcast operations (sections 4.4, 4.6, 5.3)
    # ------------------------------------------------------------------

    def broadcast_commit(self, vid: int) -> None:
        """Record a commit: bump ``LC_VID``.  O(1).

        No per-line VID comparison or state transition happens here — that
        is the entire point of the lazy scheme.  (The paper flash-sets a CB
        bit column; commit idempotence makes even that unnecessary in the
        simulator — see :meth:`process_lazy`.)
        """
        self.lc_vid = vid
        self._epoch += 1
        self.stats.commit_broadcasts += 1

    def broadcast_abort(self) -> None:
        """Record an abort: append to the abort history.  O(1).

        The history entry snapshots the ``LC_VID`` in force when the abort
        arrived, so lazy processing can order each line's pending commit
        transitions before the abort — the exact-ordering refinement of the
        paper's AB-bit scheme (see DESIGN.md).
        """
        self.stats.abort_broadcasts += 1
        self._epoch += 1
        self._abort_history.append(self.lc_vid)

    def vid_reset(self) -> None:  # hot-path
        """Apply the section 4.6 VID reset to this cache.

        Pending lazy transitions are resolved, then every surviving
        speculative line is scrubbed in one batched sweep over the state
        columns: latest versions become plain M/E ("this essentially
        commits them") and superseded copies die.  ``LC_VID`` returns to 0.
        """
        self.stats.vid_resets += 1
        self._epoch += 1
        store = self._store
        state_col = store.state
        mod_col = store.mod_vid
        high_col = store.high_vid
        seen_col = store.seen_aborts
        process = self._process_lazy_slot
        retag = self._retag_slot
        # lint-ok: RL006 (whole-cache scrub: once per VID reset, not per access)
        for slots in list(self._sets.values()):  # lint-ok: RL006 (same)
            for slot in list(slots):
                if process(slot) is None:
                    continue
                code, mod, high = reset_transition_code(
                    state_col[slot], mod_col[slot], high_col[slot])
                retag(slot, code, mod, high)
                seen_col[slot] = 0
                if code == CODE_INVALID:
                    self._remove_slot(slot)
        self._abort_history.clear()
        self.lc_vid = 0

    # ------------------------------------------------------------------
    # Debug support
    # ------------------------------------------------------------------

    def _inject_line(self, line: CacheLine) -> LineView:
        """Test hook: force a raw resident version in.

        Bypasses replacement, eviction and lazy processing — the slot-arena
        equivalent of appending a hand-built line straight onto a set list
        (used to fabricate states the protocol itself would never produce).
        """
        store = self._store
        slot = store.alloc(line.addr, line.state.code, line.data,
                           line.mod_vid, line.high_vid)
        store.seen_aborts[slot] = line.seen_aborts
        store.epoch[slot] = line.epoch
        store.lru_tick[slot] = line.lru_tick
        self._set_list(self.set_index(line.addr)).append(slot)
        self._index_add_slot(slot)
        return self._view(slot)

    def check_index_integrity(self) -> None:
        """Assert the fast-path index and counters match the set lists."""
        store = self._store
        by_base: Dict[int, List[int]] = {}
        spec = sm = 0
        for slots in self._sets.values():
            for slot in slots:
                code = store.state[slot]
                assert code != FREE_CODE, (
                    f"{self.name}: freed slot {slot} still linked in a set")
                by_base.setdefault(store.addr[slot], []).append(slot)
                if code >= CODE_SM:
                    spec += 1
                    if code == CODE_SM and store.mod_vid[slot] > 0:
                        sm += 1
        recorded = {base: list(bucket) for base, bucket in self._by_base.items()}
        assert by_base == recorded, f"{self.name}: per-base index diverged"
        assert spec == self._spec_lines, (
            f"{self.name}: speculative-line counter {self._spec_lines} != {spec}")
        assert sm == self._sm_live, (
            f"{self.name}: S-M filter counter {self._sm_live} != {sm}")
        for slot, view in self._views.items():
            assert view._snap is None and view.cache is self, (
                f"{self.name}: detached view still cached for slot {slot}")
            assert view._slot == slot and store.state[slot] != FREE_CODE, (
                f"{self.name}: view cache entry for slot {slot} is stale")
