"""The HMTX coherence protocol as pure transition functions.

This module encodes Figures 4, 6 and 7 of the paper as side-effect-free
functions over ``(state, modVID, highVID, requestVID)`` tuples.  Keeping the
protocol pure and separate from the cache container makes the informal
correctness argument of section 4.3 directly testable: the flow-, anti- and
output-dependence cases are exhaustively enumerable.

Key rules (section 4.1):

* A request with VID ``a`` *hits* a speculative version ``(m, h)`` iff

  - ``S-M``/``S-E``: ``a >= m``
  - ``S-O``/``S-S``: ``m <= a < h``

  Requests hit at most one version of a line; the conditions above partition
  the VID space across the versions the protocol can create.

* A speculative **write** with VID ``a`` to the hitting version

  - aborts when the version is superseded (``S-O``/``S-S``) or when
    ``a < highVID`` (a logically-later access already happened);
  - modifies in place when ``a == modVID`` (same transaction re-writes);
  - otherwise creates a new ``S-M(a, a)`` version and leaves the unmodified
    copy behind in ``S-O(m, a)``.

* A speculative **read** with VID ``a`` raises the hit version's ``highVID``
  to ``max(highVID, a)`` on latest versions; superseded versions are
  immutable (their ``highVID`` records the superseding write).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from .states import (
    CODE_EXCLUSIVE,
    CODE_INVALID,
    CODE_MODIFIED,
    CODE_OWNED,
    CODE_SE,
    CODE_SHARED,
    CODE_SM,
    CODE_SO,
    CODE_SS,
    LATEST_SPEC_STATES,
    STATE_FROM_CODE,
    SUPERSEDED_SPEC_STATES,
    State,
    is_speculative,
)

Vids = Tuple[int, int]


class AccessKind(enum.Enum):
    """Kinds of memory requests the protocol distinguishes."""

    READ = "read"
    WRITE = "write"


class WriteOutcome(enum.Enum):
    """What a speculative write does to the version it hits."""

    IN_PLACE = "in-place"
    NEW_VERSION = "new-version"
    ABORT = "abort"


@dataclass(frozen=True)
class NewVersionPlan:
    """Result of planning a copy-creating speculative write (Figure 4).

    ``old_state``/``old_vids`` describe what the previously-latest copy
    becomes (the unmodified backup), ``new_vids`` the fresh ``S-M`` version.
    """

    old_state: State
    old_vids: Vids
    new_vids: Vids


def version_hits(state: State, mod_vid: int, high_vid: int, req_vid: int) -> bool:
    """Does a request with VID ``req_vid`` hit this version of the line?

    Non-speculative valid states always hit (plain tag match); speculative
    states apply the VID window rules of section 4.1.  ``req_vid`` must
    already be the *effective* VID (non-speculative requests substitute the
    cache's ``LC_VID``, section 5.3).
    """
    if state is State.INVALID:
        return False
    if not state.speculative:
        return True
    if state.latest_spec:
        return req_vid >= mod_vid
    # S-O / S-S: serves the window [modVID, highVID).
    return mod_vid <= req_vid < high_vid


def read_transition(state: State, mod_vid: int, high_vid: int,
                    req_vid: int) -> Tuple[State, Vids]:
    """State/VIDs of a version after a speculative read hits it.

    The caller guarantees :func:`version_hits` is true and ``req_vid > 0``.
    Non-speculative states are entered into the speculative world here:
    a dirty line becomes ``S-M(0, a)``, a clean line ``S-E(0, a)``
    (Figure 4; O/S follow the M/E path once exclusive access is acquired).
    """
    if state.latest_spec:
        high = high_vid if high_vid >= req_vid else req_vid
        return state, (mod_vid, high)
    if state.superseded_spec:
        return state, (mod_vid, high_vid)
    if state is State.MODIFIED or state is State.OWNED:
        return State.SM, (0, req_vid)
    if state is State.EXCLUSIVE or state is State.SHARED:
        return State.SE, (0, req_vid)
    raise ValueError(f"read cannot hit state {state}")


def write_outcome(state: State, mod_vid: int, high_vid: int,
                  req_vid: int) -> WriteOutcome:
    """Classify a speculative write against the version it hits (Figure 4).

    Misspeculation cases (section 4.3):

    * the hit version is superseded (``S-O``/``S-S``) — some logically-later
      VID already superseded or is being served by this copy;
    * ``req_vid < high_vid`` on a latest version — a logically-later load or
      store already touched the line (read-after-write / output hazard).
    """
    if state.superseded_spec:
        return WriteOutcome.ABORT
    if state.latest_spec:
        if req_vid < high_vid:
            return WriteOutcome.ABORT
        if req_vid == mod_vid:
            return WriteOutcome.IN_PLACE
        return WriteOutcome.NEW_VERSION
    # Non-speculative version: always safe, creates the first speculative
    # version of the line.
    return WriteOutcome.NEW_VERSION


def plan_new_version(state: State, mod_vid: int, high_vid: int,
                     req_vid: int) -> NewVersionPlan:
    """Plan the copy-creating write of Figure 4.

    The previously-latest copy is preserved unmodified in ``S-O`` with its
    ``highVID`` raised to the writing VID, so that reads with lower VIDs can
    still find their data (write-after-read correctness).  The new version
    starts life as ``S-M(a, a)``.
    """
    if write_outcome(state, mod_vid, high_vid, req_vid) is not WriteOutcome.NEW_VERSION:
        raise ValueError("plan_new_version requires a NEW_VERSION outcome")
    if is_speculative(state):
        old_vids = (mod_vid, req_vid)
    else:
        old_vids = (0, req_vid)
    return NewVersionPlan(
        old_state=State.SO,
        old_vids=old_vids,
        new_vids=(req_vid, req_vid),
    )


# ----------------------------------------------------------------------
# Integer-code primitives (struct-of-arrays hot path, DESIGN.md section 13)
# ----------------------------------------------------------------------
#
# The line store keeps states as one byte per line, so the lazy-processing
# sweeps run on ``(code, modVID, highVID)`` integer triples.  These are the
# *primary* implementations; the enum-typed functions below delegate to
# them, which keeps the two representations equivalent by construction
# (and the equivalence is additionally pinned by an exhaustive
# differential test).

#: Figure 7's surviving-state map on codes: S-M -> O, S-E -> S,
#: S-O -> O, S-S -> S (see :func:`abort_transition` for the rationale).
_ABORT_SURVIVOR_CODE = {
    CODE_SM: CODE_OWNED,
    CODE_SE: CODE_SHARED,
    CODE_SO: CODE_OWNED,
    CODE_SS: CODE_SHARED,
}


def version_hits_code(code: int, mod_vid: int, high_vid: int,
                      req_vid: int) -> bool:
    """:func:`version_hits` on an integer state code."""
    if code >= CODE_SM:
        if code <= CODE_SE:
            return req_vid >= mod_vid
        return mod_vid <= req_vid < high_vid
    return code != CODE_INVALID


def commit_transition_code(code: int, mod_vid: int, high_vid: int,
                           commit_vid: int) -> Tuple[int, int, int]:
    """:func:`commit_transition` on an integer state code."""
    if code < CODE_SM:
        return code, mod_vid, high_vid
    if commit_vid >= high_vid:
        if code == CODE_SM:
            return CODE_MODIFIED, 0, 0
        if code == CODE_SE:
            return CODE_EXCLUSIVE, 0, 0
        return CODE_INVALID, 0, 0
    if 0 < mod_vid <= commit_vid:
        return code, 0, high_vid
    return code, mod_vid, high_vid


def abort_transition_code(code: int, mod_vid: int,
                          high_vid: int) -> Tuple[int, int, int]:
    """:func:`abort_transition` on an integer state code."""
    if code < CODE_SM:
        return code, mod_vid, high_vid
    if mod_vid > 0:
        return CODE_INVALID, 0, 0
    return _ABORT_SURVIVOR_CODE[code], 0, 0


def reset_transition_code(code: int, mod_vid: int,
                          high_vid: int) -> Tuple[int, int, int]:
    """:func:`reset_transition` on an integer state code."""
    return commit_transition_code(code, mod_vid, high_vid, high_vid)


def commit_transition(state: State, mod_vid: int, high_vid: int,
                      commit_vid: int) -> Tuple[State, Vids]:
    """Apply Figure 6's commit state machine to one version.

    * ``commit_vid >= highVID``: every transaction that touched this version
      has committed.  Latest versions become plain non-speculative lines
      (``S-M -> M``, ``S-E -> E``); superseded copies are dead
      (``S-O``/``S-S -> I``).
    * ``commit_vid < highVID``: the version stays speculative, but if its
      creating store belongs to a committed transaction (``modVID`` at or
      below the commit VID) the data is now architecturally real and
      ``modVID`` drops to 0.

    The ``modVID <= commit_vid`` generalisation of the figure's
    ``modVID == commit_vid`` condition is what lets several consecutive
    commits be folded into a single lazy processing step (section 5.3).
    """
    code, mod, high = commit_transition_code(
        state.code, mod_vid, high_vid, commit_vid)
    return STATE_FROM_CODE[code], (mod, high)


def abort_transition(state: State, mod_vid: int, high_vid: int) -> Tuple[State, Vids]:
    """Apply Figure 7's abort state machine to one version.

    Versions created by a speculative store (``modVID > 0``) hold doomed
    data and are invalidated.  Versions with ``modVID == 0`` hold
    architecturally-real data that was merely *read* speculatively (or
    backed up before a speculative write); they shed their speculative
    marking.

    Deviation from the paper's figure (see DESIGN.md): the figure maps
    ``S-M -> M`` and ``S-E -> E``, i.e. back to *exclusive* states.  But a
    surviving owner may still have ``S-S``-derived peer copies that also
    survive the abort (as ``S``); an owner that claims exclusivity could
    then silently write while a stale shared copy keeps serving old data.
    We therefore map to the shared states — ``S-M -> O``, ``S-E -> S``
    (``S-O -> O``, ``S-S -> S`` as in the figure) — which preserves data
    and dirtiness and merely costs one upgrade transaction on the next
    write.  Aborts are rare, so this is squarely within the paper's
    "push slowdowns to the rare abort case" philosophy.
    """
    code, mod, high = abort_transition_code(state.code, mod_vid, high_vid)
    return STATE_FROM_CODE[code], (mod, high)


def reset_transition(state: State, mod_vid: int, high_vid: int) -> Tuple[State, Vids]:
    """Apply the VID-reset scrub of section 4.6 to one version.

    A reset is only legal once every outstanding transaction has committed,
    so any surviving latest version is real data (``-> M``/``E``) and any
    surviving superseded copy can never be hit again (``-> I``).
    """
    return commit_transition(state, mod_vid, high_vid, commit_vid=high_vid)


def snoop_response_state(owner_state: State) -> Optional[State]:
    """State in which a *peer* requester caches a read copy of a version.

    ``S-S`` copies never respond to snoops (exactly one of ``S-M``/``S-O``/
    ``S-E`` answers instead, section 4.1); the requester receives a shared
    speculative copy.
    """
    if owner_state is State.SS:
        return None
    if is_speculative(owner_state):
        return State.SS
    if owner_state in (State.MODIFIED, State.OWNED):
        return State.SHARED
    if owner_state in (State.EXCLUSIVE, State.SHARED):
        return State.SHARED
    return None
