"""Version IDs (VIDs) for multithreaded transactions.

Every multithreaded transaction (MTX) is assigned a *version ID* in original
sequential program order (paper section 3).  VID 0 is reserved for
non-speculative execution.  VIDs are stored in ``m`` bits of tag per cache
line (the paper uses ``m = 6``), so the space is finite and must be recycled
through the *VID reset* protocol of section 4.6.

This module provides:

* :class:`VidSpace` — the finite VID namespace, allocation in program order,
  exhaustion detection, and the reset protocol bookkeeping.
* :class:`CascadedComparator` — a behavioural model of the split high/low-bit
  comparator of section 4.5, used by the power model and statistics to count
  how often the slow cascading path is exercised.

VIDs themselves are plain ``int``s; keeping them primitive keeps the
simulator's inner loop cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

NONSPECULATIVE_VID = 0
"""VID attached to non-speculative memory operations."""

DEFAULT_VID_BITS = 6
"""The paper settles on m = 6 bits per VID as a fair medium (section 4.6)."""


class VidExhaustedError(RuntimeError):
    """Raised when a new VID is requested but the m-bit space is used up.

    Software must wait for the transaction holding the maximum VID to commit
    and then trigger a :meth:`VidSpace.reset` (section 4.6).
    """


@dataclass
class VidSpace:
    """The finite, program-ordered VID namespace of an HMTX machine.

    Parameters
    ----------
    bits:
        Number of tag bits per VID (``m`` in the paper).  Usable speculative
        VIDs are ``1 .. 2**bits - 1``; VID 0 is non-speculative.
    """

    bits: int = DEFAULT_VID_BITS
    _next: int = field(default=1, init=False)
    _resets: int = field(default=0, init=False)
    _allocated_total: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("VID space needs at least 1 bit")

    @property
    def max_vid(self) -> int:
        """Largest usable VID, ``2**bits - 1``."""
        return (1 << self.bits) - 1

    @property
    def next_vid(self) -> int:
        """The VID the next :meth:`allocate` call will hand out."""
        return self._next

    @property
    def resets(self) -> int:
        """How many VID resets have been performed so far."""
        return self._resets

    @property
    def allocated_total(self) -> int:
        """Total number of VIDs handed out across all reset epochs."""
        return self._allocated_total

    def exhausted(self) -> bool:
        """True when no further VID can be allocated before a reset."""
        return self._next > self.max_vid

    def allocate(self) -> int:
        """Return the next VID in original program order.

        Raises
        ------
        VidExhaustedError
            When all ``2**bits - 1`` speculative VIDs of this epoch are in
            use.  The caller must drain outstanding commits and call
            :meth:`reset`.
        """
        if self.exhausted():
            raise VidExhaustedError(
                f"all {self.max_vid} VIDs allocated; VID reset required"
            )
        vid = self._next
        self._next += 1
        self._allocated_total += 1
        return vid

    def reset(self) -> None:
        """Recycle the namespace after the maximum VID has committed.

        The memory-system side of the reset (clearing ``LC_VID`` registers
        and, after an abort, line VIDs) is performed by the cache hierarchy;
        this method only restarts allocation at VID 1.
        """
        self._next = 1
        self._resets += 1

    def rewind(self, vid: int) -> None:
        """Make ``vid`` the next VID to be allocated (abort recovery).

        After an abort flushes all uncommitted state, the aborted VIDs may be
        reissued for the re-executed transactions; the runtime rewinds the
        allocator to the first aborted VID.
        """
        if not 1 <= vid <= self.max_vid + 1:
            raise ValueError(f"cannot rewind to VID {vid}")
        self._next = vid


@dataclass
class CascadedComparator:
    """Behavioural model of the split VID comparator (section 4.5).

    Instead of two full m-bit comparisons per cache-set check, the high
    ``bits - low_bits`` bits are checked for equality while the low
    ``low_bits`` bits are magnitude-compared.  When the *high* bits of the two
    operands differ the fast path is insufficient and a cascading (slower)
    comparison completes the check.  The model counts both cases so the
    evaluation can report how rarely the slow path fires.
    """

    bits: int = DEFAULT_VID_BITS
    #: Width of the magnitude-compared low field; defaults to half the VID.
    low_bits: Optional[int] = None
    fast_comparisons: int = field(default=0, init=False)
    cascaded_comparisons: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.low_bits is None:
            self.low_bits = max(1, self.bits // 2)
        if not 0 < self.low_bits <= self.bits:
            raise ValueError("low_bits must be in (0, bits]")

    def compare(self, a: int, b: int) -> int:
        """Three-way compare ``a`` vs ``b``; returns negative/zero/positive.

        Counts whether the fast path (equal high bits) or the cascading path
        was needed, mirroring section 4.5's energy argument.
        """
        high_shift = self.low_bits
        if (a >> high_shift) == (b >> high_shift):
            self.fast_comparisons += 1
        else:
            self.cascaded_comparisons += 1
        return (a > b) - (a < b)

    @property
    def total_comparisons(self) -> int:
        return self.fast_comparisons + self.cascaded_comparisons

    @property
    def cascade_fraction(self) -> float:
        """Fraction of comparisons that needed the slow cascading path."""
        total = self.total_comparisons
        if total == 0:
            return 0.0
        return self.cascaded_comparisons / total
