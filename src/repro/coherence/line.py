"""Cache line model with HMTX version tags.

Each physical cache line carries, on top of its MOESI/speculative state and
data, the two VIDs of section 4.1:

``modVID``
    VID of the transaction whose speculative store created this version.
    0 for every non-speculative version.
``highVID``
    Highest VID that has accessed this version.

and the lazy-processing tag of section 5.3:

``seen_aborts``
    The simulator's exact formulation of the paper's CB/AB bits: the cache
    records each abort broadcast (with the ``LC_VID`` in force at that
    moment) in a tiny history; a line remembers how many aborts it has
    already processed.  On the next touch the deferred Figure 6/7
    transitions replay in order — commit up to the pre-abort ``LC_VID``,
    then the abort, then the current commit level.  Broadcasts are O(1),
    per-line processing is O(1), and the CB-set-then-abort race of the
    flash-bit scheme (see DESIGN.md) cannot occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .states import State, is_dirty, is_speculative


@dataclass
class CacheLine:
    """One physical cache line (one *version* of an address).

    Multiple :class:`CacheLine` objects with the same ``addr`` but different
    ``mod_vid``/``high_vid`` may coexist in a single cache set — that is how
    HMTX materialises multiple memory versions (section 4.1).
    """

    addr: int
    state: State
    data: List[int]
    mod_vid: int = 0
    high_vid: int = 0
    #: Abort broadcasts this line has already lazily processed (stamped to
    #: the owning cache's abort count at install time).
    seen_aborts: int = 0
    #: Monotonic per-cache counter for LRU victim selection.
    lru_tick: int = 0

    def __post_init__(self) -> None:
        if self.mod_vid < 0 or self.high_vid < 0:
            raise ValueError("VIDs are non-negative")

    @property
    def vids(self) -> tuple:
        """The ``(modVID, highVID)`` tuple used throughout the paper."""
        return (self.mod_vid, self.high_vid)

    def is_speculative(self) -> bool:
        return is_speculative(self.state)

    def is_dirty(self) -> bool:
        return is_dirty(self.state)

    def copy_data(self) -> List[int]:
        """A defensive copy of the line's words (new versions must not alias)."""
        return list(self.data)

    def set_vids(self, mod_vid: int, high_vid: int) -> None:
        self.mod_vid = mod_vid
        self.high_vid = high_vid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(0x{self.addr:x}, {self.state}"
            f"({self.mod_vid},{self.high_vid}))"
        )
