"""Cache line model with HMTX version tags.

Each physical cache line carries, on top of its MOESI/speculative state and
data, the two VIDs of section 4.1:

``modVID``
    VID of the transaction whose speculative store created this version.
    0 for every non-speculative version.
``highVID``
    Highest VID that has accessed this version.

and the lazy-processing tags of section 5.3:

``seen_aborts``
    The simulator's exact formulation of the paper's CB/AB bits: the cache
    records each abort broadcast (with the ``LC_VID`` in force at that
    moment) in a tiny history; a line remembers how many aborts it has
    already processed.  On the next touch the deferred Figure 6/7
    transitions replay in order — commit up to the pre-abort ``LC_VID``,
    then the abort, then the current commit level.  Broadcasts are O(1),
    per-line processing is O(1), and the CB-set-then-abort race of the
    flash-bit scheme (see DESIGN.md) cannot occur.
``epoch``
    Fast-path tag (DESIGN.md, "Fast-path indexing"): the owning cache's
    event epoch at which this line was last lazily processed.  The cache
    bumps its epoch on every commit/abort/reset broadcast, so
    ``epoch == cache epoch`` proves the line has no pending events and
    :meth:`~repro.coherence.cache.VersionedCache.process_lazy` can return
    immediately — the replay it skips would have been an exact no-op.

Lines are plain ``__slots__`` objects (no dataclass machinery): millions
are touched per simulated run, and attribute storage plus identity-based
equality are measurably cheaper.  Within one cache, field equality implied
identity anyway (``lru_tick`` is unique per touch), so switching list
membership tests to identity does not change behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .states import State


class CacheLine:
    """One physical cache line (one *version* of an address).

    Multiple :class:`CacheLine` objects with the same ``addr`` but different
    ``mod_vid``/``high_vid`` may coexist in a single cache set — that is how
    HMTX materialises multiple memory versions (section 4.1).

    State and VID changes on an installed line must go through
    :meth:`retag`/:meth:`set_state`/:meth:`set_vids` so the owning cache's
    maintained counters (speculative footprint, live ``S-M`` filter) stay
    exact; ``high_vid`` alone may be assigned directly since no filter
    depends on it.
    """

    __slots__ = ("addr", "state", "data", "mod_vid", "high_vid",
                 "seen_aborts", "lru_tick", "epoch", "cache")

    def __init__(self, addr: int, state: State, data: List[int],
                 mod_vid: int = 0, high_vid: int = 0,
                 seen_aborts: int = 0, lru_tick: int = 0) -> None:
        if mod_vid < 0 or high_vid < 0:
            raise ValueError("VIDs are non-negative")
        self.addr = addr
        self.state = state
        self.data = data
        self.mod_vid = mod_vid
        self.high_vid = high_vid
        #: Abort broadcasts this line has already lazily processed (stamped
        #: to the owning cache's abort count at install time).
        self.seen_aborts = seen_aborts
        #: Monotonic per-cache counter for LRU victim selection.
        self.lru_tick = lru_tick
        #: Owning cache's event epoch at the last lazy processing; -1 means
        #: "never processed by any cache".
        self.epoch = -1
        #: The cache currently holding this line (None while in flight).
        self.cache: Optional[object] = None

    @property
    def vids(self) -> Tuple[int, int]:
        """The ``(modVID, highVID)`` tuple used throughout the paper."""
        return (self.mod_vid, self.high_vid)

    def is_speculative(self) -> bool:
        return self.state.speculative

    def is_dirty(self) -> bool:
        return self.state.dirty

    def copy_data(self) -> List[int]:
        """A defensive copy of the line's words (new versions must not alias)."""
        return list(self.data)

    # ------------------------------------------------------------------
    # Tag mutation funnel (keeps owning-cache filter counters exact)
    # ------------------------------------------------------------------

    def retag(self, state: State, mod_vid: int, high_vid: int) -> None:
        """Change state and VIDs, notifying the owning cache's filters."""
        cache = self.cache
        if cache is not None:
            cache._on_retag(self, state, mod_vid)
        self.state = state
        self.mod_vid = mod_vid
        self.high_vid = high_vid

    def set_state(self, state: State) -> None:
        """Change the coherence state, keeping VIDs."""
        self.retag(state, self.mod_vid, self.high_vid)

    def set_vids(self, mod_vid: int, high_vid: int) -> None:
        self.retag(self.state, mod_vid, high_vid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(0x{self.addr:x}, {self.state}"
            f"({self.mod_vid},{self.high_vid}))"
        )
