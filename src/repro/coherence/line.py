"""Cache line model with HMTX version tags.

Since the struct-of-arrays rewrite (DESIGN.md §13) resident versions live
as *slots* in a per-cache :class:`~repro.coherence.store.LineStore`;
:class:`CacheLine` objects are the **in-flight record**: the value a caller
hands to ``install()``, the detached victim record an eviction returns, and
the snapshot a dropped :class:`LineView` decays to.  :class:`LineView` is
the object facade over a resident slot for the cold paths (tests,
experiments, trace tooling) that want attribute access.

Each physical cache line carries, on top of its MOESI/speculative state and
data, the two VIDs of section 4.1:

``modVID``
    VID of the transaction whose speculative store created this version.
    0 for every non-speculative version.
``highVID``
    Highest VID that has accessed this version.

and the lazy-processing tags of section 5.3:

``seen_aborts``
    The simulator's exact formulation of the paper's CB/AB bits: the cache
    records each abort broadcast (with the ``LC_VID`` in force at that
    moment) in a tiny history; a line remembers how many aborts it has
    already processed.  On the next touch the deferred Figure 6/7
    transitions replay in order — commit up to the pre-abort ``LC_VID``,
    then the abort, then the current commit level.  Broadcasts are O(1),
    per-line processing is O(1), and the CB-set-then-abort race of the
    flash-bit scheme (see DESIGN.md) cannot occur.
``epoch``
    Fast-path tag (DESIGN.md, "Fast-path indexing"): the owning cache's
    event epoch at which this line was last lazily processed.  The cache
    bumps its epoch on every commit/abort/reset broadcast, so
    ``epoch == cache epoch`` proves the line has no pending events and
    :meth:`~repro.coherence.cache.VersionedCache.process_lazy` can return
    immediately — the replay it skips would have been an exact no-op.

Lines are plain ``__slots__`` objects (no dataclass machinery): millions
are touched per simulated run, and attribute storage plus identity-based
equality are measurably cheaper.  Within one cache, field equality implied
identity anyway (``lru_tick`` is unique per touch), so switching list
membership tests to identity does not change behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .states import CODE_SM, STATE_FROM_CODE, State


class CacheLine:
    """One physical cache line (one *version* of an address).

    Multiple :class:`CacheLine` objects with the same ``addr`` but different
    ``mod_vid``/``high_vid`` may coexist in a single cache set — that is how
    HMTX materialises multiple memory versions (section 4.1).

    State and VID changes on an installed line must go through
    :meth:`retag`/:meth:`set_state`/:meth:`set_vids` so the owning cache's
    maintained counters (speculative footprint, live ``S-M`` filter) stay
    exact; ``high_vid`` alone may be assigned directly since no filter
    depends on it.
    """

    __slots__ = ("addr", "state", "data", "mod_vid", "high_vid",
                 "seen_aborts", "lru_tick", "epoch", "cache")

    def __init__(self, addr: int, state: State, data: List[int],
                 mod_vid: int = 0, high_vid: int = 0,
                 seen_aborts: int = 0, lru_tick: int = 0) -> None:
        if mod_vid < 0 or high_vid < 0:
            raise ValueError("VIDs are non-negative")
        self.addr = addr
        self.state = state
        self.data = data
        self.mod_vid = mod_vid
        self.high_vid = high_vid
        #: Abort broadcasts this line has already lazily processed (stamped
        #: to the owning cache's abort count at install time).
        self.seen_aborts = seen_aborts
        #: Monotonic per-cache counter for LRU victim selection.
        self.lru_tick = lru_tick
        #: Owning cache's event epoch at the last lazy processing; -1 means
        #: "never processed by any cache".
        self.epoch = -1
        #: The cache currently holding this line (None while in flight).
        self.cache: Optional[object] = None

    @property
    def vids(self) -> Tuple[int, int]:
        """The ``(modVID, highVID)`` tuple used throughout the paper."""
        return (self.mod_vid, self.high_vid)

    def is_speculative(self) -> bool:
        return self.state.speculative

    def is_dirty(self) -> bool:
        return self.state.dirty

    def copy_data(self) -> List[int]:
        """A defensive copy of the line's words (new versions must not alias)."""
        return list(self.data)

    # ------------------------------------------------------------------
    # Tag mutation funnel (keeps owning-cache filter counters exact)
    # ------------------------------------------------------------------

    def retag(self, state: State, mod_vid: int, high_vid: int) -> None:
        """Change state and VIDs, notifying the owning cache's filters."""
        cache = self.cache
        if cache is not None:
            cache._on_retag(self, state, mod_vid)
        self.state = state
        self.mod_vid = mod_vid
        self.high_vid = high_vid

    def set_state(self, state: State) -> None:
        """Change the coherence state, keeping VIDs."""
        self.retag(state, self.mod_vid, self.high_vid)

    def set_vids(self, mod_vid: int, high_vid: int) -> None:
        self.retag(self.state, mod_vid, high_vid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(0x{self.addr:x}, {self.state}"
            f"({self.mod_vid},{self.high_vid}))"
        )


class LineView:
    """Object facade over one resident slot of a cache's line store.

    Views are identity-cached per slot by the owning cache, so two views of
    the same resident version are the same object (``is`` keeps working for
    the ``keep=`` idiom and list membership).  When the underlying slot is
    freed — eviction, drop, lazy invalidation — the view *detaches*: the
    slot's final field values are snapshotted into a :class:`CacheLine`
    record and all further reads serve the snapshot, mirroring how a
    removed object line kept its last field values (with ``cache`` reset to
    ``None``).

    Mutators mirror :class:`CacheLine`'s funnel: :meth:`retag` (and
    :meth:`set_state`/:meth:`set_vids`) goes through the owning cache so
    the filter counters stay exact; ``high_vid``, ``seen_aborts`` and
    ``epoch`` may be assigned directly since no filter depends on them
    (the latter two are the lazy-processing stamps ``process_lazy``
    updates on object lines).
    """

    __slots__ = ("cache", "_slot", "_snap")

    def __init__(self, cache, slot: int) -> None:
        self.cache = cache
        self._slot = slot
        #: Detached snapshot (a CacheLine) once the slot is freed.
        self._snap: Optional[CacheLine] = None

    # -- field access ---------------------------------------------------

    @property
    def addr(self) -> int:
        snap = self._snap
        if snap is not None:
            return snap.addr
        return self.cache._store.addr[self._slot]

    @property
    def state(self):
        snap = self._snap
        if snap is not None:
            return snap.state
        return STATE_FROM_CODE[self.cache._store.state[self._slot]]

    @property
    def data(self) -> List[int]:
        snap = self._snap
        if snap is not None:
            return snap.data
        return self.cache._store.data[self._slot]

    @property
    def mod_vid(self) -> int:
        snap = self._snap
        if snap is not None:
            return snap.mod_vid
        return self.cache._store.mod_vid[self._slot]

    @property
    def high_vid(self) -> int:
        snap = self._snap
        if snap is not None:
            return snap.high_vid
        return self.cache._store.high_vid[self._slot]

    @high_vid.setter
    def high_vid(self, value: int) -> None:
        snap = self._snap
        if snap is not None:
            snap.high_vid = value
        else:
            self.cache._store.high_vid[self._slot] = value

    @property
    def seen_aborts(self) -> int:
        snap = self._snap
        if snap is not None:
            return snap.seen_aborts
        return self.cache._store.seen_aborts[self._slot]

    @seen_aborts.setter
    def seen_aborts(self, value: int) -> None:
        snap = self._snap
        if snap is not None:
            snap.seen_aborts = value
        else:
            self.cache._store.seen_aborts[self._slot] = value

    @property
    def lru_tick(self) -> int:
        snap = self._snap
        if snap is not None:
            return snap.lru_tick
        return self.cache._store.lru_tick[self._slot]

    @property
    def epoch(self) -> int:
        snap = self._snap
        if snap is not None:
            return snap.epoch
        return self.cache._store.epoch[self._slot]

    @epoch.setter
    def epoch(self, value: int) -> None:
        snap = self._snap
        if snap is not None:
            snap.epoch = value
        else:
            self.cache._store.epoch[self._slot] = value

    @property
    def vids(self) -> Tuple[int, int]:
        snap = self._snap
        if snap is not None:
            return (snap.mod_vid, snap.high_vid)
        store = self.cache._store
        slot = self._slot
        return (store.mod_vid[slot], store.high_vid[slot])

    def is_speculative(self) -> bool:
        snap = self._snap
        if snap is not None:
            return snap.state.speculative
        return self.cache._store.state[self._slot] >= CODE_SM

    def is_dirty(self) -> bool:
        return self.state.dirty

    def copy_data(self) -> List[int]:
        """A defensive copy of the line's words (new versions must not alias)."""
        return list(self.data)

    # -- tag mutation funnel --------------------------------------------

    def retag(self, state: State, mod_vid: int, high_vid: int) -> None:
        snap = self._snap
        if snap is not None:
            snap.retag(state, mod_vid, high_vid)
            return
        self.cache._retag_slot(self._slot, state.code, mod_vid, high_vid)

    def set_state(self, state: State) -> None:
        self.retag(state, self.mod_vid, self.high_vid)

    def set_vids(self, mod_vid: int, high_vid: int) -> None:
        self.retag(self.state, mod_vid, high_vid)

    # -- detachment (owning cache only) ---------------------------------

    def _detach(self, record: CacheLine) -> None:
        self._snap = record
        self.cache = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(0x{self.addr:x}, {self.state}"
            f"({self.mod_vid},{self.high_vid}))"
        )
