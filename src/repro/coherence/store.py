"""Struct-of-arrays backing store for cache-line versions (DESIGN.md §13).

The object-per-line model (one :class:`~repro.coherence.line.CacheLine`
per resident version) made every snoop, scrub and lazy commit/abort fold a
chain of Python attribute lookups and method calls.  This module replaces
it with a :class:`LineStore`: one arena of parallel stdlib columns per
cache, indexed by *slot*:

``state``
    one byte per slot (``bytearray``) holding the integer state code of
    :mod:`repro.coherence.states` — class checks are integer range checks;
``mod_vid`` / ``high_vid``
    the section 4.1 VID pair (``array('i')``);
``addr``
    the line (base) address (``array('q')``);
``epoch`` / ``seen_aborts``
    the lazy-processing stamps of section 5.3 (``array('q')``);
``lru_tick``
    the per-cache LRU counter sample (``array('q')``);
``data``
    the line's words, a plain Python list per slot.  Data rows are held
    *by reference* — ownership moves with the version exactly as it did
    between ``CacheLine`` objects, so aliasing semantics (a victim's words
    travelling to the L2, ``copy_data()`` on version creation) are
    unchanged.

Slots are recycled through a free list, so a slot index is stable for the
lifetime of the version living in it: the per-set lists, the per-base
version buckets and the presence map all store plain slot integers.
Freed slots are stamped ``FREE_CODE`` so a stale slot reference fails
loudly instead of silently reading a recycled line.
"""

from __future__ import annotations

from array import array
from typing import List, Optional

#: State-column value of a slot on the free list (no valid state code).
FREE_CODE = 0xFF


class LineStore:
    """A slot arena of parallel per-line columns for one cache."""

    __slots__ = ("state", "mod_vid", "high_vid", "addr", "epoch",
                 "seen_aborts", "lru_tick", "data", "free_slots")

    def __init__(self) -> None:
        self.state = bytearray()
        self.mod_vid = array("i")
        self.high_vid = array("i")
        self.addr = array("q")
        self.epoch = array("q")
        self.seen_aborts = array("q")
        self.lru_tick = array("q")
        self.data: List[Optional[List[int]]] = []
        self.free_slots: List[int] = []

    def __len__(self) -> int:
        """Number of *live* slots."""
        return len(self.state) - len(self.free_slots)

    @property
    def capacity(self) -> int:
        """Total slots ever allocated (live + free-listed)."""
        return len(self.state)

    def alloc(self, addr: int, code: int, data: List[int],
              mod_vid: int, high_vid: int) -> int:
        """Claim a slot for a new version; returns its index.

        The caller stamps ``epoch``/``seen_aborts``/``lru_tick`` itself
        (they are cache-local bookkeeping, not version identity).
        """
        free = self.free_slots
        if free:
            slot = free.pop()
            self.state[slot] = code
            self.mod_vid[slot] = mod_vid
            self.high_vid[slot] = high_vid
            self.addr[slot] = addr
            self.data[slot] = data
            return slot
        slot = len(self.state)
        self.state.append(code)
        self.mod_vid.append(mod_vid)
        self.high_vid.append(high_vid)
        self.addr.append(addr)
        self.epoch.append(0)
        self.seen_aborts.append(0)
        self.lru_tick.append(0)
        self.data.append(data)
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free list (caller has unlinked all indices)."""
        assert self.state[slot] != FREE_CODE, f"double free of slot {slot}"
        self.state[slot] = FREE_CODE
        self.data[slot] = None
        self.free_slots.append(slot)
