"""Word-granular backing store (main memory) for the simulated machine.

The simulator models memory values at word granularity (8 bytes by default,
8 words per 64-byte line as in Table 2).  Only committed, non-speculative
data ever reaches main memory; speculative versions live exclusively in the
cache hierarchy (or, for superseded non-speculative ``S-O`` copies, are
written back here per section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

DEFAULT_LINE_SIZE = 64
DEFAULT_WORD_SIZE = 8


@dataclass
class MainMemory:
    """Sparse word-addressable main memory.

    Unwritten words read as zero, which matches a zero-initialised address
    space and keeps workload setup cheap.
    """

    line_size: int = DEFAULT_LINE_SIZE
    word_size: int = DEFAULT_WORD_SIZE
    latency: int = 200
    _words: Dict[int, int] = field(default_factory=dict, init=False)
    reads: int = field(default=0, init=False)
    writebacks: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.line_size % self.word_size:
            raise ValueError("line size must be a multiple of word size")

    @property
    def words_per_line(self) -> int:
        return self.line_size // self.word_size

    def line_addr(self, addr: int) -> int:
        """Base address of the line containing byte address ``addr``."""
        return addr - (addr % self.line_size)

    def word_index(self, addr: int) -> int:
        """Index of ``addr``'s word within its line."""
        return (addr % self.line_size) // self.word_size

    def read_word(self, addr: int) -> int:
        """Read the word containing byte address ``addr`` (no timing)."""
        return self._words.get(addr - (addr % self.word_size), 0)

    def write_word(self, addr: int, value: int) -> None:
        """Write ``value`` to the word containing ``addr`` (no timing)."""
        self._words[addr - (addr % self.word_size)] = value

    def read_line(self, addr: int) -> List[int]:
        """Fetch a whole line as a list of word values (counts as a read)."""
        base = self.line_addr(addr)
        self.reads += 1
        return [
            self._words.get(base + i * self.word_size, 0)
            for i in range(self.words_per_line)
        ]

    def write_line(self, addr: int, data: List[int]) -> None:
        """Write back a whole line (counts as a writeback)."""
        if len(data) != self.words_per_line:
            raise ValueError(
                f"line data must have {self.words_per_line} words, got {len(data)}"
            )
        base = self.line_addr(addr)
        self.writebacks += 1
        for i, value in enumerate(data):
            self._words[base + i * self.word_size] = value

    def footprint_lines(self) -> int:
        """Number of distinct lines ever written (for reporting)."""
        lines = {addr - (addr % self.line_size) for addr in self._words}
        return len(lines)
