"""Versioned snoopy-MOESI cache coherence substrate with HMTX extensions.

The public surface of this subpackage:

* :class:`~repro.coherence.hierarchy.MemoryHierarchy` — the full memory
  system (per-core L1s, shared L2, snoopy bus, main memory).
* :class:`~repro.coherence.hierarchy.HierarchyConfig` — geometry/latency
  configuration (defaults follow the paper's Table 2).
* :mod:`~repro.coherence.protocol` — the pure Figure 4/6/7 transition
  functions, for tests and formal exploration.
* :class:`~repro.coherence.vid.VidSpace` — the finite VID namespace.
"""

from .cache import CacheStats, VersionedCache, victim_priority
from .directory import DirectoryConfig, DirectoryHierarchy, DirectoryStats
from .overflow import OverflowVersionTable
from .hierarchy import AccessResult, HierarchyConfig, HierarchyStats, MemoryHierarchy
from .line import CacheLine
from .memory import MainMemory
from .states import State
from .vid import (
    DEFAULT_VID_BITS,
    NONSPECULATIVE_VID,
    CascadedComparator,
    VidExhaustedError,
    VidSpace,
)

__all__ = [
    "AccessResult",
    "CacheLine",
    "CacheStats",
    "CascadedComparator",
    "DirectoryConfig",
    "DirectoryHierarchy",
    "DirectoryStats",
    "OverflowVersionTable",
    "DEFAULT_VID_BITS",
    "HierarchyConfig",
    "HierarchyStats",
    "MainMemory",
    "MemoryHierarchy",
    "NONSPECULATIVE_VID",
    "State",
    "VersionedCache",
    "VidExhaustedError",
    "VidSpace",
    "victim_priority",
]
