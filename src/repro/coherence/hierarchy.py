"""The full memory system: per-core L1s, shared L2, snoopy bus, memory.

This module orchestrates the protocol of section 4: local L1 lookup, bus
snoop of peer L1s and the shared L2, memory fetch (including the section 5.4
overflow-retrieval path), version creation on speculative writes, commit and
abort broadcasts, and the eviction/overflow rules.

The hierarchy is *non-inclusive*: L1 victims of any version are written back
to the L2 "as normal" (section 4.1); only eviction past the last-level cache
is restricted (section 5.4).

System-wide invariants maintained here (and checked by the test suite):

* at most one *latest* (``S-M``/``S-E``) version per address exists anywhere;
* within a cache, at most one version of an address hits any given VID;
* ``S-S`` copies never serve writes and are invalidated whenever their
  underlying version is written (the upgrade bus transaction of MOESI,
  carried over to the speculative world);
* non-speculative requests substitute ``LC_VID`` in hit logic only — they
  never create or extend speculative versions (sections 5.3, 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import MisspeculationError, SpeculativeOverflowError
from ..topology import TopologySpec
from ..txctl.causes import AbortCause
from .cache import VersionedCache
from .line import CacheLine, LineView
from .memory import MainMemory
from .overflow import OverflowVersionTable
from .protocol import (
    AccessKind,
    WriteOutcome,
    plan_new_version,
    read_transition,
    write_outcome,
)
from .states import (
    CODE_EXCLUSIVE,
    CODE_INVALID,
    CODE_MODIFIED,
    CODE_SE,
    CODE_SM,
    CODE_SS,
    State,
)


@dataclass
class HierarchyConfig:
    """Geometry and latency knobs (defaults follow Table 2)."""

    num_cores: int = 4
    l1_size: int = 64 * 1024
    l1_assoc: int = 8
    l1_latency: int = 2
    l2_size: int = 32 * 1024 * 1024
    l2_assoc: int = 32
    l2_latency: int = 40
    line_size: int = 64
    memory_latency: int = 200
    vid_bits: int = 6
    #: Cycles for a commit/abort broadcast on the L1-L2 bus (lazy scheme:
    #: just bus arbitration plus the flash-set, no per-line processing).
    broadcast_latency: int = 10
    #: Cycles one bus transaction (snoop + line transfer) occupies the
    #: shared L1-L2 bus.  Concurrent requesters serialise on it, which is
    #: the first-order reason the snoopy design stops scaling past a few
    #: cores (the paper's future work proposes a directory protocol).
    bus_occupancy: int = 8
    #: Section 8 extension: when True, speculative versions evicted past
    #: the LLC spill into a memory-side version table instead of aborting
    #: ("unlimited read and write sets").
    unbounded_sets: bool = False
    #: Machine shape (sockets, LLC slices, NUMA hops).  ``None`` or any
    #: 1-socket spec is the flat Table 2 machine: one shared LLC with the
    #: ``l2_*`` geometry, no NUMA charges — bit-identical to the
    #: pre-topology hierarchy.  A multi-socket spec slices the LLC per
    #: socket and charges intra/cross-socket hop latencies.
    topology: Optional[TopologySpec] = None

    def __post_init__(self) -> None:
        if self.topology is not None \
                and self.topology.num_cores != self.num_cores:
            raise ValueError(
                f"topology describes {self.topology.num_cores} cores "
                f"({self.topology.sockets}x"
                f"{self.topology.cores_per_socket}) but num_cores is "
                f"{self.num_cores}")


class AccessResult:
    """Outcome of one load or store.

    A ``__slots__`` class rather than a dataclass: one is built per memory
    access, so construction cost is on the simulator's critical path.
    """

    __slots__ = ("value", "latency", "l1_hit", "served_by",
                 "sla_required", "created_version")

    def __init__(self, value: int, latency: int, l1_hit: bool,
                 served_by: str, sla_required: bool = False,
                 created_version: bool = False) -> None:
        self.value = value
        self.latency = latency
        self.l1_hit = l1_hit
        self.served_by = served_by
        #: True when a speculative load touched a version not yet marked
        #: with its VID — exactly the condition under which an SLA message
        #: must be sent once the load retires (section 5.1).
        self.sla_required = sla_required
        #: True when a speculative store created a fresh line version.
        self.created_version = created_version

    def __repr__(self) -> str:
        return (f"AccessResult(value={self.value!r}, "
                f"latency={self.latency!r}, l1_hit={self.l1_hit!r}, "
                f"served_by={self.served_by!r}, "
                f"sla_required={self.sla_required!r}, "
                f"created_version={self.created_version!r})")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not AccessResult:
            return NotImplemented
        return (self.value == other.value
                and self.latency == other.latency
                and self.l1_hit == other.l1_hit
                and self.served_by == other.served_by
                and self.sla_required == other.sla_required
                and self.created_version == other.created_version)


@dataclass
class HierarchyStats:
    """Aggregate memory-system statistics."""

    loads: int = 0
    stores: int = 0
    spec_loads: int = 0
    spec_stores: int = 0
    bus_snoops: int = 0
    peer_transfers: int = 0
    memory_fetches: int = 0
    ss_invalidations: int = 0
    bus_wait_cycles: int = 0
    nonspec_overflows: int = 0
    overflow_retrievals: int = 0
    spec_overflow_spills: int = 0
    commits: int = 0
    aborts: int = 0
    vid_resets: int = 0


class MemoryHierarchy:
    """Per-core L1 caches over a shared L2 over main memory."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.memory = MainMemory(line_size=cfg.line_size, latency=cfg.memory_latency)
        self.l1s = [
            VersionedCache(
                f"L1[{i}]", cfg.l1_size, cfg.l1_assoc, cfg.line_size,
                hit_latency=cfg.l1_latency, vid_bits=cfg.vid_bits)
            for i in range(cfg.num_cores)
        ]
        topo = cfg.topology
        #: True only for a declared multi-socket machine; every NUMA
        #: charge below is gated on it so the flat machine's timing is
        #: bit-identical to the pre-topology hierarchy.
        self._multi_socket = topo is not None and not topo.flat
        self._topo = topo
        if self._multi_socket:
            # One LLC slice per socket; line addresses interleave across
            # home sockets, so each slice (and its directory state in the
            # directory subclass) owns a disjoint slice of the line space.
            self.llc_slices: Tuple[VersionedCache, ...] = tuple(
                VersionedCache(
                    f"LLC[{s}]", topo.llc_slice_size, topo.llc_slice_assoc,
                    cfg.line_size, hit_latency=topo.llc_slice_latency,
                    vid_bits=cfg.vid_bits)
                for s in range(topo.sockets))
            self._llc_latency = topo.llc_slice_latency
        else:
            self.llc_slices = (VersionedCache(
                "L2", cfg.l2_size, cfg.l2_assoc, cfg.line_size,
                hit_latency=cfg.l2_latency, vid_bits=cfg.vid_bits),)
            self._llc_latency = cfg.l2_latency
        #: Alias kept for the flat machine's callers (and slice 0 of a
        #: multi-socket one, whose geometry helpers are shared anyway).
        self.l2 = self.llc_slices[0]
        self._llc_group = frozenset(self.llc_slices)
        #: Socket owning each cache, by name (L1s follow their core;
        #: slices their socket).  Flat machines map everything to 0.
        self._cache_socket: Dict[str, int] = {}
        for i, l1 in enumerate(self.l1s):
            self._cache_socket[l1.name] = (
                topo.socket_of_core(i) if self._multi_socket else 0)
        for s, llc in enumerate(self.llc_slices):
            self._cache_socket[llc.name] = s
        # Broadcast costs are pure functions of the shape: precompute.
        if self._multi_socket:
            self._commit_cost = topo.multicast_latency(cfg.broadcast_latency)
            self._reset_cost = topo.reset_scrub_latency(
                cfg.broadcast_latency, topo.llc_slice_latency)
        else:
            self._commit_cost = cfg.broadcast_latency
            self._reset_cost = cfg.broadcast_latency
        self.stats = HierarchyStats()
        #: Section 8 extension: memory-side home for overflowed versions.
        self.overflow_table: Optional[OverflowVersionTable] = None
        if cfg.unbounded_sets:
            self.overflow_table = OverflowVersionTable(
                line_size=cfg.line_size, memory_latency=cfg.memory_latency,
                vid_bits=cfg.vid_bits)
        #: Simulated time at which the shared bus next becomes free.
        self._bus_free = 0
        #: Presence (snoop-filter) map: line address -> caches holding any
        #: version of it.  Maintained *exactly* via the per-cache presence
        #: listeners — a cache appears iff it currently holds a version —
        #: so snoops, invalidations and scrubs only touch holding caches
        #: (DESIGN.md, "Fast-path indexing").
        self._holders: Dict[int, Set[VersionedCache]] = {}
        # Precomputed cache orderings: the bus snoop / broadcast orders are
        # fixed at construction, so the hot paths iterate tuples instead of
        # rebuilding lists per access.
        self._caches: Tuple[VersionedCache, ...] = ()
        self._peer_lists: List[Tuple[VersionedCache, ...]] = []
        self._rebuild_cache_lists()
        # Word-index shift for the fused access fast path (power-of-two
        # geometry only; anything else falls back to the generic path).
        word = self.memory.word_size
        self._word_shift = (word.bit_length() - 1
                            if word & (word - 1) == 0 else None)
        for cache in self._caches:
            cache.presence_listener = self._on_presence

    def _rebuild_cache_lists(self) -> None:
        caches: List[VersionedCache] = list(self.l1s) + list(self.llc_slices)
        if self.overflow_table is not None:
            caches.append(self.overflow_table)
        self._caches = tuple(caches)
        self._peer_lists = []
        for core in range(len(self.l1s)):
            peers = [c for i, c in enumerate(self.l1s) if i != core]
            peers.extend(self.llc_slices)
            if self.overflow_table is not None:
                # Consulted last: a version found here pays memory latency
                # plus the software-structure management cost.
                peers.append(self.overflow_table)
            self._peer_lists.append(tuple(peers))

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------

    def _home_llc(self, addr: int) -> VersionedCache:
        """The LLC slice owning ``addr``'s line (the shared L2 when flat)."""
        if not self._multi_socket:
            return self.l2
        return self.llc_slices[
            self._topo.home_socket(addr, self.config.line_size)]

    def _numa_hop(self, core: int, owner_name: Optional[str],
                  base: int) -> int:
        """One-way hop from ``core`` to the responder (0 on flat machines).

        ``owner_name`` is the serving cache's name, or ``None`` when memory
        (or the memory-side overflow table) responds — those sit behind the
        line's home socket's memory controller.
        """
        req = self._cache_socket[self.l1s[core].name]
        owner = self._cache_socket.get(owner_name) if owner_name else None
        if owner is None:
            owner = self._topo.home_socket(base, self.config.line_size)
        return self._topo.hop_latency(req, owner)

    def _on_presence(self, cache: VersionedCache, base: int,
                     present: bool) -> None:
        """Presence-listener callback from the caches (first add/last drop)."""
        if present:
            holders = self._holders.get(base)
            if holders is None:
                holders = self._holders[base] = set()
            holders.add(cache)
        else:
            holders = self._holders.get(base)
            if holders is not None:
                holders.discard(cache)
                if not holders:
                    del self._holders[base]

    def _bus_transaction(self, now: int) -> int:
        """Acquire the shared bus at time ``now``; returns wait + occupancy.

        With a single active core the bus is always free by the time the
        next miss issues; under parallel execution concurrent misses queue
        up behind each other, throttling speedup exactly as shared-bus
        bandwidth does on real snoopy multicores.
        """
        wait = max(0, self._bus_free - now)
        self._bus_free = now + wait + self.config.bus_occupancy
        self.stats.bus_wait_cycles += wait
        return wait + self.config.bus_occupancy

    # ------------------------------------------------------------------
    # Public access interface
    # ------------------------------------------------------------------

    def load(self, core: int, addr: int, vid: int,
             now: int = 0) -> AccessResult:
        """Perform a (possibly speculative) load from ``addr`` with ``vid``.

        ``now`` is the requesting core's current cycle, used for shared-bus
        contention accounting.
        """
        self.stats.loads += 1
        if vid > 0:
            self.stats.spec_loads += 1
        return self._access(core, addr, vid, AccessKind.READ, None, now)

    def store(self, core: int, addr: int, vid: int, value: int,
              now: int = 0) -> AccessResult:
        """Perform a (possibly speculative) store to ``addr`` with ``vid``."""
        self.stats.stores += 1
        if vid > 0:
            self.stats.spec_stores += 1
        return self._access(core, addr, vid, AccessKind.WRITE, value, now)

    def read_committed(self, addr: int) -> int:
        """Verification read of committed state: no timing, no statistics.

        Used by workloads' post-run result checks so that verification does
        not perturb the counters the experiments report.  Any cached copy
        visible to a non-speculative request holds the committed value;
        otherwise memory does.
        """
        for cache in self._all_caches():
            hit = cache.lookup(addr, 0)
            if hit is not None:
                return hit.data[self._word(addr)]
        return self.memory.read_word(addr)

    def peek(self, core: int, addr: int, vid: int) -> Tuple[int, int]:
        """Read the value ``vid`` would observe *without marking any line*.

        Models a wrong-path (branch-speculative) load under the SLA scheme
        of section 5.1: the load's data moves through the system, but no
        line is marked with its VID.  Returns ``(value, latency)``.
        """
        l1 = self.l1s[core]
        hit = l1.lookup(addr, vid)
        if hit is not None:
            return hit.data[self._word(addr)], l1.hit_latency
        latency = l1.hit_latency + self._llc_latency
        for cache in self._peer_caches(core):
            line = cache.lookup(addr, vid)
            if line is not None and line.state is not State.SS:
                return line.data[self._word(addr)], latency
        return self.memory.read_word(addr), latency + self.config.memory_latency

    # ------------------------------------------------------------------
    # Broadcasts
    # ------------------------------------------------------------------

    def commit(self, vid: int) -> int:
        """Group-commit transaction ``vid`` everywhere; returns latency.

        Flat machines pay the bus broadcast; multi-socket machines pay the
        precomputed multicast-tree cost (cross-socket fan-out, then on-die).
        """
        self.stats.commits += 1
        for cache in self._caches:
            cache.broadcast_commit(vid)
        return self._commit_cost

    def abort(self) -> int:
        """Flush all uncommitted transactional state; returns latency."""
        self.stats.aborts += 1
        for cache in self._caches:
            cache.broadcast_abort()
        return self._commit_cost

    def vid_reset(self) -> int:
        """Perform the section 4.6 VID reset; returns latency.

        Legal only after every outstanding transaction has committed (the
        software side guarantees this before raising the reset signal).
        Multi-socket machines pay the reset-scrub barrier on top of the
        multicast tree: every LLC slice sweeps and acknowledges, so the
        stall grows with the socket count (the ROADMAP's reset-storm knee).
        """
        self.stats.vid_resets += 1
        for cache in self._caches:
            cache.vid_reset()
        return self._reset_cost

    # ------------------------------------------------------------------
    # Introspection helpers (tests, experiments)
    # ------------------------------------------------------------------

    def versions_everywhere(self, addr: int) -> List[Tuple[str, CacheLine]]:
        """All cached versions of ``addr`` with their cache names."""
        out = []
        for cache in self._all_caches():
            for line in cache.versions(addr):
                out.append((cache.name, line))
        return out

    def speculative_footprint_bytes(self) -> int:
        """Bytes of speculative versions currently resident (Figure 9 aid).

        O(#caches): reads the maintained per-cache speculative-line
        counters instead of walking every resident line.
        """
        return self.config.line_size * sum(
            cache.speculative_lines for cache in self._all_caches())

    def check_invariants(self) -> None:
        """Assert the system-wide protocol invariants (test support).

        Also cross-checks the fast-path layer: the per-cache version
        indices and filter counters, and the hierarchy's presence map, must
        exactly mirror the set contents they summarise.
        """
        latest_owners = {}
        held: Dict[int, Set[VersionedCache]] = {}
        for cache in self._all_caches():
            cache.check_index_integrity()
            in_llc = cache in self._llc_group
            for line in cache.all_lines():
                held.setdefault(line.addr, set()).add(cache)
                if line.state in (State.SM, State.SE):
                    if line.addr in latest_owners:
                        raise AssertionError(
                            f"two latest versions of 0x{line.addr:x}: "
                            f"{latest_owners[line.addr]} and {cache.name}")
                    latest_owners[line.addr] = cache.name
                if in_llc and self._multi_socket:
                    # Sliced-LLC ownership: a line only ever resides in its
                    # home slice — victims route there, and installs never
                    # target a foreign slice.  Recomputed from the topology
                    # spec (not via ``_home_llc``) so a broken router
                    # cannot vouch for its own placement.
                    home = self.llc_slices[self._topo.home_socket(
                        line.addr, self.config.line_size)]
                    if cache is not home:
                        raise AssertionError(
                            f"version of 0x{line.addr:x} resident in "
                            f"{cache.name} but homed at {home.name}")
        assert held == self._holders, "presence map diverged from contents"

    # ------------------------------------------------------------------
    # Core access machinery
    # ------------------------------------------------------------------

    def _word(self, addr: int) -> int:
        return (addr % self.config.line_size) // self.memory.word_size

    def _all_caches(self) -> List[VersionedCache]:
        return list(self._caches)

    def _peer_caches(self, core: int) -> Tuple[VersionedCache, ...]:
        return self._peer_lists[core]

    def _access(self, core: int, addr: int, vid: int, kind: AccessKind,
                value: Optional[int], now: int = 0) -> AccessResult:  # hot-path
        # Fused fast path (power-of-two geometry): the lookup scan runs
        # directly on the line-store columns — lazy processing gated on the
        # bucket's epochs, comparator engagements counted inline exactly as
        # CascadedComparator.compare would, LRU touched on the hit — and
        # the dominant access shapes then complete with direct column
        # reads/writes.  Complex shapes (upgrades, aborts, new versions)
        # hand the found slot to _apply; misses take the fetch path below.
        # Both continuations receive identical statistics to the generic
        # lookup they replace.
        l1 = self.l1s[core]
        mask = l1._offset_mask
        wshift = self._word_shift
        if mask is not None and wshift is not None:
            store = l1._store
            state_col = store.state
            mod_col = store.mod_vid
            high_col = store.high_vid
            epochs = store.epoch
            lru_col = store.lru_tick
            data_col = store.data
            comparator = l1.comparator
            l1stats = l1.stats
            hit_latency = l1.hit_latency
            name = l1.name
            base = addr & ~mask
            bucket = l1._by_base.get(base)
            if bucket is not None:
                epoch = l1._epoch
                for s in bucket:
                    if epochs[s] != epoch:
                        bucket = l1._process_bucket(base)
                        break
            slot = -1
            if bucket:
                eff = l1.lc_vid if vid == 0 else vid
                if len(bucket) == 1:
                    s = bucket[0]
                    code = state_col[s]
                    if code < CODE_SM:
                        if code != CODE_INVALID:
                            slot = s
                    else:
                        mod = mod_col[s]
                        high = high_col[s]
                        shift = comparator.low_bits
                        if (eff >> shift) == (mod >> shift):
                            comparator.fast_comparisons += 1
                        else:
                            comparator.cascaded_comparisons += 1
                        if (eff >> shift) == (high >> shift):
                            comparator.fast_comparisons += 1
                        else:
                            comparator.cascaded_comparisons += 1
                        if (eff >= mod if code <= CODE_SE
                                else mod <= eff < high):
                            slot = s
                else:
                    shift = comparator.low_bits
                    fast = 0
                    cascaded = 0
                    for s in bucket:
                        code = state_col[s]
                        if code >= CODE_SM:
                            mod = mod_col[s]
                            high = high_col[s]
                            if (eff >> shift) == (mod >> shift):
                                fast += 1
                            else:
                                cascaded += 1
                            if (eff >> shift) == (high >> shift):
                                fast += 1
                            else:
                                cascaded += 1
                            hits = (eff >= mod if code <= CODE_SE
                                    else mod <= eff < high)
                        else:
                            hits = code != CODE_INVALID
                        if hits:
                            if slot >= 0:
                                raise AssertionError(
                                    f"{name}: two versions hit VID {eff} "
                                    f"at 0x{base:x}: {l1._view(slot)!r} and "
                                    f"{l1._view(s)!r}")
                            slot = s
                    comparator.fast_comparisons += fast
                    comparator.cascaded_comparisons += cascaded
            if slot >= 0:
                l1._tick += 1
                lru_col[slot] = l1._tick
                code = state_col[slot]
                if kind is AccessKind.WRITE and code == CODE_SS:
                    # Silent shared speculative copies never serve writes;
                    # the write must reach the version's owner on the bus.
                    slot = -1
            if slot >= 0:
                l1stats.hits += 1
                word = (addr & mask) >> wshift
                if kind is AccessKind.READ:
                    if vid == 0:
                        return AccessResult(
                            data_col[slot][word], hit_latency, True, name)
                    if code >= CODE_SM:
                        high = high_col[slot]
                        sla = code <= CODE_SE and high < vid
                        if sla:
                            high_col[slot] = vid
                        return AccessResult(
                            data_col[slot][word], hit_latency, True, name,
                            sla_required=sla)
                    if code == CODE_MODIFIED or code == CODE_EXCLUSIVE:
                        # First speculative read of an exclusive line:
                        # enters S-M/S-E (Figure 4 entry arc) and requires
                        # a retired-load SLA message.
                        l1._retag_slot(
                            slot,
                            CODE_SM if code == CODE_MODIFIED else CODE_SE,
                            0, vid)
                        return AccessResult(
                            data_col[slot][word], hit_latency, True, name,
                            sla_required=True)
                    # OWNED/SHARED need an upgrade: _apply handles it.
                else:
                    if vid == 0:
                        if code == CODE_MODIFIED or code == CODE_EXCLUSIVE:
                            if code == CODE_EXCLUSIVE:
                                state_col[slot] = CODE_MODIFIED
                            data_col[slot][word] = value
                            return AccessResult(
                                value, hit_latency, True, name)
                    elif code == CODE_SM or code == CODE_SE:
                        mod = mod_col[slot]
                        high = high_col[slot]
                        if vid == mod and vid >= high:
                            # Same transaction re-writes its own latest
                            # version in place.
                            self._scrub_ss_copies(addr, mod)
                            data_col[slot][word] = value
                            if vid > high:
                                high_col[slot] = vid
                            return AccessResult(
                                value, hit_latency, True, name)
                    # Upgrades, conflicts, and copy-creating writes:
                    # _apply decides on the found version.
                return self._apply(core, l1._view(slot), addr, vid, kind,
                                   value, hit_latency, True, name)
            # Miss (or silent S-S copy on a write): fetch over the bus.
            latency = hit_latency
            l1stats.misses += 1
            latency += self._bus_transaction(now + latency)
            hit, transfer_latency, served_by = self._fetch(
                core, addr, vid, kind, now=now + latency)
            latency += transfer_latency
            return self._apply(core, hit, addr, vid, kind, value, latency,
                               False, served_by)
        # Non-power-of-two geometry: generic lookup path.
        l1 = self.l1s[core]
        latency = l1.hit_latency
        hit = l1.lookup(addr, vid)
        if hit is not None and kind is AccessKind.WRITE and hit.state is State.SS:
            # Silent shared speculative copies never serve writes; the write
            # must reach the version's owner on the bus.
            hit = None
        served_by = l1.name
        l1_hit = hit is not None
        if hit is None:
            l1.stats.misses += 1
            latency += self._bus_transaction(now + latency)
            hit, transfer_latency, served_by = self._fetch(
                core, addr, vid, kind, now=now + latency)
            latency += transfer_latency
        else:
            l1.stats.hits += 1
        return self._apply(core, hit, addr, vid, kind, value, latency,
                           l1_hit, served_by)

    def _fetch(self, core: int, addr: int, vid: int,
               kind: AccessKind, now: int = 0) -> Tuple[LineView, int, str]:
        """Bring a copy that ``vid`` hits into ``core``'s L1.

        Implements the bus snoop: exactly one cache responds with the
        version that would have hit (S-S copies stay silent); otherwise
        memory responds, possibly via the section 5.4 overflow-retrieval
        path.

        Snoop filter: only caches recorded as holding a version of the line
        are consulted.  A cache with no version of the address answers no
        snoop and undergoes no lazy processing, so skipping it is exact.
        """
        self.stats.bus_snoops += 1
        l1 = self.l1s[core]
        base = l1.line_addr(addr)
        latency = self._llc_latency  # bus + LLC lookup window
        spec_modified_asserted = l1.has_latest_spec_version(addr)
        holders = self._holders.get(base)
        if holders:
            for cache in self._peer_caches(core):
                if cache not in holders:
                    continue
                if cache.has_latest_spec_version(addr):
                    spec_modified_asserted = True
                owner = cache.lookup(addr, vid)
                if owner is None or owner.state is State.SS:
                    continue
                self.stats.peer_transfers += 1
                if self.overflow_table is not None \
                        and cache is self.overflow_table:
                    latency += cache.hit_latency
                    self.overflow_table.refills += 1
                if self._multi_socket:
                    # The line transfer crosses the socket interconnect
                    # when the responder lives on another die.
                    latency += self._numa_hop(core, cache.name, base)
                line = self._receive_from_owner(core, cache, owner, vid, kind)
                return line, latency, cache.name
        # No cache can serve the request: memory responds.
        self.stats.memory_fetches += 1
        latency += self.config.memory_latency
        if self._multi_socket:
            # Memory is reached through the line's home socket's controller.
            latency += self._numa_hop(core, None, base)
        data = self.memory.read_line(addr)
        eff = l1.effective_vid(vid)
        if spec_modified_asserted:
            # Section 5.4: an S-M copy asserted "speculatively modified" but
            # could not serve this VID, so the non-speculative backup must
            # have overflowed to memory.  It returns as S-O(0, reqVID + 1).
            # (Also taken for non-speculative requests: installing a plain
            # E copy while a live S-M exists would shadow the speculative
            # version for later VIDs.)
            self.stats.overflow_retrievals += 1
            line = CacheLine(base, State.SO, data, 0, eff + 1)
        else:
            line = CacheLine(base, State.EXCLUSIVE, data)
        return self._install(l1, line), latency, "memory"

    def _receive_from_owner(self, core: int, owner_cache: VersionedCache,
                            owner: LineView, vid: int,
                            kind: AccessKind) -> LineView:
        """Install a usable copy of ``owner``'s version in ``core``'s L1."""
        l1 = self.l1s[core]
        eff = l1.effective_vid(vid)
        if not owner.is_speculative():
            if vid > 0 or kind is AccessKind.WRITE:
                # First speculative touch (or any write) needs exclusive
                # access: every non-speculative copy of the line is
                # invalidated and the line migrates (Figure 4's entry arcs).
                dirty = owner.is_dirty()
                data = owner.copy_data()
                self._invalidate_nonspec_everywhere(owner.addr)
                state = State.MODIFIED if dirty else State.EXCLUSIVE
                return self._install(l1, CacheLine(owner.addr, state, data))
            # Plain non-speculative read sharing: MOESI read hit.
            data = owner.copy_data()
            if owner.state is State.MODIFIED:
                owner.set_state(State.OWNED)
            elif owner.state is State.EXCLUSIVE:
                owner.set_state(State.SHARED)
            return self._install(l1, CacheLine(owner.addr, State.SHARED, data))
        if kind is AccessKind.READ:
            # Uncommitted value forwarding across caches: the requester gets
            # a shared speculative copy; the owner keeps tracking the global
            # highVID so later conflicting stores are still caught.
            if vid > 0:
                new_state, (mod, high) = read_transition(
                    owner.state, owner.mod_vid, owner.high_vid, eff)
                owner.retag(new_state, mod, high)
            if owner.state in (State.SM, State.SE):
                # The copy's window is capped just above the requesting VID:
                # a strictly later VID's read must reach the owner to be
                # logged there.
                copy_high = eff + 1 if vid > 0 else owner.high_vid
            else:
                copy_high = owner.high_vid
            line = CacheLine(owner.addr, State.SS, owner.copy_data(),
                             owner.mod_vid, copy_high)
            return self._install(l1, line)
        # A write served by a remote speculative version: decide abort /
        # in-place migration / new version here, where both copies are
        # visible.  Non-speculative writes that land on a live speculative
        # version are conservative conflicts (eff = LC_VID < highVID).
        outcome = write_outcome(owner.state, owner.mod_vid, owner.high_vid, eff)
        if outcome is WriteOutcome.ABORT or vid == 0:
            self._raise_misspeculation(owner, eff)
        self._scrub_ss_copies(owner.addr, owner.mod_vid)
        if outcome is WriteOutcome.IN_PLACE:
            # Same transaction writes from another core: the S-M version
            # migrates wholesale (speculative threads may move between
            # cores, section 5.2).
            line = CacheLine(owner.addr, owner.state, owner.copy_data(),
                             owner.mod_vid, max(owner.high_vid, eff))
            owner_cache.drop(owner)
            return self._install(l1, line)
        plan = plan_new_version(owner.state, owner.mod_vid, owner.high_vid, eff)
        data = owner.copy_data()
        owner.retag(plan.old_state, *plan.old_vids)
        line = CacheLine(owner.addr, State.SM, data, *plan.new_vids)
        l1.stats.version_copies += 1
        return self._install(l1, line)

    def _apply(self, core: int, line: LineView, addr: int, vid: int,
               kind: AccessKind, value: Optional[int], latency: int,
               l1_hit: bool, served_by: str) -> AccessResult:
        """Apply the access to the L1-resident version ``line``."""
        l1 = self.l1s[core]
        eff = l1.effective_vid(vid)
        word = self._word(addr)
        if kind is AccessKind.READ:
            sla_required = False
            if vid > 0:
                sla_required = (not line.is_speculative()
                                or line.high_vid < eff)
                if line.state in (State.OWNED, State.SHARED):
                    # Entering the speculative world needs exclusive access.
                    self._upgrade(line)
                new_state, (mod, high) = read_transition(
                    line.state, line.mod_vid, line.high_vid, eff)
                if new_state is not line.state or mod != line.mod_vid \
                        or high != line.high_vid:
                    line.retag(new_state, mod, high)
            return AccessResult(line.data[word], latency, l1_hit, served_by,
                                sla_required=sla_required)
        # Store path.
        assert value is not None
        if vid == 0:
            if line.is_speculative():
                # A non-speculative store landing on live speculative state
                # is a conservative conflict.
                self._raise_misspeculation(line, eff)
            if line.state in (State.OWNED, State.SHARED):
                self._upgrade(line)
            line.set_state(State.MODIFIED)
            line.data[word] = value
            return AccessResult(value, latency, l1_hit, served_by)
        if line.state in (State.OWNED, State.SHARED):
            self._upgrade(line)
        outcome = write_outcome(line.state, line.mod_vid, line.high_vid, eff)
        if outcome is WriteOutcome.ABORT:
            self._raise_misspeculation(line, eff)
        if outcome is WriteOutcome.IN_PLACE:
            self._scrub_ss_copies(line.addr, line.mod_vid)
            line.data[word] = value
            line.high_vid = max(line.high_vid, eff)
            return AccessResult(value, latency, l1_hit, served_by)
        if line.is_speculative():
            self._scrub_ss_copies(line.addr, line.mod_vid)
        plan = plan_new_version(line.state, line.mod_vid, line.high_vid, eff)
        new_line = CacheLine(line.addr, State.SM, line.copy_data(),
                             *plan.new_vids)
        new_line.data[word] = value
        line.retag(plan.old_state, *plan.old_vids)
        l1.stats.version_copies += 1
        self._install(l1, new_line)
        return AccessResult(value, latency, l1_hit, served_by,
                            created_version=True)

    def _upgrade(self, line: LineView) -> None:
        """Invalidate peer copies so ``line`` becomes writable (O/S -> M/E)."""
        self.stats.bus_snoops += 1
        self._invalidate_nonspec_everywhere(line.addr, keep=line)
        line.set_state(State.MODIFIED if line.state is State.OWNED
                       else State.EXCLUSIVE)

    def _invalidate_nonspec_everywhere(self, addr: int,
                                       keep: Optional[LineView] = None) -> None:  # hot-path
        """Acquire exclusivity: drop every non-speculative copy.

        Silent shared speculative copies (``S-S``) are dropped as well —
        they are clean, never respond to snoops, and a stale one whose
        window survived its version's commit would otherwise overlap the
        speculative marking the requester is about to create.  Real
        speculative owners (``S-M``/``S-O``/``S-E``) are never present on
        this path: a live latest version would have served the request
        itself instead of a non-speculative owner.

        Only caches recorded in the presence map are visited, and each
        holder's version bucket is swept directly on the state column;
        a cache with no version of the line has nothing to invalidate.
        """
        base = self.l2.line_addr(addr)
        holders = self._holders.get(base)
        if not holders:
            return
        for cache in self._caches:
            if cache not in holders:
                continue
            bucket = cache._process_bucket(base)
            if bucket is None:
                continue
            state_col = cache._store.state
            keep_slot = (keep._slot if keep is not None and keep.cache is cache
                         else -1)
            for slot in list(bucket):  # lint-ok: RL006 (snapshot: bucket shrinks underneath)
                if slot == keep_slot:
                    continue
                code = state_col[slot]
                if code >= CODE_SM and code != CODE_SS:
                    continue
                cache._remove_slot(slot)

    def _scrub_ss_copies(self, addr: int, mod_vid: int) -> None:  # hot-path
        """Invalidate all S-S copies of version ``(addr, mod_vid)``.

        The speculative analogue of a MOESI upgrade: a write to a version
        must invalidate its silent read-only copies, otherwise they would
        keep serving the version's *pre-write* data.

        Filtered through the presence map like every other snoop; each
        holder's version bucket is swept directly on the state and modVID
        columns.
        """
        base = self.l2.line_addr(addr)
        holders = self._holders.get(base)
        if not holders:
            return
        dropped = False
        for cache in self._caches:
            if cache not in holders:
                continue
            bucket = cache._process_bucket(base)
            if bucket is None:
                continue
            store = cache._store
            state_col = store.state
            mod_col = store.mod_vid
            for slot in list(bucket):  # lint-ok: RL006 (snapshot: bucket shrinks underneath)
                if state_col[slot] == CODE_SS and mod_col[slot] == mod_vid:
                    cache._remove_slot(slot)
                    dropped = True
        if dropped:
            self.stats.ss_invalidations += 1
            self.stats.bus_snoops += 1

    def _raise_misspeculation(self, line: CacheLine, vid: int) -> None:
        raise MisspeculationError(
            f"store with VID {vid} conflicts with version "
            f"{line.state}({line.mod_vid},{line.high_vid})",
            vid=vid, addr=line.addr, cause=AbortCause.CONFLICT)

    # ------------------------------------------------------------------
    # Eviction handling
    # ------------------------------------------------------------------

    def _install(self, cache: VersionedCache, line: CacheLine) -> LineView:
        """Install ``line`` and handle its victims; returns the resident view.

        ``line`` is an in-flight record — once installed, the version lives
        in the cache's slot arena, so callers that keep mutating the line
        (retags, data writes) must do it through the returned view.
        """
        slot, evicted = cache.install_slot(line)
        for victim in evicted:
            self._handle_victim(cache, victim)
        return cache._view(slot)

    def _handle_victim(self, cache: VersionedCache, victim: CacheLine) -> None:
        if victim.state is State.INVALID:
            return
        if cache not in self._llc_group:
            # L1 victim: S-S peer copies are silently droppable; clean
            # non-speculative lines need no writeback; everything else moves
            # down to the line's home LLC slice "as normal" (section 4.1) —
            # the single shared L2 on a flat machine.
            if victim.state in (State.SS, State.SHARED, State.EXCLUSIVE):
                return
            self._install(self._home_llc(victim.addr), victim)
            return
        # Last-level cache victim: section 5.4 rules.
        if victim.state in (State.MODIFIED, State.OWNED):
            self.memory.write_line(victim.addr, victim.data)
            return
        if victim.state in (State.SHARED, State.EXCLUSIVE, State.SS):
            return
        if victim.state is State.SO and victim.mod_vid == 0:
            # The non-speculative backup may overflow to memory; the S-M
            # assertion path of _fetch retrieves it if needed again.
            self.stats.nonspec_overflows += 1
            self.memory.write_line(victim.addr, victim.data)
            return
        if self.overflow_table is not None:
            # Section 8 extension: spill the speculative version into the
            # memory-side table instead of aborting.
            self.stats.spec_overflow_spills += 1
            self.overflow_table.spill(victim)
            return
        raise SpeculativeOverflowError(
            f"speculative version {victim.state}({victim.mod_vid},"
            f"{victim.high_vid}) of 0x{victim.addr:x} evicted past the LLC",
            vid=victim.mod_vid, addr=victim.addr,
            cause=AbortCause.CAPACITY_OVERFLOW)
