"""Cost model and validation policies for the SMTX baseline.

SMTX (Raman et al. [29]) is a process-based software MTX system: the main
(*commit*) process holds committed state; workers execute transactions
against copy-on-write memory images.  Two kinds of explicit communication
dominate its overhead (section 2.3):

* **speculation validation** — every access in the read/write set is logged
  and shipped to the commit process, which re-checks reads and applies
  writes *sequentially*;
* **uncommitted value forwarding** — values crossing pipeline stages travel
  through software queues.

The per-entry costs below are in cycles on the Table 2 machine.  They are
calibrated to the published outcome, not measured from the original
runtime: with minimal read/write sets SMTX reaches ~1.4x geomean on 4 cores
(Figure 8), while validating every access turns speedup into slowdown
(Figure 2).  The *shape* — a sequential commit process whose work grows
linearly with set size — is the faithful part.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ValidationMode(enum.Enum):
    """How much of a transaction's accesses enter the validation sets.

    ``MINIMAL``
        Only accesses an expert programmer proved must be validated (the
        cross-stage forwarding slots).  This is the laborious manual
        transformation the paper argues against relying on.
    ``SUBSTANTIAL``
        All accesses to shared data structures (Figure 2's second
        configuration: what a compiler with decent — not heroic — analysis
        could prove private stays unvalidated).
    ``MAXIMAL``
        Every load and store inside the transaction (what HMTX is evaluated
        with, and what automatic parallelisation realistically needs).
    """

    MINIMAL = "minimal"
    SUBSTANTIAL = "substantial"
    MAXIMAL = "maximal"


@dataclass
class SmtxCosts:
    """Per-operation software overheads (cycles)."""

    #: Shim around every speculative access (COW fault amortisation, TM API).
    instrument_read: int = 6
    instrument_write: int = 6
    #: Worker side: build a validation entry and enqueue it.
    log_entry: int = 24
    #: Commit process: dequeue an entry, compare a read / apply a write.
    validate_entry: int = 55
    #: Per-word uncommitted value forwarding between pipeline stages.
    forward_entry: int = 30
    #: Per-transaction commit handshake with the commit process.
    commit_finalize: int = 180
