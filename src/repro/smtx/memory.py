"""Versioned software memory for the SMTX baseline.

Models what the real SMTX runtime achieves with forked processes and
copy-on-write pages: each transaction sees committed state overlaid with the
write buffers of all logically-earlier uncommitted transactions (uncommitted
value forwarding) plus its own writes.

Commits apply a transaction's buffer to committed state *in VID order*,
mirroring the sequential commit process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..coherence.memory import MainMemory


@dataclass
class SmtxMemory:
    """Committed words plus per-VID speculative write buffers."""

    backing: MainMemory = field(default_factory=MainMemory)
    _buffers: Dict[int, Dict[int, int]] = field(default_factory=dict)

    def _word_addr(self, addr: int) -> int:
        return addr - (addr % self.backing.word_size)

    # ------------------------------------------------------------------

    def read(self, vid: int, addr: int) -> int:
        """Read as transaction ``vid`` (0 = committed state only).

        Searches the write buffers of VIDs ``<= vid`` from newest to oldest
        — exactly the version a correctly-ordered MTX must observe.
        """
        word = self._word_addr(addr)
        if vid > 0:
            for buffer_vid in sorted(self._buffers, reverse=True):
                if buffer_vid <= vid and word in self._buffers[buffer_vid]:
                    return self._buffers[buffer_vid][word]
        return self.backing.read_word(word)

    def write(self, vid: int, addr: int, value: int) -> None:
        """Write as transaction ``vid`` (0 writes committed state)."""
        word = self._word_addr(addr)
        if vid == 0:
            self.backing.write_word(word, value)
        else:
            self._buffers.setdefault(vid, {})[word] = value

    # ------------------------------------------------------------------

    def commit(self, vid: int) -> int:
        """Apply ``vid``'s buffer to committed state; returns words applied."""
        buffer = self._buffers.pop(vid, {})
        for word, value in buffer.items():
            self.backing.write_word(word, value)
        return len(buffer)

    def abort_all(self) -> int:
        """Drop every uncommitted buffer; returns buffers discarded."""
        count = len(self._buffers)
        self._buffers.clear()
        return count

    def buffered_words(self, vid: int) -> int:
        return len(self._buffers.get(vid, {}))

    def live_vids(self) -> List[int]:
        return sorted(self._buffers)


@dataclass
class ReadLogEntry:
    """A validated read shipped to the commit process."""

    vid: int
    addr: int
    value_seen: int


class ValidationLog:
    """Per-transaction validation sets (the commit process's work queue)."""

    def __init__(self) -> None:
        self._reads: Dict[int, List[ReadLogEntry]] = {}
        self._writes: Dict[int, List[Tuple[int, int]]] = {}

    def log_read(self, vid: int, addr: int, value: int) -> None:
        self._reads.setdefault(vid, []).append(ReadLogEntry(vid, addr, value))

    def log_write(self, vid: int, addr: int, value: int) -> None:
        self._writes.setdefault(vid, []).append((addr, value))

    def entries(self, vid: int) -> int:
        return len(self._reads.get(vid, ())) + len(self._writes.get(vid, ()))

    def validate(self, vid: int, memory: SmtxMemory) -> Optional[ReadLogEntry]:
        """Re-check ``vid``'s reads against committed state.

        At ``vid``'s commit point every earlier transaction has committed,
        so each logged read must match committed memory; the first mismatch
        (a real data-dependence violation) is returned.
        """
        for entry in self._reads.get(vid, ()):
            if memory.read(0, entry.addr) != entry.value_seen:
                return entry
        return None

    def pop(self, vid: int) -> None:
        self._reads.pop(vid, None)
        self._writes.pop(vid, None)

    def clear(self) -> None:
        self._reads.clear()
        self._writes.clear()
