"""SMTX: the software multithreaded-transaction baseline (Raman et al.)."""

from .costs import SmtxCosts, ValidationMode
from .memory import SmtxMemory, ValidationLog
from .runtime import run_smtx, smtx_whole_program_speedup, validation_predicate_for
from .system import SMTXSystem

__all__ = [
    "SMTXSystem",
    "SmtxCosts",
    "SmtxMemory",
    "ValidationLog",
    "ValidationMode",
    "run_smtx",
    "smtx_whole_program_speedup",
    "validation_predicate_for",
]
