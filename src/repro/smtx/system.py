"""The SMTX system object: software MTXs behind the HMTX-shaped API.

:class:`SMTXSystem` mirrors :class:`repro.core.system.HMTXSystem` closely
enough that the paradigm executors of :mod:`repro.runtime.paradigms` drive
it unchanged — same ``beginMTX``/``commitMTX`` discipline, same statistics —
but the implementation is a software TM:

* versions live in per-VID write buffers (:class:`~repro.smtx.memory.
  SmtxMemory`), not cache lines;
* every access in the validation set is logged and charged the worker-side
  logging cost; the commit process's sequential work is accumulated in
  ``commit_process_cycles`` and folded into the run time by
  :func:`repro.smtx.runtime.run_smtx`;
* reads are genuinely re-validated against committed state at commit time —
  a real conflict aborts, exactly like the original runtime;
* there is no SLA machinery: software systems never see squashed wrong-path
  loads (the instrumentation *is* program code), which is also why they are
  immune to section 5.1's problem.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..coherence.hierarchy import AccessResult, MemoryHierarchy
from ..coherence.vid import VidSpace
from ..core.config import MachineConfig
from ..core.context import ThreadContext
from ..core.stats import SystemStats
from ..errors import MisspeculationError, TransactionUsageError
from ..txctl.causes import AbortCause
from .costs import SmtxCosts, ValidationMode
from .memory import SmtxMemory, ValidationLog

#: Predicate deciding whether an access (addr, is_store) is validated.
ValidationPredicate = Callable[[int, bool], bool]


class _MemoryFacade:
    """Duck-types ``system.hierarchy`` for workload setup/result readers.

    Values come from the software TM; latency comes from a real (purely
    non-speculative) cache hierarchy that SMTX accesses are mirrored into —
    SMTX runs on commodity caches and must pay the same miss costs as HMTX.
    The timing hierarchy's *data* is never read (its backing store is
    separate), so speculative values cannot leak into committed state
    through writebacks.
    """

    def __init__(self, smtx_memory: SmtxMemory, timing) -> None:
        self._memory = smtx_memory
        self._timing = timing

    @property
    def memory(self):
        return self._memory.backing

    def read_committed(self, addr: int) -> int:
        """Verification read of committed state (no timing, no stats)."""
        return self._memory.read(0, addr)

    def load(self, core: int, addr: int, vid: int) -> AccessResult:
        value = self._memory.read(vid, addr)
        latency = self._timing.load(core, addr, 0).latency
        return AccessResult(value, latency, True, "smtx")

    def store(self, core: int, addr: int, vid: int, value: int) -> AccessResult:
        self._memory.write(vid, addr, value)
        latency = self._timing.store(core, addr, 0, 0).latency
        return AccessResult(value, latency, True, "smtx")


class SMTXSystem:
    """A commodity multicore running the SMTX software runtime.

    Parameters
    ----------
    config:
        The machine (``num_cores`` here is the count available to *worker*
        threads; the commit process occupies one more core — callers build
        the config accordingly).
    mode:
        Validation policy (minimal / substantial / maximal sets).
    validation_predicate:
        Which accesses belong to the validation sets under the chosen mode
        (derived from the workload by :func:`repro.smtx.runtime.run_smtx`).
    """

    def __init__(self, config: Optional[MachineConfig] = None,
                 mode: ValidationMode = ValidationMode.MAXIMAL,
                 validation_predicate: Optional[ValidationPredicate] = None,
                 costs: Optional[SmtxCosts] = None) -> None:
        self.config = config or MachineConfig()
        self.mode = mode
        self.costs = costs or SmtxCosts()
        self._validated = validation_predicate or (lambda addr, is_store: True)
        self.memory = SmtxMemory()
        self.log = ValidationLog()
        # Timing-only commodity hierarchy (all accesses non-speculative).
        self.timing = MemoryHierarchy(self.config.hierarchy_config())
        self.hierarchy = _MemoryFacade(self.memory, self.timing)
        # Software VIDs are plain integers; 30 bits ~= unbounded, so the
        # 4.6 overflow/reset machinery never triggers for SMTX.
        self.vid_space = VidSpace(bits=30)
        self.stats = SystemStats(line_size=self.config.line_size)
        self.contexts: Dict[int, ThreadContext] = {}
        self.active_vids: Set[int] = set()
        self.last_committed = 0
        self.committed_output: list = []
        #: Sequential work accumulated on the commit process's core.
        self.commit_process_cycles = 0
        self.forwarded_words = 0

    # ------------------------------------------------------------------
    # HMTXSystem-shaped surface used by the scheduler/paradigms
    # ------------------------------------------------------------------

    def thread(self, tid: int, core: int) -> ThreadContext:
        if tid not in self.contexts:
            self.contexts[tid] = ThreadContext(tid=tid, core=core)
        return self.contexts[tid]

    def allocate_vid(self) -> int:
        vid = self.vid_space.allocate()
        self.active_vids.add(vid)
        return vid

    def ready_for_vid_reset(self) -> bool:
        return False

    def vid_reset(self) -> int:
        raise TransactionUsageError("SMTX VIDs are unbounded; no reset exists")

    def begin_mtx(self, tid: int, vid: int) -> int:
        if vid > 0:
            if vid <= self.last_committed:
                raise TransactionUsageError(
                    f"beginMTX({vid}) after VID {self.last_committed} committed")
            self.active_vids.add(vid)
        self.contexts[tid].vid = vid
        # Entering/leaving a software transaction is a library call.
        return self.costs.instrument_read

    def init_mtx(self, tid: int, handler: Any) -> int:
        self.contexts[tid].recovery_handler = handler
        return 1

    def commit_mtx(self, tid: int, vid: int) -> int:
        """Commit via the commit process (validation + write application).

        The worker pays the handshake; the sequential per-entry validation
        work lands on ``commit_process_cycles``.
        """
        if vid != self.last_committed + 1:
            raise TransactionUsageError(
                f"commitMTX({vid}) out of order; expected {self.last_committed + 1}")
        violation = self.log.validate(vid, self.memory)
        entries = self.log.entries(vid)
        self.commit_process_cycles += entries * self.costs.validate_entry
        self.commit_process_cycles += self.costs.commit_finalize
        if violation is not None:
            # A failed validation is SMTX's conflict detection: stamp the
            # same txctl cause HMTX conflicts carry, so the contention
            # manager (and the conformance suite) sees one taxonomy.
            self._abort(cause=AbortCause.CONFLICT, vid=vid)
            raise MisspeculationError(
                f"SMTX validation failed: VID {vid} read 0x{violation.addr:x} "
                f"= {violation.value_seen}, committed value differs",
                vid=vid, addr=violation.addr, cause=AbortCause.CONFLICT)
        self.memory.commit(vid)
        self.log.pop(vid)
        self.active_vids.discard(vid)
        self.last_committed = vid
        self.stats.record_commit(vid)
        ctx = self.contexts[tid]
        for context in self.contexts.values():
            self.committed_output.extend(context.release_output(vid))
        if ctx.vid == vid:
            ctx.vid = 0
        return self.costs.commit_finalize

    def abort_mtx(self, tid: int, vid: int) -> int:
        self._abort(explicit=True, cause=AbortCause.EXPLICIT, vid=vid)
        raise MisspeculationError("explicit abortMTX", vid=vid,
                                  cause=AbortCause.EXPLICIT)

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def load(self, tid: int, addr: int, now: int = 0) -> AccessResult:
        ctx = self.contexts[tid]
        vid = ctx.vid
        value, source_vid = self._read_with_source(vid, addr)
        latency = self.timing.load(ctx.core, addr, 0, now=now).latency
        if vid > 0:
            latency += self.costs.instrument_read
            if source_vid not in (0, vid):
                # Uncommitted value forwarding through software queues.
                latency += self.costs.forward_entry
                self.forwarded_words += 1
            sla = False
            if self._validated(addr, False) and source_vid != vid:
                self.log.log_read(vid, addr, value)
                latency += self.costs.log_entry
                sla = True  # reused field: "this access was logged"
            self.stats.record_load(vid, addr, sla_sent=False)
            return AccessResult(value, latency, True, "smtx", sla_required=sla)
        return AccessResult(value, latency, True, "smtx")

    def store(self, tid: int, addr: int, value: int,
              now: int = 0) -> AccessResult:
        ctx = self.contexts[tid]
        vid = ctx.vid
        latency = self.timing.store(ctx.core, addr, 0, 0, now=now).latency
        self.memory.write(vid, addr, value)
        if vid > 0:
            latency += self.costs.instrument_write
            if self._validated(addr, True):
                self.log.log_write(vid, addr, value)
                latency += self.costs.log_entry
            self.stats.record_store(vid, addr)
        return AccessResult(value, latency, True, "smtx")

    def wrong_path_load(self, tid: int, addr: int) -> Tuple[int, int]:
        """Squashed loads are invisible to a software TM (no logging)."""
        ctx = self.contexts[tid]
        value = self.memory.read(ctx.vid, addr)
        _, latency = self.timing.peek(ctx.core, addr, 0)
        return value, latency

    def kernel_load(self, tid: int, addr: int) -> AccessResult:
        ctx = self.contexts[tid]
        latency = self.timing.load(ctx.core, addr, 0).latency
        return AccessResult(self.memory.read(0, addr), latency, True, "smtx")

    def kernel_store(self, tid: int, addr: int, value: int) -> AccessResult:
        ctx = self.contexts[tid]
        latency = self.timing.store(ctx.core, addr, 0, 0).latency
        self.memory.write(0, addr, value)
        return AccessResult(value, latency, True, "smtx")

    def output(self, tid: int, value: Any) -> None:
        ctx = self.contexts[tid]
        if ctx.vid > 0:
            ctx.buffer_output(value)
        else:
            self.committed_output.append(value)

    # ------------------------------------------------------------------

    def _read_with_source(self, vid: int, addr: int) -> Tuple[int, int]:
        """Read and report which VID's buffer supplied the value (0 = committed)."""
        word = addr - (addr % self.memory.backing.word_size)
        if vid > 0:
            for buffer_vid in sorted(self.memory.live_vids(), reverse=True):
                if buffer_vid <= vid and \
                        word in self.memory._buffers[buffer_vid]:
                    return self.memory._buffers[buffer_vid][word], buffer_vid
        return self.memory.backing.read_word(word), 0

    def _abort(self, explicit: bool = False,
               cause: Optional[AbortCause] = None, vid: int = 0) -> None:
        self.memory.abort_all()
        self.log.clear()
        self.stats.record_abort(explicit=explicit, cause=cause, vid=vid)
        for ctx in self.contexts.values():
            ctx.discard_output()
            ctx.vid = 0
        self.active_vids.clear()
        self.vid_space.rewind(self.last_committed + 1)
