"""Driving SMTX runs: paradigm execution plus commit-process accounting.

:func:`run_smtx` executes a workload under the SMTX baseline using the very
same paradigm executors as HMTX, with two differences that define the
comparison of Figures 2 and 8:

* the commit process occupies one core, so only ``num_cores - 1`` cores
  remain for worker threads ("SMTX requires the extra commit process,
  taking up one core's resources", section 6.2);
* the hot-loop time is ``max(worker makespan, commit-process busy time)``:
  the commit process consumes validation entries sequentially, and once the
  sets grow it — not the workers — bounds throughput.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.config import MachineConfig
from ..runtime.paradigms import ParadigmResult, run_workload
from ..workloads.base import Workload
from .costs import SmtxCosts, ValidationMode
from .system import SMTXSystem, ValidationPredicate


def validation_predicate_for(workload: Workload,
                             mode: ValidationMode) -> ValidationPredicate:
    """Build the access-classification predicate for ``workload``/``mode``.

    * ``MAXIMAL`` validates everything.
    * ``MINIMAL`` validates only the workload's declared forwarding slots
      (the expert-programmer configuration).
    * ``SUBSTANTIAL`` validates everything in the workload's shared regions
      (what non-heroic static analysis cannot prove private).
    """
    if mode is ValidationMode.MAXIMAL:
        return lambda addr, is_store: True
    if mode is ValidationMode.MINIMAL:
        minimal = frozenset(getattr(workload, "smtx_minimal_addresses",
                                    lambda: frozenset())())
        return lambda addr, is_store: addr in minimal
    regions = getattr(workload, "smtx_shared_regions", lambda: None)()
    if regions is None:
        return lambda addr, is_store: True
    spans = tuple(regions)
    return lambda addr, is_store: any(lo <= addr < hi for lo, hi in spans)


def run_smtx(workload: Workload, config: Optional[MachineConfig] = None,
             paradigm: Optional[str] = None,
             mode: ValidationMode = ValidationMode.MINIMAL,
             costs: Optional[SmtxCosts] = None,
             **kwargs) -> ParadigmResult:
    """Run ``workload`` under SMTX; returns a ParadigmResult whose
    ``cycles`` include the commit-process bottleneck.

    ``config.num_cores`` is the *total* core count; one core is carved out
    for the commit process before placing worker threads.
    """
    machine = config or MachineConfig()
    if machine.num_cores < 2:
        raise ValueError("SMTX needs at least 2 cores (worker + commit)")
    if machine.topology is None:
        worker_config = MachineConfig(**{**machine.__dict__,
                                         "num_cores": machine.num_cores - 1})
    else:
        # A declared topology fixes the core count (sockets × cores per
        # socket), so the commit process cannot shrink it; it runs as an
        # extra tile on socket 0 and workers keep the full machine.
        worker_config = machine
    predicate = validation_predicate_for(workload, mode)

    def factory() -> SMTXSystem:
        return SMTXSystem(config=worker_config, mode=mode,
                          validation_predicate=predicate, costs=costs)

    name = paradigm or workload.paradigm
    if name in ("DSWP", "PS-DSWP"):
        # The SMTX commit process is itself the ordered final stage, so
        # workers commit inline (wait for their turn, run the epilogue)
        # and all remaining cores after stage 1 run the parallel stage.
        kwargs.setdefault("inline_commit", True)
        kwargs.setdefault("stage2_workers", max(1, worker_config.num_cores - 1))
    result = run_workload(workload, worker_config, paradigm=name,
                          system_factory=factory, **kwargs)
    system = result.system
    worker_cycles = result.cycles
    commit_cycles = system.commit_process_cycles
    result.extra["worker_cycles"] = worker_cycles
    result.extra["commit_process_cycles"] = commit_cycles
    result.extra["validation_mode"] = mode.value
    result.cycles = max(worker_cycles, commit_cycles)
    result.paradigm = f"SMTX-{result.paradigm}"
    return result


def smtx_whole_program_speedup(workload: Workload, hot_loop_speedup: float
                               ) -> float:
    """Amdahl projection from hot-loop speedup to whole-program speedup.

    Figure 2 reports *whole program* numbers; Table 1's hot-loop fraction
    supplies the sequential remainder.
    """
    fraction = workload.hot_loop_fraction
    return 1.0 / ((1.0 - fraction) + fraction / hot_loop_speedup)
