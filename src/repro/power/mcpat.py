"""McPAT-style area, power, and energy model of the Table 2 machine.

Reproduces the methodology of section 6.4: McPAT (with CACTI inside) at the
22nm node, power gating and low L2 standby power enabled.  The model is
analytic, with constants calibrated so the commodity 4-core configuration
lands on Table 3's published values (107.1 mm², 5.515 W leakage) and the
HMTX extensions add ~4.0 mm² (12 VID bits per line plus the low/high
cascaded comparators of section 4.5).

Dynamic power is utilisation-based: each core contributes its busy
fraction, caches contribute per-access energy, and the HMTX extensions add
a small per-access comparator overhead even when unused — the effect the
paper quantifies by re-running SMTX/sequential binaries on HMTX hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.config import MachineConfig
from .cacti import SramEstimate, TechnologyNode, cache_arrays

#: Area of one out-of-order Alpha-21264-class core at 22nm (mm^2),
#: including its private L1 I/D pair's periphery and core-side interconnect.
CORE_AREA_MM2 = 10.03
#: Core logic leakage (W per core) with power gating.
CORE_LEAK_W = 0.994
#: Dynamic power of one fully-busy core (W) at 2 GHz, geomean workload.
CORE_DYNAMIC_W = 3.30
#: Uncore/bus dynamic power when the machine is active (W).
UNCORE_DYNAMIC_W = 0.18
#: Extra logic area for the cascaded VID comparators and commit/abort
#: broadcast handling (mm^2 total across the system).
HMTX_LOGIC_AREA_MM2 = 0.55
#: Relative dynamic-energy overhead of checking VID tags on every cache
#: access when HMTX hardware is present (section 4.5 keeps this small via
#: the split low/high comparison).
HMTX_ACCESS_OVERHEAD = 0.0115
#: Dynamic energy per L1 access (nJ) and per L2/bus transaction (nJ).
L1_ACCESS_NJ = 0.035
L2_ACCESS_NJ = 0.45


@dataclass(frozen=True)
class AreaBreakdown:
    """Die area by component (mm^2)."""

    cores: float
    l1_caches: float
    l2_cache: float
    hmtx_extensions: float

    @property
    def total(self) -> float:
        return self.cores + self.l1_caches + self.l2_cache + self.hmtx_extensions


@dataclass(frozen=True)
class PowerReport:
    """One Table 3 row."""

    label: str
    area_mm2: float
    leakage_w: float
    dynamic_w: float
    seconds: float

    @property
    def energy_j(self) -> float:
        return (self.leakage_w + self.dynamic_w) * self.seconds


@dataclass
class RunProfile:
    """Activity profile extracted from one simulated run."""

    cycles: int
    #: Per-core busy fraction in [0, 1] (a dedicated SMTX commit process
    #: counts as a busy core).
    busy_fractions: Dict[int, float] = field(default_factory=dict)
    l1_accesses: int = 0
    l2_accesses: int = 0
    #: True when the run exercises the HMTX extensions (speculative VIDs).
    hmtx_active: bool = False


class McPatModel:
    """Area/power/energy estimator for one machine configuration.

    Parameters
    ----------
    machine:
        The simulated machine (Table 2 by default).
    hmtx_extensions:
        Whether the die includes HMTX hardware (12 extra bits per line,
        comparators).  Software running on HMTX hardware pays the small
        access-energy overhead even if it never speculates.
    """

    def __init__(self, machine: Optional[MachineConfig] = None,
                 hmtx_extensions: bool = False,
                 tech: Optional[TechnologyNode] = None) -> None:
        self.machine = machine or MachineConfig()
        self.hmtx = hmtx_extensions
        self.tech = tech or TechnologyNode()
        self._vid_bits_per_line = 2 * self.machine.vid_bits  # modVID+highVID

    # ------------------------------------------------------------------
    # Area and leakage
    # ------------------------------------------------------------------

    def _l1_estimate(self) -> SramEstimate:
        extra = self._vid_bits_per_line if self.hmtx else 0
        per_core = cache_arrays(self.machine.l1_size, self.machine.l1_assoc,
                                self.machine.line_size, fast=True,
                                extra_state_bits=extra, tech=self.tech)
        # I and D caches per core (Table 2); VID bits only on the D side,
        # but `extra` was already applied once per core above.
        icache = cache_arrays(self.machine.l1_size, self.machine.l1_assoc,
                              self.machine.line_size, fast=True,
                              extra_state_bits=0, tech=self.tech)
        total = per_core + icache
        return SramEstimate(total.bits * self.machine.num_cores,
                            total.area_mm2 * self.machine.num_cores,
                            total.leakage_w * self.machine.num_cores,
                            per_core.read_energy_nj)

    def _l2_estimate(self) -> SramEstimate:
        extra = self._vid_bits_per_line if self.hmtx else 0
        return cache_arrays(self.machine.l2_size, self.machine.l2_assoc,
                            self.machine.line_size, fast=False,
                            extra_state_bits=extra, tech=self.tech)

    def _baseline_model(self) -> "McPatModel":
        """The same machine without HMTX extensions (for deltas)."""
        return McPatModel(self.machine, hmtx_extensions=False, tech=self.tech)

    def area(self) -> AreaBreakdown:
        """Die area by component.

        The HMTX extension area is reported separately: the per-line VID
        tag bits (the dominant term, section 6.4) plus the comparator and
        broadcast logic.
        """
        l1 = self._l1_estimate()
        l2 = self._l2_estimate()
        extension = 0.0
        if self.hmtx:
            base = self._baseline_model()
            tag_delta = ((l1.area_mm2 - base._l1_estimate().area_mm2)
                         + (l2.area_mm2 - base._l2_estimate().area_mm2))
            extension = tag_delta + HMTX_LOGIC_AREA_MM2
            l1 = base._l1_estimate()
            l2 = base._l2_estimate()
        return AreaBreakdown(
            cores=CORE_AREA_MM2 * self.machine.num_cores,
            l1_caches=l1.area_mm2,
            l2_cache=l2.area_mm2,
            hmtx_extensions=extension,
        )

    def total_area(self) -> float:
        return self.area().total

    def leakage(self) -> float:
        """Total leakage (W): core logic plus all SRAM arrays."""
        return (CORE_LEAK_W * self.machine.num_cores
                + self._l1_estimate().leakage_w
                + self._l2_estimate().leakage_w
                + (HMTX_LOGIC_AREA_MM2 * self.tech.sram_leak_w_per_mm2 * 2
                   if self.hmtx else 0.0))

    # ------------------------------------------------------------------
    # Dynamic power and energy
    # ------------------------------------------------------------------

    def dynamic_power(self, profile: RunProfile) -> float:
        """Runtime dynamic power (W) for one activity profile."""
        if profile.cycles <= 0:
            return 0.0
        core_power = CORE_DYNAMIC_W * sum(profile.busy_fractions.values())
        seconds = self.machine.cycles_to_seconds(profile.cycles)
        l1_rate = profile.l1_accesses / seconds if seconds else 0.0
        l2_rate = profile.l2_accesses / seconds if seconds else 0.0
        cache_power = (l1_rate * L1_ACCESS_NJ + l2_rate * L2_ACCESS_NJ) * 1e-9
        power = core_power + cache_power + UNCORE_DYNAMIC_W
        if self.hmtx:
            power *= (1.0 + HMTX_ACCESS_OVERHEAD)
        return power

    def report(self, label: str, profile: RunProfile) -> PowerReport:
        """Assemble one Table 3 row for a run."""
        return PowerReport(
            label=label,
            area_mm2=self.total_area(),
            leakage_w=self.leakage(),
            dynamic_w=self.dynamic_power(profile),
            seconds=self.machine.cycles_to_seconds(profile.cycles),
        )


def profile_from_result(result, commit_process: bool = False,
                        hmtx_active: bool = False) -> RunProfile:
    """Build a :class:`RunProfile` from a ParadigmResult.

    ``commit_process``: add one fully-busy core (the SMTX commit process).
    """
    cycles = max(1, result.cycles)
    busy = {}
    for tid, clock in result.run.thread_clocks.items():
        busy[tid] = min(1.0, clock / cycles)
    if commit_process:
        commit_cycles = result.extra.get("commit_process_cycles", cycles)
        busy["commit"] = min(1.0, commit_cycles / cycles)
    hier_stats = getattr(result.system.hierarchy, "stats", None)
    if hier_stats is not None and hasattr(hier_stats, "loads"):
        l1 = hier_stats.loads + hier_stats.stores
        l2 = hier_stats.bus_snoops + hier_stats.memory_fetches
    else:
        timing = getattr(result.system, "timing", None)
        l1 = timing.stats.loads + timing.stats.stores if timing else 0
        l2 = timing.stats.bus_snoops if timing else 0
    return RunProfile(cycles=cycles, busy_fractions=busy,
                      l1_accesses=l1, l2_accesses=l2,
                      hmtx_active=hmtx_active)
