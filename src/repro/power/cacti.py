"""CACTI-style SRAM area/leakage/energy estimation.

McPAT models caches through CACTI [24], which performs architectural
modelling of SRAM arrays.  This module is a deliberately small analytic
stand-in: area scales with bit count (denser for the large, slower L2 array
than for fast L1/tag arrays), leakage scales with area, and per-access
dynamic energy grows with the square root of array size (bitline/wordline
length).  Constants are calibrated at the 22nm node so that the paper's
Table 2 machine reproduces Table 3's McPAT outputs (107.1 mm² commodity,
+4.0 mm² for the HMTX extensions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

MBIT = 1024 * 1024


@dataclass(frozen=True)
class SramEstimate:
    """Physical estimate for one SRAM array."""

    bits: int
    area_mm2: float
    leakage_w: float
    read_energy_nj: float

    def __add__(self, other: "SramEstimate") -> "SramEstimate":
        return SramEstimate(
            self.bits + other.bits,
            self.area_mm2 + other.area_mm2,
            self.leakage_w + other.leakage_w,
            self.read_energy_nj + other.read_energy_nj,
        )


@dataclass(frozen=True)
class TechnologyNode:
    """Process technology constants (22nm defaults, calibrated to Table 3)."""

    name: str = "22nm"
    #: mm^2 per Mbit for large, density-optimised arrays (the 32 MB L2).
    dense_mm2_per_mbit: float = 0.2180
    #: mm^2 per Mbit for fast, latency-optimised arrays (L1s, tag arrays).
    fast_mm2_per_mbit: float = 0.5500
    #: Leakage per mm^2 of SRAM (power gating + low standby power applied,
    #: as the paper's methodology states).
    sram_leak_w_per_mm2: float = 0.0230
    #: Base dynamic read energy (nJ) for a 1 Mbit fast array; grows with
    #: sqrt(capacity).
    base_read_energy_nj: float = 0.0550


def sram_array(bits: int, fast: bool,
               tech: TechnologyNode = TechnologyNode()) -> SramEstimate:
    """Estimate one SRAM array of ``bits`` bits.

    ``fast`` selects the latency-optimised corner (L1 data/tag arrays,
    per-line VID tag bits) over the density-optimised one (L2 data).
    """
    if bits <= 0:
        return SramEstimate(0, 0.0, 0.0, 0.0)
    mbits = bits / MBIT
    density = tech.fast_mm2_per_mbit if fast else tech.dense_mm2_per_mbit
    area = mbits * density
    leak = area * tech.sram_leak_w_per_mm2
    energy = tech.base_read_energy_nj * math.sqrt(max(mbits, 1.0 / 64))
    return SramEstimate(bits, area, leak, energy)


def cache_arrays(size_bytes: int, assoc: int, line_size: int,
                 address_bits: int = 48, fast: bool = False,
                 extra_state_bits: int = 0,
                 tech: TechnologyNode = TechnologyNode()) -> SramEstimate:
    """Data + tag (+ optional extension-state) arrays of one cache.

    ``extra_state_bits`` models per-line additions such as HMTX's two 6-bit
    VIDs (section 6.4: "adding 12 bits to every line in the cache").
    """
    lines = size_bytes // line_size
    sets = lines // assoc
    index_bits = max(1, int(math.log2(max(sets, 1))))
    offset_bits = int(math.log2(line_size))
    tag_bits_per_line = address_bits - index_bits - offset_bits
    # MOESI state + LRU bookkeeping alongside the tag.
    state_bits_per_line = 4
    data = sram_array(lines * line_size * 8, fast=fast, tech=tech)
    tags = sram_array(lines * (tag_bits_per_line + state_bits_per_line),
                      fast=True, tech=tech)
    extension = sram_array(lines * extra_state_bits, fast=True, tech=tech)
    return data + tags + extension
