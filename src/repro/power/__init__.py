"""McPAT/CACTI-style area, power, and energy model (Table 3)."""

from .cacti import MBIT, SramEstimate, TechnologyNode, cache_arrays, sram_array
from .mcpat import (
    AreaBreakdown,
    McPatModel,
    PowerReport,
    RunProfile,
    profile_from_result,
)

__all__ = [
    "AreaBreakdown",
    "MBIT",
    "McPatModel",
    "PowerReport",
    "RunProfile",
    "SramEstimate",
    "TechnologyNode",
    "cache_arrays",
    "profile_from_result",
    "sram_array",
]
