"""Exception types shared across the HMTX reproduction."""

from __future__ import annotations

import warnings


class ReproError(Exception):
    """Base class for all library-specific errors."""


class MisspeculationError(ReproError):
    """A data-dependence violation (or explicit abort) was detected.

    Carries enough context for the runtime's recovery code (the handler
    registered with ``initMTX``) to report and restart: the VID of the
    offending access, the address involved, a human-readable reason, and
    the abort *cause* (an :class:`~repro.txctl.causes.AbortCause`) stamped
    at the raise site so the contention manager can retry intelligently.

    .. deprecated:: analysis layer
        Constructing without ``cause=`` is deprecated (and flagged by lint
        rule ``RL001`` inside this repo).  Legacy callers get the cause
        default-classified from the exception type via
        :func:`repro.txctl.causes.classify` plus a ``DeprecationWarning``;
        new code must stamp the cause at the raise site.
    """

    def __init__(self, reason: str, vid: int = 0, addr: int = -1,
                 cause=None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.vid = vid
        self.addr = addr
        if cause is None:
            from .txctl.causes import classify  # lint-ok: RL005 (txctl.causes imports this module for the classify fallback; a top-level import would cycle)
            warnings.warn(
                f"{type(self).__name__} raised without cause=; stamp an "
                "AbortCause at the raise site (default-classifying from "
                "the exception type for now)",
                DeprecationWarning, stacklevel=2)
            # classify() inspects self.cause (still unset -> falls through
            # to the type-based default) exactly like the legacy fallback.
            cause = classify(self)
        #: :class:`~repro.txctl.causes.AbortCause` stamped at the raise
        #: site (or default-classified, with a warning, for legacy sites).
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MisspeculationError(vid={self.vid}, addr=0x{self.addr:x}, {self.reason!r})"


class SpeculativeOverflowError(MisspeculationError):
    """A speculative line that may not leave the cache hierarchy was evicted.

    Section 5.4: only ``S-O`` versions with ``modVID == 0`` may overflow to
    main memory; selecting any other speculative version as an LLC victim
    forces an abort.
    """


class ProtocolError(ReproError):
    """An internal invariant of the coherence protocol was violated.

    These indicate simulator bugs (e.g. two versions hitting one VID), not
    program misspeculation, and are never caught by recovery code.
    """


class TransactionUsageError(ReproError):
    """The HMTX ISA was used incorrectly (e.g. out-of-order commit)."""


class LivelockError(ReproError):
    """Abort recovery made no headway and no fallback was available.

    Raised by the contention manager only when the serial fallback is
    explicitly disabled — with the fallback enabled, livelock escalates
    into guaranteed-progress serial execution instead of an exception.
    Carries the last-aborting VID and the recovery count so the failure
    is diagnosable from the message alone.
    """

    def __init__(self, vid: int, recoveries: int,
                 detail: str = "") -> None:
        message = (f"abort livelock: VID {vid} still aborting after "
                   f"{recoveries} recoveries")
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.vid = vid
        self.recoveries = recoveries
