"""Reproduction of "Hardware Multithreaded Transactions" (ASPLOS 2018).

This package implements, in simulation, the HMTX system of Fix et al.:
a hardware transactional-memory design in which a single transaction may
span multiple threads (multithreaded transactions, MTXs), enabling
speculative pipeline parallelism (DSWP / PS-DSWP).

Layering (bottom up):

``repro.coherence``
    Versioned snoopy-MOESI cache hierarchy with the HMTX speculative
    states, lazy commit/abort, VID reset and overflow handling.
``repro.cpu``
    Core timing model, branch predictor (drives the SLA mechanism) and
    interrupt injection.
``repro.core``
    The HMTX programming interface: ``beginMTX`` / ``commitMTX`` /
    ``abortMTX`` / ``initMTX`` plus speculative loads and stores.
``repro.runtime``
    Discrete-event multicore scheduler and the parallel execution
    paradigms (Sequential, DOALL, DOACROSS, DSWP, PS-DSWP).
``repro.smtx``
    The software-MTX baseline the paper compares against.
``repro.workloads``
    Models of the paper's 8 benchmarks.
``repro.power``
    McPAT/CACTI-style area, power and energy model (Table 3).
``repro.experiments``
    Drivers that regenerate every table and figure of the evaluation.
"""

__version__ = "1.0.0"

from .errors import (
    MisspeculationError,
    ProtocolError,
    ReproError,
    SpeculativeOverflowError,
    TransactionUsageError,
)

__all__ = [
    "MisspeculationError",
    "ProtocolError",
    "ReproError",
    "SpeculativeOverflowError",
    "TransactionUsageError",
    "__version__",
]
