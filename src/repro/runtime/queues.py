"""Timestamped inter-thread queues for pipeline parallelism.

DSWP threads communicate through produce/consume queues (Figure 3's
``produceVID``/``consumeVID``).  Each entry carries the simulated time at
which it becomes visible to consumers — the producer's clock plus the
one-way inter-core latency — which is how the timing model captures the key
performance property of section 2.1: pipeline paradigms pay inter-core
latency only at pipeline fill, while DOACROSS pays it on every iteration's
critical path.

Queues are **bounded** (default 16 entries), like real DSWP software
queues.  Back-pressure matters to HMTX beyond realism: it caps how far the
pipeline's first stage can run ahead, and therefore how many live versions
of a hot forwarded line (Figure 3's ``producedNode``) coexist in one cache
set.  An unbounded run-ahead of ~2^m transactions would overflow the set
and force spurious aborts (section 5.4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Tuple

DEFAULT_QUEUE_CAPACITY = 16


@dataclass
class QueueEntry:
    value: Any
    ready_time: int


@dataclass
class TimedQueue:
    """A bounded FIFO whose entries appear ``latency`` cycles after produce."""

    name: str
    latency: int = 40
    capacity: Optional[int] = DEFAULT_QUEUE_CAPACITY
    _entries: Deque[QueueEntry] = field(default_factory=deque, init=False)
    produced: int = field(default=0, init=False)
    consumed: int = field(default=0, init=False)
    #: Consumer clock at the most recent pop (used to time unblocked
    #: producers that were waiting for space).
    last_pop_time: int = field(default=0, init=False)

    def full(self) -> bool:
        return self.capacity is not None and len(self._entries) >= self.capacity

    def produce(self, value: Any, now: int) -> None:
        """Append an entry (caller must have checked :meth:`full`)."""
        self.produced += 1
        self._entries.append(QueueEntry(value, now + self.latency))

    def try_consume(self, now: int) -> Optional[Tuple[Any, int]]:
        """Pop the head entry if one exists.

        Returns ``(value, time_of_availability)``; the consumer's clock
        advances to ``max(now, time_of_availability)``.  Returns ``None``
        when the queue is empty (the consumer blocks).
        """
        if not self._entries:
            return None
        entry = self._entries.popleft()
        self.consumed += 1
        self.last_pop_time = max(self.last_pop_time, now, entry.ready_time)
        return entry.value, entry.ready_time

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all in-flight entries (abort recovery)."""
        self._entries.clear()


class QueueSet:
    """Named queues shared by the threads of one parallel run."""

    def __init__(self, latency: int = 40,
                 capacity: Optional[int] = DEFAULT_QUEUE_CAPACITY) -> None:
        self.latency = latency
        self.capacity = capacity
        self._queues: Dict[str, TimedQueue] = {}

    def get(self, name: str) -> TimedQueue:
        if name not in self._queues:
            self._queues[name] = TimedQueue(name, latency=self.latency,
                                            capacity=self.capacity)
        return self._queues[name]

    def clear_all(self) -> None:
        for queue in self._queues.values():
            queue.clear()
