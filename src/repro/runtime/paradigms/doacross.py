"""DOACROSS — the loop carry crosses cores every iteration (Figure 1b)."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ...backends import TMBackend
from ...core.config import MachineConfig
from ...cpu.core_model import CoreExecutor
from ...cpu.interrupts import InterruptInjector
from ...cpu.isa import BeginMTX, CommitMTX, Consume, Produce
from ...txctl import ContentionManager
from ...workloads.base import Workload
from .base import (
    ParadigmResult,
    Program,
    build_result,
    fresh_system,
    make_scheduler,
    run_with_recovery,
    wait_commit_turn,
    wait_for_epoch,
)
from .registry import register_paradigm


@register_paradigm("DOACROSS")
def run_doacross(workload: Workload, config: Optional[MachineConfig] = None,
                 workers: Optional[int] = None,
                 interrupts: Optional[InterruptInjector] = None,
                 sla_enabled: bool = True,
                 executor_factory: Optional[Callable[[TMBackend], CoreExecutor]] = None,
                 system_factory: Optional[Callable[[], TMBackend]] = None,
                 manager: Optional[ContentionManager] = None,
                 backend: Optional[str] = None,
                 ) -> ParadigmResult:
    """Speculative DOACROSS: the carry crosses cores every iteration.

    Thread ``i % workers`` runs the *whole* body of iteration ``i``,
    receiving the loop-carried register state from the previous iteration's
    thread through a timed queue — inter-core latency lands on every
    iteration's critical path (Figure 1b, section 2.1).
    """
    system = fresh_system(config, sla_enabled,
                          system_factory=system_factory, backend=backend)
    workload.setup(system)
    workers = workers or system.config.num_cores
    max_vid = system.vid_space.max_vid

    def carry_queue(iteration: int) -> str:
        return f"carry[{iteration % workers}]"

    def worker(widx: int, start: int, serial: bool) -> Program:
        first = start + (widx - start) % workers
        for i in range(first, workload.iterations, workers):
            if i == start:
                carry = (workload.recover_carry(system, i) if start
                         else workload.initial_carry(system))
            else:
                carry = yield Consume(carry_queue(i))
            epoch, vid0 = divmod(i, max_vid)
            vid = vid0 + 1
            yield from wait_for_epoch(system, epoch)
            if serial:
                yield from wait_commit_turn(system, vid)
            yield BeginMTX(vid)
            carry = yield from workload.sequential_iteration(i, carry)
            yield BeginMTX(0)
            if i + 1 < workload.iterations:
                yield Produce(carry_queue(i + 1), carry)
            yield from wait_commit_turn(system, vid)
            yield CommitMTX(vid)

    def build(start: int = 0, serial: bool = False) -> Dict[int, Program]:
        return {w: worker(w, start, serial) for w in range(workers)}

    scheduler = make_scheduler(system, interrupts, executor_factory)
    for w, program in build().items():
        scheduler.add_thread(w, core=scheduler.place_core(w), program=program)
    outcome = run_with_recovery(
        scheduler, system, workload,
        lambda serial=False: build(system.stats.committed, serial),
        manager=manager)
    return build_result(workload, "DOACROSS", system, scheduler, outcome)
