"""Paradigm registry: named entry points for every execution model.

Each paradigm module registers its runner at import time with
:func:`register_paradigm`; :func:`run_workload` dispatches on the Table 1
paradigm name.  New paradigms plug in the same way backends do — register
a runner and every driver, sweep spec, and CLI flag that takes a paradigm
name picks it up.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ...core.config import MachineConfig
from ...workloads.base import Workload
from .base import ParadigmResult

ParadigmRunner = Callable[..., ParadigmResult]

PARADIGMS: Dict[str, ParadigmRunner] = {}

#: Paradigms that never speculate: speculation-only keywords
#: (``sla_enabled``, ``manager``) are stripped before dispatch.
_NON_SPECULATIVE = {"Sequential"}


def register_paradigm(name: str,
                      speculative: bool = True,
                      ) -> Callable[[ParadigmRunner], ParadigmRunner]:
    """Class-less plugin hook: ``@register_paradigm("DOALL")``."""

    def decorate(runner: ParadigmRunner) -> ParadigmRunner:
        PARADIGMS[name] = runner
        if not speculative:
            _NON_SPECULATIVE.add(name)
        return runner

    return decorate


def get_paradigm(name: str) -> ParadigmRunner:
    if name not in PARADIGMS:
        raise ValueError(f"unknown paradigm {name!r}; "
                         f"choose from {sorted(PARADIGMS)}")
    return PARADIGMS[name]


def paradigm_names() -> Tuple[str, ...]:
    return tuple(sorted(PARADIGMS))


def run_workload(workload: Workload, config: Optional[MachineConfig] = None,
                 paradigm: Optional[str] = None, **kwargs) -> ParadigmResult:
    """Run ``workload`` under ``paradigm`` (default: its Table 1 paradigm)."""
    name = paradigm or workload.paradigm
    runner = get_paradigm(name)
    if name in _NON_SPECULATIVE:
        kwargs.pop("sla_enabled", None)
        kwargs.pop("manager", None)
    return runner(workload, config, **kwargs)
