"""DSWP — two-thread pipeline (Figure 1c), a PS-DSWP degenerate case."""

from __future__ import annotations

from typing import Optional

from ...core.config import MachineConfig
from ...workloads.base import Workload
from .base import ParadigmResult
from .ps_dswp import run_ps_dswp
from .registry import register_paradigm


@register_paradigm("DSWP")
def run_dswp(workload: Workload, config: Optional[MachineConfig] = None,
             **kwargs) -> ParadigmResult:
    """Two-thread DSWP (Figure 1c): PS-DSWP with a single stage-2 worker."""
    return run_ps_dswp(workload, config, stage2_workers=1, **kwargs)
