"""Parallel execution paradigms: Sequential, DOALL, DOACROSS, DSWP, PS-DSWP.

These executors compose a workload's loop-body fragments with MTX
transaction management, reproducing the execution models of Figure 1:

* **Sequential** — one thread, no speculation (the baseline).
* **DOALL** — iterations run fully independently on k threads; each
  iteration is a single-threaded transaction, committed in order (TLS).
* **DOACROSS** — iterations round-robin across k threads; the loop-carried
  value crosses cores *every iteration*, putting inter-core latency on the
  critical path (Figure 1b).
* **DSWP** — the body is split into two pipeline stages on two threads;
  each iteration is a *multithreaded transaction* spanning both.  The
  loop-carried dependence stays inside stage 1, so inter-core latency is
  paid only at pipeline fill (Figure 1c).
* **PS-DSWP** — DSWP whose second (iteration-independent) stage is
  replicated across k-1 worker threads (Figure 1d).

The package splits along the natural seams: :mod:`.base` holds the shared
executor plumbing (backend construction, the section 4.6 VID-overflow
protocol, abort recovery, result assembly), :mod:`.registry` the paradigm
name → runner dispatch, and one module per paradigm holds that paradigm's
loop structure.  Executors are written against the
:class:`~repro.backends.TMBackend` protocol, so any registered backend
(``hmtx``, ``smtx``, ``oracle``, …) runs under every paradigm via the
``backend=`` / ``system_factory=`` keywords.
"""

from .base import (  # noqa: F401
    ParadigmResult,
    Program,
    RecoveryOutcome,
    allocate_vid_with_stall,
    build_result,
    fresh_system,
    make_scheduler,
    run_serial_fallback,
    run_with_recovery,
    wait_commit_turn,
    wait_for_epoch,
)
from .registry import (  # noqa: F401
    PARADIGMS,
    ParadigmRunner,
    get_paradigm,
    paradigm_names,
    register_paradigm,
    run_workload,
)
from .sequential import run_sequential  # noqa: F401
from .doall import run_doall  # noqa: F401
from .doacross import run_doacross  # noqa: F401
from .ps_dswp import run_ps_dswp  # noqa: F401
from .dswp import run_dswp  # noqa: F401

# Legacy aliases from the pre-package module, kept for old call sites.
_PARADIGMS = PARADIGMS
_fresh_system = fresh_system
_make_scheduler = make_scheduler
_allocate_vid_with_stall = allocate_vid_with_stall
_wait_for_epoch = wait_for_epoch
_wait_commit_turn = wait_commit_turn
_run_serial_fallback = run_serial_fallback
_run_with_recovery = run_with_recovery
_result = build_result

__all__ = [
    "PARADIGMS",
    "ParadigmResult",
    "ParadigmRunner",
    "Program",
    "RecoveryOutcome",
    "allocate_vid_with_stall",
    "build_result",
    "fresh_system",
    "get_paradigm",
    "make_scheduler",
    "paradigm_names",
    "register_paradigm",
    "run_doacross",
    "run_doall",
    "run_dswp",
    "run_ps_dswp",
    "run_sequential",
    "run_serial_fallback",
    "run_with_recovery",
    "run_workload",
    "wait_commit_turn",
    "wait_for_epoch",
]
