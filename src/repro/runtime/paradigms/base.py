"""Shared executor plumbing: backends, VID overflow, recovery, results.

Everything a paradigm executor needs beyond its own loop structure lives
here, written against the :class:`~repro.backends.TMBackend` protocol —
no executor names a concrete system class:

* backend construction (:func:`fresh_system` resolves a registry name or
  an explicit factory),
* the section 4.6 VID-overflow protocol (:func:`allocate_vid_with_stall`,
  :func:`wait_for_epoch`) and in-order commit spinning
  (:func:`wait_commit_turn`),
* abort recovery (:func:`run_with_recovery`): every abort is classified
  and handed to a :class:`~repro.txctl.manager.ContentionManager`, which
  chooses speculative retry, machine-wide backoff, serialised retry, or
  the non-speculative serial fallback,
* result assembly (:class:`ParadigmResult`, :func:`build_result`).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ...backends import TMBackend, get_backend
from ...coherence.vid import VidExhaustedError
from ...core.config import MachineConfig
from ...cpu.core_model import CoreExecutor
from ...cpu.interrupts import InterruptInjector
from ...cpu.isa import Op, Work
from ...errors import MisspeculationError
from ...obs import hooks as _obs
from ...txctl import Action, ContentionManager, SerialFallback
from ...workloads.base import Workload
from ..scheduler import RunResult, Scheduler

Program = Generator[Op, Any, None]

#: Cycles burnt per poll while stalled (VID exhaustion, commit ordering).
_SPIN_COST = 4
#: Shared spin-op singleton: spin loops yield this op thousands of
#: times while waiting, so per-yield construction is pure overhead
#: (ops are immutable value objects).
_SPIN_OP = Work(_SPIN_COST)
#: How many uncommitted transactions one worker keeps open at once (the
#: paper allows many per core; bounding it caps VID-window and cache-set
#: version pressure, like the bounded DSWP queues).
_MAX_OPEN_TX_PER_CORE = 4
#: System-wide cap on live (begun, uncommitted) transactions.  Every live
#: transaction can pin one version of a hot forwarded line (Figure 3's
#: ``producedNode``) in a single cache set; with an 8-way L1 over a 32-way
#: L2, more than ~24 live versions of one line cannot all stay cached and
#: eviction past the LLC aborts (section 5.4).  Real deployments impose the
#: same throttle through bounded queues and finite VID windows.
_MAX_LIVE_TRANSACTIONS = 20


@dataclass
class ParadigmResult:
    """Outcome of one parallelised hot-loop run."""

    workload: str
    paradigm: str
    cycles: int
    system: TMBackend
    run: RunResult
    recoveries: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        return self.system.stats.committed


def fresh_system(config: Optional[MachineConfig], sla_enabled: bool,
                 system_factory: Optional[Callable[[], TMBackend]] = None,
                 backend: Optional[str] = None) -> TMBackend:
    """Build the backend a run executes on.

    ``system_factory`` wins when given; otherwise ``backend`` names a
    registry entry (default ``"hmtx"``).  ``sla_enabled`` is forwarded
    only to factories that take it (SLAs are an HMTX-hardware concern).

    This is the universal construction choke point — every paradigm and
    every backend funnels through it — so it doubles as the observability
    attach site: when an :mod:`repro.obs` session is active, the freshly
    built system is handed to it before any instruction executes.
    """
    if system_factory is not None:
        system = system_factory()
    else:
        factory = get_backend(backend or "hmtx")
        kwargs: Dict[str, Any] = {"config": config}
        if "sla_enabled" in inspect.signature(factory).parameters:
            kwargs["sla_enabled"] = sla_enabled
        system = factory(**kwargs)
    if _obs.active is not None:
        _obs.active.attach_system(system)
    return system


def make_scheduler(system: TMBackend,
                   interrupts: Optional[InterruptInjector],
                   executor_factory: Optional[Callable[[TMBackend], CoreExecutor]],
                   ) -> Scheduler:
    executor = executor_factory(system) if executor_factory else None
    scheduler = Scheduler(system, executor=executor, interrupts=interrupts)
    if _obs.active is not None:
        _obs.active.attach_scheduler(scheduler)
    return scheduler


# ----------------------------------------------------------------------
# VID-overflow protocol (section 4.6) and commit ordering (section 4.4)
# ----------------------------------------------------------------------

def allocate_vid_with_stall(system: TMBackend) -> Program:
    """Allocate the next VID, spinning through the 4.6 overflow protocol.

    Yields stall ops while the VID space is exhausted; performs the VID
    reset once every outstanding transaction has committed.  The generator's
    return value is the fresh VID.

    The spin ops are plain :class:`~repro.cpu.isa.Work` — indistinguishable
    from useful work at the executor — so when an observability session is
    active the loop additionally counts its polls and retags them as
    VID-reset quiesce time on exit.  The untraced branch is the original
    loop verbatim: identical op stream, zero overhead.
    """
    obs = _obs.active
    if obs is None:
        while True:
            try:
                return system.allocate_vid()
            except VidExhaustedError:
                if system.ready_for_vid_reset():
                    yield Work(system.vid_reset())
                else:
                    yield _SPIN_OP
    spins = 0
    while True:
        try:
            vid = system.allocate_vid()
            if spins:
                obs.record_spin("vid_reset", vid, spins)
            return vid
        except VidExhaustedError:
            spins += 1
            if system.ready_for_vid_reset():
                yield Work(system.vid_reset())
            else:
                yield _SPIN_OP


def wait_for_epoch(system: TMBackend, epoch: int) -> Program:
    """Block until the VID space has been recycled ``epoch`` times.

    Used by the statically-VID-mapped paradigms (DOALL/DOACROSS): epoch ``e``
    may start only after all ``max_vid`` transactions of epoch ``e - 1``
    committed and one thread performed the reset.
    """
    obs = _obs.active
    max_vid = system.vid_space.max_vid
    if obs is None:
        while system.vid_space.resets < epoch:
            done_epochs = system.vid_space.resets + 1
            if system.stats.committed >= done_epochs * max_vid \
                    and not system.active_vids:
                yield Work(system.vid_reset())
            else:
                yield _SPIN_OP
        return
    spins = 0
    while system.vid_space.resets < epoch:
        spins += 1
        done_epochs = system.vid_space.resets + 1
        if system.stats.committed >= done_epochs * max_vid \
                and not system.active_vids:
            yield Work(system.vid_reset())
        else:
            yield _SPIN_OP
    if spins:
        obs.record_spin("vid_reset", 0, spins)


def wait_commit_turn(system: TMBackend, vid: int) -> Program:
    """Spin until ``vid - 1`` has committed (in-order commit contract)."""
    obs = _obs.active
    if obs is None:
        while system.last_committed != vid - 1:
            yield _SPIN_OP
        return
    spins = 0
    while system.last_committed != vid - 1:
        spins += 1
        yield _SPIN_OP
    if spins:
        obs.record_spin("commit_stall", vid, spins)


# ----------------------------------------------------------------------
# Abort recovery (contention-manager escalation ladder)
# ----------------------------------------------------------------------

@dataclass
class RecoveryOutcome:
    """How one speculative run's abort recovery played out."""

    recoveries: int = 0
    serialized: bool = False
    fallback: bool = False


def run_serial_fallback(scheduler: Scheduler, system: TMBackend,
                        workload: Workload,
                        manager: ContentionManager) -> None:
    """Execute the remaining iterations non-speculatively (txctl fallback).

    The triggering abort already rolled every cache back to the last
    committed state, so one thread re-runs iterations
    ``committed..iterations`` at VID 0 under the global fallback lock
    while every other thread parks — guaranteed forward progress with MTX
    atomicity intact (nothing speculative runs concurrently).
    """
    fallback = manager.fallback
    assert fallback is not None
    lock_tid = scheduler.threads[0].tid
    programs: Dict[int, Program] = {
        lock_tid: fallback.program(system, workload, tid=lock_tid,
                                   stats=manager.stats)}
    for thread in scheduler.threads[1:]:
        programs[thread.tid] = SerialFallback.idle_program()
    scheduler.queues.clear_all()
    scheduler.replace_programs(programs)
    scheduler.run()


def run_with_recovery(scheduler: Scheduler, system: TMBackend,
                      workload: Workload,
                      rebuild: Callable[..., Dict[int, Program]],
                      manager: Optional[ContentionManager] = None,
                      ) -> RecoveryOutcome:
    """Drive the scheduler, restarting from committed state on aborts.

    ``rebuild(serial=...)`` must produce fresh per-thread programs resuming
    at iteration ``system.stats.committed`` (the abort already rolled all
    speculative memory back to the last committed state).

    Every abort is classified and handed to the
    :class:`~repro.txctl.manager.ContentionManager`, which decides the
    next attempt: speculative retry (optionally after a machine-wide
    backoff stall), serialised retry (one transaction in flight — makes
    conflicts, and without SLAs wrong-path false aborts, impossible), or
    the non-speculative serial fallback (guaranteed progress even for
    transactions that can never fit the cache hierarchy).  Livelock
    escalates down that ladder instead of raising;
    :class:`~repro.errors.LivelockError` is reserved for managers whose
    fallback is explicitly disabled.
    """
    manager = (manager or ContentionManager()).bind(system)
    while True:
        try:
            scheduler.run()
            return RecoveryOutcome(manager.recoveries, manager.serialized,
                                   manager.fallback_taken)
        except MisspeculationError as exc:
            decision = manager.on_abort(exc, committed=system.stats.committed)
            if decision.action is Action.FALLBACK:
                run_serial_fallback(scheduler, system, workload, manager)
                return RecoveryOutcome(manager.recoveries,
                                       manager.serialized, True)
            if decision.delay:
                scheduler.stall_all(decision.delay)
            scheduler.queues.clear_all()
            serial = decision.action is Action.SERIALIZE
            scheduler.replace_programs(rebuild(serial=serial))


def build_result(workload: Workload, paradigm: str, system: TMBackend,
                 scheduler: Scheduler,
                 outcome: Optional[RecoveryOutcome] = None) -> ParadigmResult:
    outcome = outcome or RecoveryOutcome()
    thread_clocks = {t.tid: t.clock for t in scheduler.threads}
    cycles = max(thread_clocks.values())
    run = RunResult(cycles, thread_clocks, {},
                    sum(t.ops_executed for t in scheduler.threads))
    result = ParadigmResult(workload.name, paradigm, cycles, system, run,
                            outcome.recoveries)
    result.extra["exec_stats"] = scheduler.executor.stats
    result.extra["degraded_serial"] = outcome.serialized
    result.extra["serial_fallback"] = outcome.fallback
    result.extra["contention"] = system.stats.contention
    return result
