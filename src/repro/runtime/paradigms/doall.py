"""DOALL — TLS-style: one single-threaded transaction per iteration."""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional

from ...backends import TMBackend
from ...core.config import MachineConfig
from ...cpu.core_model import CoreExecutor
from ...cpu.interrupts import InterruptInjector
from ...cpu.isa import BeginMTX, CommitMTX, Work
from ...txctl import ContentionManager
from ...workloads.base import Workload
from . import base
from .base import (
    _SPIN_COST,
    _SPIN_OP,
    ParadigmResult,
    Program,
    build_result,
    fresh_system,
    make_scheduler,
    run_with_recovery,
    wait_commit_turn,
    wait_for_epoch,
)
from .registry import register_paradigm


@register_paradigm("DOALL")
def run_doall(workload: Workload, config: Optional[MachineConfig] = None,
              workers: Optional[int] = None,
              interrupts: Optional[InterruptInjector] = None,
              sla_enabled: bool = True,
              executor_factory: Optional[Callable[[TMBackend], CoreExecutor]] = None,
              system_factory: Optional[Callable[[], TMBackend]] = None,
              manager: Optional[ContentionManager] = None,
              backend: Optional[str] = None,
              ) -> ParadigmResult:
    """Speculative DOALL: iteration ``i`` runs on thread ``i % workers``.

    VIDs are assigned statically in iteration order
    (``vid = i % max_vid + 1``); commits are made in order by spinning on
    the commit turn, and epochs recycle the VID space.
    """
    system = fresh_system(config, sla_enabled,
                          system_factory=system_factory, backend=backend)
    workload.setup(system)
    workers = workers or system.config.num_cores
    max_vid = system.vid_space.max_vid

    def worker(widx: int, start: int, serial: bool) -> Program:
        # Run iteration bodies eagerly (several uncommitted transactions
        # may live on one core); epilogue + commit happen in VID order.
        # In serial (degraded) mode each body waits for its commit turn
        # before starting, so only one transaction is ever in flight.
        pending = deque()
        todo = [i for i in range(start, workload.iterations)
                if i % workers == widx]
        cursor = 0
        while cursor < len(todo) or pending:
            if pending and system.last_committed == pending[0][1] - 1:
                i, vid = pending.popleft()
                yield BeginMTX(vid)
                yield from workload.stage2_epilogue(i)
                yield CommitMTX(vid)
                continue
            if cursor < len(todo) and len(pending) < base._MAX_OPEN_TX_PER_CORE:
                i = todo[cursor]
                epoch, vid0 = divmod(i, max_vid)
                vid = vid0 + 1
                if system.vid_space.resets < epoch and pending:
                    # Cannot cross an epoch boundary with open transactions.
                    yield _SPIN_OP
                    continue
                yield from wait_for_epoch(system, epoch)
                if serial:
                    yield from wait_commit_turn(system, vid)
                yield BeginMTX(vid)
                yield from workload.doall_iteration(i)
                yield BeginMTX(0)
                pending.append((i, vid))
                cursor += 1
                continue
            yield _SPIN_OP

    def build(start: int = 0, serial: bool = False) -> Dict[int, Program]:
        return {w: worker(w, start, serial) for w in range(workers)}

    scheduler = make_scheduler(system, interrupts, executor_factory)
    for w, program in build().items():
        scheduler.add_thread(w, core=scheduler.place_core(w), program=program)
    outcome = run_with_recovery(
        scheduler, system, workload,
        lambda serial=False: build(system.stats.committed, serial),
        manager=manager)
    return build_result(workload, "DOALL", system, scheduler, outcome)
