"""Sequential — one thread, no speculation (the baseline)."""

from __future__ import annotations

from typing import Callable, Optional

from ...backends import TMBackend
from ...core.config import MachineConfig
from ...cpu.core_model import CoreExecutor
from ...cpu.interrupts import InterruptInjector
from ...workloads.base import Workload
from .base import ParadigmResult, Program, fresh_system, make_scheduler
from .registry import register_paradigm


@register_paradigm("Sequential", speculative=False)
def run_sequential(workload: Workload, config: Optional[MachineConfig] = None,
                   interrupts: Optional[InterruptInjector] = None,
                   executor_factory: Optional[Callable[[TMBackend], CoreExecutor]] = None,
                   system_factory: Optional[Callable[[], TMBackend]] = None,
                   backend: Optional[str] = None,
                   ) -> ParadigmResult:
    """Run the hot loop on one core without speculation (the baseline)."""
    system = fresh_system(config, sla_enabled=True,
                          system_factory=system_factory, backend=backend)
    workload.setup(system)

    def program() -> Program:
        carry = workload.initial_carry(system)
        for i in range(workload.iterations):
            carry = yield from workload.sequential_iteration(i, carry)

    scheduler = make_scheduler(system, interrupts, executor_factory)
    scheduler.add_thread(0, core=0, program=program())
    run = scheduler.run()
    result = ParadigmResult(workload.name, "Sequential", run.makespan, system, run)
    result.extra["exec_stats"] = scheduler.executor.stats
    return result
