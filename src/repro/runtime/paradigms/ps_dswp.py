"""DSWP / PS-DSWP — multithreaded transactions across pipeline stages."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ...backends import TMBackend
from ...core.config import MachineConfig
from ...cpu.core_model import CoreExecutor
from ...cpu.interrupts import InterruptInjector
from ...cpu.isa import BeginMTX, CommitMTX, Consume, Produce, Work
from ...txctl import ContentionManager
from ...workloads.base import Workload
from . import base
from .base import (
    _SPIN_COST,
    _SPIN_OP,
    ParadigmResult,
    Program,
    allocate_vid_with_stall,
    build_result,
    fresh_system,
    make_scheduler,
    run_with_recovery,
    wait_commit_turn,
)
from .registry import register_paradigm


@register_paradigm("PS-DSWP")
def run_ps_dswp(workload: Workload, config: Optional[MachineConfig] = None,
                stage2_workers: Optional[int] = None,
                interrupts: Optional[InterruptInjector] = None,
                sla_enabled: bool = True,
                executor_factory: Optional[Callable[[TMBackend], CoreExecutor]] = None,
                system_factory: Optional[Callable[[], TMBackend]] = None,
                inline_commit: Optional[bool] = None,
                manager: Optional[ContentionManager] = None,
                backend: Optional[str] = None,
                ) -> ParadigmResult:
    """Speculative (PS-)DSWP over multithreaded transactions (Figure 3).

    Pipeline structure on N cores:

    * **stage 1** (1 thread) chases the loop-carried dependence, opening a
      new MTX per iteration and forwarding only the VID through a bounded
      queue; data flows to stage 2 through versioned memory (uncommitted
      value forwarding).
    * **stage 2** (``stage2_workers`` threads) runs the parallel bodies.
      Workers free-run: a core may hold several uncommitted transactions
      at once (the paper's second headline feature) — nobody stalls for a
      commit turn.
    * **stage 3** (1 thread) re-sequences completions, runs each
      iteration's ordered epilogue (in-order output emission) and issues
      the atomic group commit — the sequential tail stage of real DSWP
      pipelines.

    With ``stage2_workers == 1`` (or ``inline_commit=True``) workers run
    the epilogue + commit themselves once their commit turn arrives,
    instead of handing off to a stage-3 thread.
    """
    system = fresh_system(config, sla_enabled,
                          system_factory=system_factory, backend=backend)
    workload.setup(system)
    num_cores = system.config.num_cores
    if stage2_workers is None:
        stage2_workers = max(1, num_cores - 2)
    inline_commit = stage2_workers == 1
    paradigm = "DSWP" if inline_commit else "PS-DSWP"

    VID_QUEUE = "vids"
    DONE_QUEUE = "done"

    def stage1(start_iter: int, serial: bool) -> Program:
        carry = (workload.recover_carry(system, start_iter) if start_iter
                 else workload.initial_carry(system))
        window = 1 if serial else base._MAX_LIVE_TRANSACTIONS
        for i in range(start_iter, workload.iterations):
            while len(system.active_vids) >= window:
                yield _SPIN_OP
            vid = yield from allocate_vid_with_stall(system)
            yield BeginMTX(vid)
            carry = yield from workload.stage1_iteration(i, carry)
            yield BeginMTX(0)
            yield Produce(VID_QUEUE, (i, vid))
        for _ in range(stage2_workers):
            yield Produce(VID_QUEUE, None)

    def stage2(widx: int) -> Program:
        while True:
            token = yield Consume(VID_QUEUE)
            if token is None:
                if inline_commit:
                    return
                yield Produce(DONE_QUEUE, None)
                return
            i, vid = token
            yield BeginMTX(vid)
            yield from workload.stage2_iteration(i)
            if inline_commit:
                yield from wait_commit_turn(system, vid)
                yield from workload.stage2_epilogue(i)
                yield CommitMTX(vid)
            else:
                yield BeginMTX(0)
                yield Produce(DONE_QUEUE, (i, vid))

    def stage3(start_iter: int) -> Program:
        # Reorder completions back into original program order, then run
        # the ordered epilogue and group-commit each transaction.
        buffered: Dict[int, int] = {}
        sentinels = 0
        for i in range(start_iter, workload.iterations):
            while i not in buffered:
                token = yield Consume(DONE_QUEUE)
                if token is None:
                    sentinels += 1
                    continue
                buffered[token[0]] = token[1]
            vid = buffered.pop(i)
            yield BeginMTX(vid)
            yield from workload.stage2_epilogue(i)
            yield CommitMTX(vid)
        while sentinels < stage2_workers:
            token = yield Consume(DONE_QUEUE)
            if token is None:
                sentinels += 1

    def build(start_iter: int = 0, serial: bool = False) -> Dict[int, Program]:
        programs: Dict[int, Program] = {0: stage1(start_iter, serial)}
        for w in range(stage2_workers):
            programs[w + 1] = stage2(w)
        if not inline_commit:
            programs[stage2_workers + 1] = stage3(start_iter)
        return programs

    scheduler = make_scheduler(system, interrupts, executor_factory)
    for tid, program in build().items():
        scheduler.add_thread(tid, core=scheduler.place_core(tid), program=program)
    outcome = run_with_recovery(
        scheduler, system, workload,
        lambda serial=False: build(system.stats.committed, serial),
        manager=manager)
    return build_result(workload, paradigm, system, scheduler, outcome)
