"""Conservative discrete-event scheduler for the simulated multicore.

Threads are Python generators yielding :mod:`repro.cpu.isa` ops.  The
scheduler always advances the runnable thread with the smallest clock, so
memory operations reach the coherence protocol in (approximate) global time
order — the property the conflict-detection logic relies on.

Timing model:

* each core serialises the ops of the threads placed on it (no SMT);
* ``Produce``/``Consume`` go through :class:`~repro.runtime.queues.TimedQueue`
  with a one-way inter-core latency;
* a consumer blocking on an empty queue releases its core and resumes at
  ``max(own clock, producer clock + queue latency)``;
* an optional :class:`~repro.cpu.interrupts.InterruptInjector` charges
  handler time to whichever thread crossed the interrupt period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..cpu.core_model import CoreExecutor
from ..cpu.interrupts import InterruptInjector
from ..cpu.isa import Consume, Op, Produce
from ..errors import ReproError
from .queues import QueueSet

Program = Generator[Op, Any, None]


class DeadlockError(ReproError):
    """Every live thread is blocked on an empty queue."""


@dataclass
class ThreadHandle:
    tid: int
    core: int
    program: Program
    clock: int = 0
    done: bool = False
    #: Queue this thread is blocked consuming from (empty queue).
    blocked_on: Optional[str] = None
    #: (queue, value) this thread is blocked producing into (full queue).
    blocked_produce: Optional[tuple] = None
    #: Value to send into the generator at the next step.
    pending_value: Any = None
    ops_executed: int = 0


@dataclass
class RunResult:
    """Timing outcome of one scheduled run."""

    makespan: int
    thread_clocks: Dict[int, int]
    core_clocks: Dict[int, int]
    ops_executed: int

    @property
    def cycles(self) -> int:
        return self.makespan


class Scheduler:
    """Runs a set of thread programs to completion on the simulated machine."""

    def __init__(self, system, executor: Optional[CoreExecutor] = None,
                 queues: Optional[QueueSet] = None,
                 interrupts: Optional[InterruptInjector] = None,
                 max_steps: int = 50_000_000) -> None:
        self.system = system
        self.executor = executor or CoreExecutor(system)
        self.queues = queues or QueueSet(latency=system.config.queue_latency)
        self.interrupts = interrupts
        self.max_steps = max_steps
        self.threads: List[ThreadHandle] = []
        self._core_clock: Dict[int, int] = {}

    def add_thread(self, tid: int, core: int, program: Program,
                   start_clock: int = 0) -> ThreadHandle:
        """Register a thread; also registers its HMTX context."""
        self.system.thread(tid, core)
        handle = ThreadHandle(tid=tid, core=core, program=program,
                              clock=start_clock)
        self.threads.append(handle)
        self._core_clock.setdefault(core, 0)
        return handle

    def replace_programs(self, programs: Dict[int, Program]) -> None:
        """Swap in fresh generators (abort recovery), keeping clocks."""
        for thread in self.threads:
            if thread.tid in programs:
                thread.program = programs[thread.tid]
                thread.done = False
                thread.blocked_on = None
                thread.blocked_produce = None
                thread.pending_value = None

    def stall_all(self, cycles: int) -> None:
        """Advance every thread and core clock by ``cycles``.

        Models a machine-wide recovery stall — the contention manager's
        backoff delay between a transaction abort and the next speculative
        attempt.  Charging all clocks equally keeps relative thread timing
        (and therefore the conflict-detection interleaving) deterministic.
        """
        if cycles <= 0:
            return
        for thread in self.threads:
            thread.clock += cycles
        for core in self._core_clock:
            self._core_clock[core] += cycles

    def now(self) -> int:
        """The latest per-thread clock (current machine time)."""
        return max((t.clock for t in self.threads), default=0)

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Run until every thread's generator is exhausted.

        Raises :class:`~repro.errors.MisspeculationError` if speculation
        fails (callers implement recovery) and :class:`DeadlockError` if all
        live threads block on empty queues.
        """
        steps = 0
        max_steps = self.max_steps
        threads = self.threads
        queues = self.queues
        queue_op = self.system.config.op_costs.queue_op
        while True:
            # Fused sweep: unblock every thread whose queue became ready
            # (exactly what _collect_runnable does), while tracking the
            # runnable thread with the smallest (clock, tid) — one pass,
            # no intermediate lists.  This loop dominates simulator wall
            # time, hence the hand-tuning.
            best = None
            best_clock = 0
            best_tid = 0
            any_live = False
            for thread in threads:
                if thread.done:
                    continue
                any_live = True
                if thread.blocked_on is not None:
                    entry = queues.get(thread.blocked_on).try_consume(
                        thread.clock)
                    if entry is None:
                        continue
                    value, ready_time = entry
                    if ready_time > thread.clock:
                        thread.clock = ready_time
                    thread.clock += queue_op
                    thread.pending_value = value
                    thread.blocked_on = None
                elif thread.blocked_produce is not None:
                    queue_name, value = thread.blocked_produce
                    queue = queues.get(queue_name)
                    if queue.full():
                        continue
                    # Space appeared when a consumer popped; the producer's
                    # clock advances to that moment (back-pressure stall).
                    if queue.last_pop_time > thread.clock:
                        thread.clock = queue.last_pop_time
                    thread.clock += queue_op
                    queue.produce(value, thread.clock)
                    thread.blocked_produce = None
                clock = thread.clock
                if best is None or clock < best_clock or (
                        clock == best_clock and thread.tid < best_tid):
                    best = thread
                    best_clock = clock
                    best_tid = thread.tid
            if not any_live:
                break
            if best is None:
                live = [t.tid for t in self.threads if not t.done]
                raise DeadlockError(f"threads {live} all blocked on queues")
            self._step(best)
            steps += 1
            if steps > max_steps:
                raise ReproError(f"exceeded {max_steps} scheduler steps")
        thread_clocks = {t.tid: t.clock for t in self.threads}
        return RunResult(
            makespan=max(thread_clocks.values(), default=0),
            thread_clocks=thread_clocks,
            core_clocks=dict(self._core_clock),
            ops_executed=sum(t.ops_executed for t in self.threads),
        )

    # ------------------------------------------------------------------

    def _collect_runnable(self) -> Optional[List[ThreadHandle]]:
        """Unblock consumers whose queues filled; None when all are done.

        Reference implementation of the sweep that :meth:`run` fuses into
        its selection loop; kept for tests and interactive debugging.
        """
        live = [t for t in self.threads if not t.done]
        if not live:
            return None
        runnable = []
        for thread in live:
            if thread.blocked_on is not None:
                entry = self.queues.get(thread.blocked_on).try_consume(thread.clock)
                if entry is None:
                    continue
                value, ready_time = entry
                thread.clock = max(thread.clock, ready_time)
                thread.clock += self.system.config.op_costs.queue_op
                thread.pending_value = value
                thread.blocked_on = None
            elif thread.blocked_produce is not None:
                queue_name, value = thread.blocked_produce
                queue = self.queues.get(queue_name)
                if queue.full():
                    continue
                # Space appeared when a consumer popped; the producer's
                # clock advances to that moment (back-pressure stall).
                thread.clock = max(thread.clock, queue.last_pop_time)
                thread.clock += self.system.config.op_costs.queue_op
                queue.produce(value, thread.clock)
                thread.blocked_produce = None
            runnable.append(thread)
        return runnable

    def _step(self, thread: ThreadHandle) -> None:
        try:
            op = thread.program.send(thread.pending_value)
        except StopIteration:
            thread.done = True
            return
        thread.pending_value = None
        thread.ops_executed += 1
        cls = type(op)
        if cls is not Produce and cls is not Consume:
            # Hot path: plain core op — no queue interaction.
            core = thread.core
            core_clock = self._core_clock
            clock = thread.clock
            start = core_clock[core]
            if clock > start:
                start = clock
            value, latency = self.executor.execute(thread.tid, op, now=start)
            clock = start + latency
            if self.interrupts is not None:
                clock += self.interrupts.maybe_interrupt(
                    self.system, thread.tid, core, clock)
            thread.clock = clock
            core_clock[core] = clock
            thread.pending_value = value
            return
        if type(op) is Produce:
            queue = self.queues.get(op.queue)
            if queue.full():
                thread.blocked_produce = (op.queue, op.value)
                return
            start = max(thread.clock, self._core_clock[thread.core])
            thread.clock = start + self.system.config.op_costs.queue_op
            self._core_clock[thread.core] = thread.clock
            queue.produce(op.value, thread.clock)
            return
        # Consume (cls is Consume by elimination).
        entry = self.queues.get(op.queue).try_consume(thread.clock)
        if entry is None:
            thread.blocked_on = op.queue
            return
        value, ready_time = entry
        start = max(thread.clock, self._core_clock[thread.core], ready_time)
        thread.clock = start + self.system.config.op_costs.queue_op
        self._core_clock[thread.core] = thread.clock
        thread.pending_value = value
