"""Conservative discrete-event scheduler for the simulated multicore.

Threads are Python generators yielding :mod:`repro.cpu.isa` ops.  The
scheduler always advances the runnable thread with the smallest clock, so
memory operations reach the coherence protocol in (approximate) global time
order — the property the conflict-detection logic relies on.

Timing model:

* each core serialises the ops of the threads placed on it (no SMT);
* ``Produce``/``Consume`` go through :class:`~repro.runtime.queues.TimedQueue`
  with a one-way inter-core latency;
* a consumer blocking on an empty queue releases its core and resumes at
  ``max(own clock, producer clock + queue latency)``;
* an optional :class:`~repro.cpu.interrupts.InterruptInjector` charges
  handler time to whichever thread crossed the interrupt period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..cpu.core_model import CoreExecutor
from ..cpu.interrupts import InterruptInjector
from ..cpu.isa import Branch, Consume, Load, Op, Produce, Store, Work
from ..errors import ReproError
from ..topology import place_core
from .queues import QueueSet

Program = Generator[Op, Any, None]


class DeadlockError(ReproError):
    """Every live thread is blocked on an empty queue."""


class ThreadHandle:
    """One schedulable thread.

    A ``__slots__`` class (not a dataclass): the scheduler's selection
    sweep reads several attributes of every live thread per step, so
    attribute access cost is on the simulator's critical path.
    """

    __slots__ = ("tid", "core", "program", "clock", "done", "blocked_on",
                 "blocked_produce", "pending_value", "ops_executed")

    def __init__(self, tid: int, core: int, program: Program,
                 clock: int = 0, done: bool = False,
                 blocked_on: Optional[str] = None,
                 blocked_produce: Optional[tuple] = None,
                 pending_value: Any = None, ops_executed: int = 0) -> None:
        self.tid = tid
        self.core = core
        self.program = program
        self.clock = clock
        self.done = done
        #: Queue this thread is blocked consuming from (empty queue).
        self.blocked_on = blocked_on
        #: (queue, value) this thread is blocked producing into (full queue).
        self.blocked_produce = blocked_produce
        #: Value to send into the generator at the next step.
        self.pending_value = pending_value
        self.ops_executed = ops_executed

    def __repr__(self) -> str:
        return (f"ThreadHandle(tid={self.tid}, core={self.core}, "
                f"clock={self.clock}, done={self.done}, "
                f"blocked_on={self.blocked_on!r}, "
                f"blocked_produce={self.blocked_produce!r})")


@dataclass
class RunResult:
    """Timing outcome of one scheduled run."""

    makespan: int
    thread_clocks: Dict[int, int]
    core_clocks: Dict[int, int]
    ops_executed: int

    @property
    def cycles(self) -> int:
        return self.makespan


class Scheduler:
    """Runs a set of thread programs to completion on the simulated machine."""

    def __init__(self, system, executor: Optional[CoreExecutor] = None,
                 queues: Optional[QueueSet] = None,
                 interrupts: Optional[InterruptInjector] = None,
                 max_steps: int = 50_000_000) -> None:
        self.system = system
        self.executor = executor or CoreExecutor(system)
        self.queues = queues or QueueSet(latency=system.config.queue_latency)
        self.interrupts = interrupts
        self.max_steps = max_steps
        self.threads: List[ThreadHandle] = []
        self._core_clock: Dict[int, int] = {}
        if hasattr(system, "quiesce_cb"):
            # Late-bound on purpose: the obs session replaces
            # ``quiesce_all`` in the instance dict, and the callback must
            # go through that wrapper to be attributed.
            system.quiesce_cb = lambda cycles: self.quiesce_all(cycles)

    def add_thread(self, tid: int, core: int, program: Program,
                   start_clock: int = 0) -> ThreadHandle:
        """Register a thread; also registers its HMTX context."""
        self.system.thread(tid, core)
        handle = ThreadHandle(tid=tid, core=core, program=program,
                              clock=start_clock)
        self.threads.append(handle)
        self._core_clock.setdefault(core, 0)
        return handle

    def place_core(self, index: int) -> int:
        """Core for the ``index``-th worker under the machine's placement.

        Paradigms route their worker→core mapping through here so the
        ``MachineConfig.placement`` knob (``pack``/``spread``) and the
        socket topology apply uniformly; on a flat machine this is the
        historical ``index % num_cores``.
        """
        config = self.system.config
        return place_core(index, config.num_cores,
                          getattr(config, "topology", None),
                          getattr(config, "placement", "pack"))

    def socket_of(self, core: int) -> int:
        """Socket owning ``core`` (0 on flat machines)."""
        topology = getattr(self.system.config, "topology", None)
        return 0 if topology is None else topology.socket_of_core(core)

    def replace_programs(self, programs: Dict[int, Program]) -> None:
        """Swap in fresh generators (abort recovery), keeping clocks."""
        for thread in self.threads:
            if thread.tid in programs:
                thread.program = programs[thread.tid]
                thread.done = False
                thread.blocked_on = None
                thread.blocked_produce = None
                thread.pending_value = None

    def stall_all(self, cycles: int) -> None:
        """Advance every thread and core clock by ``cycles``.

        Models a machine-wide recovery stall — the contention manager's
        backoff delay between a transaction abort and the next speculative
        attempt.  Charging all clocks equally keeps relative thread timing
        (and therefore the conflict-detection interleaving) deterministic.
        """
        if cycles <= 0:
            return
        for thread in self.threads:
            thread.clock += cycles
        for core in self._core_clock:
            self._core_clock[core] += cycles

    def quiesce_all(self, cycles: int) -> None:
        """Machine-wide quiesce barrier: the section 4.6 reset scrub.

        Same clock mechanics as :meth:`stall_all` (every thread and core
        advances together, so relative timing and conflict interleaving
        are untouched), but a separate entry point so the observability
        layer can attribute the stalled cycles to ``vid_reset`` rather
        than contention-manager backoff.  Installed on the system as
        ``quiesce_cb``: the reset is triggered from inside a thread's
        generator, which has no scheduler reference of its own.
        """
        if cycles <= 0:
            return
        for thread in self.threads:
            thread.clock += cycles
        for core in self._core_clock:
            self._core_clock[core] += cycles

    def now(self) -> int:
        """The latest per-thread clock (current machine time)."""
        return max((t.clock for t in self.threads), default=0)

    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Run until every thread's generator is exhausted.

        Raises :class:`~repro.errors.MisspeculationError` if speculation
        fails (callers implement recovery) and :class:`DeadlockError` if all
        live threads block on empty queues.
        """
        steps = 0
        max_steps = self.max_steps
        queues = self.queues
        queue_op = self.system.config.op_costs.queue_op
        core_clock = self._core_clock
        executor = self.executor
        execute = executor.execute
        interrupts = self.interrupts
        system = self.system
        # Observability (repro.obs) instruments runs by replacing _step /
        # executor.execute with instance-level wrappers; the fused step
        # below would bypass them, so instrumented runs keep the exact
        # per-step call sequence.
        instrumented = ("_step" in self.__dict__
                        or "execute" in executor.__dict__)
        # Work/Load/Store/Branch cover almost every op a workload yields;
        # they are fused below (exactly what CoreExecutor.execute does for
        # each class, without the dispatch) when the executor is a plain
        # CoreExecutor.  system.load/store are hoisted through the
        # instance, so an observability wrapper installed before the run
        # is still honoured.
        fuse_work = not instrumented and executor.__class__ is CoreExecutor
        estats = executor.stats
        epc = executor._pc
        work_unit = executor.costs.work_unit
        system_load = system.load
        system_store = system.store
        execute_branch = executor._execute_branch
        #: Threads not yet done — rebuilt when one finishes, so the sweep
        #: never rescans completed threads.
        live_threads = [t for t in self.threads if not t.done]
        while True:
            # Fused sweep: unblock every thread whose queue became ready
            # (exactly what _collect_runnable does), while tracking the
            # runnable thread with the smallest (clock, tid) — one pass,
            # no intermediate lists.  This loop dominates simulator wall
            # time, hence the hand-tuning.
            best = None
            # Sentinel larger than any reachable clock, so the selection
            # compare needs no ``best is None`` test per thread.
            best_clock = 0x7FFFFFFFFFFFFFFF
            best_tid = 0
            for thread in live_threads:
                if thread.blocked_on is not None:
                    entry = queues.get(thread.blocked_on).try_consume(
                        thread.clock)
                    if entry is None:
                        continue
                    value, ready_time = entry
                    if ready_time > thread.clock:
                        thread.clock = ready_time
                    thread.clock += queue_op
                    thread.pending_value = value
                    thread.blocked_on = None
                elif thread.blocked_produce is not None:
                    queue_name, value = thread.blocked_produce
                    queue = queues.get(queue_name)
                    if queue.full():
                        continue
                    # Space appeared when a consumer popped; the producer's
                    # clock advances to that moment (back-pressure stall).
                    if queue.last_pop_time > thread.clock:
                        thread.clock = queue.last_pop_time
                    thread.clock += queue_op
                    queue.produce(value, thread.clock)
                    thread.blocked_produce = None
                clock = thread.clock
                if clock < best_clock or (
                        clock == best_clock and thread.tid < best_tid):
                    best = thread
                    best_clock = clock
                    best_tid = thread.tid
            if not live_threads:
                break
            if best is None:
                live = [t.tid for t in self.threads if not t.done]
                raise DeadlockError(f"threads {live} all blocked on queues")
            # Inlined _step for the dominant plain-op case (same logic,
            # minus one call frame and the attribute reloads per step);
            # queue ops fall back to the shared helper.
            thread = best
            if instrumented:
                self._step(thread)
                if thread.done:
                    live_threads = [t for t in self.threads if not t.done]
                steps += 1
                if steps > max_steps:
                    raise ReproError(f"exceeded {max_steps} scheduler steps")
                continue
            try:
                op = thread.program.send(thread.pending_value)
            except StopIteration:
                thread.done = True
                live_threads = [t for t in self.threads if not t.done]
                op = None
            if op is not None:
                thread.pending_value = None
                thread.ops_executed += 1
                cls = op.__class__
                if fuse_work and cls is Work:
                    core = thread.core
                    start = core_clock[core]
                    if best_clock > start:
                        start = best_clock
                    cycles = op.cycles
                    estats.instructions += cycles if cycles > 1 else 1
                    epc[thread.tid] += 4
                    clock = start + cycles * work_unit
                    if interrupts is not None:
                        clock += interrupts.maybe_interrupt(
                            system, thread.tid, core, clock)
                    thread.clock = clock
                    core_clock[core] = clock
                    thread.pending_value = None
                elif fuse_work and cls is Load:
                    core = thread.core
                    start = core_clock[core]
                    if best_clock > start:
                        start = best_clock
                    estats.instructions += 1
                    estats.loads += 1
                    epc[thread.tid] += 4
                    result = system_load(thread.tid, op.addr, start)
                    clock = start + result.latency
                    if interrupts is not None:
                        clock += interrupts.maybe_interrupt(
                            system, thread.tid, core, clock)
                    thread.clock = clock
                    core_clock[core] = clock
                    thread.pending_value = result.value
                elif fuse_work and cls is Store:
                    core = thread.core
                    start = core_clock[core]
                    if best_clock > start:
                        start = best_clock
                    estats.instructions += 1
                    estats.stores += 1
                    epc[thread.tid] += 4
                    result = system_store(thread.tid, op.addr, op.value,
                                          start)
                    clock = start + result.latency
                    if interrupts is not None:
                        clock += interrupts.maybe_interrupt(
                            system, thread.tid, core, clock)
                    thread.clock = clock
                    core_clock[core] = clock
                    thread.pending_value = None
                elif fuse_work and cls is Branch:
                    core = thread.core
                    start = core_clock[core]
                    if best_clock > start:
                        start = best_clock
                    estats.instructions += 1
                    epc[thread.tid] += 4
                    clock = start + execute_branch(thread.tid, op)
                    if interrupts is not None:
                        clock += interrupts.maybe_interrupt(
                            system, thread.tid, core, clock)
                    thread.clock = clock
                    core_clock[core] = clock
                    thread.pending_value = None
                elif cls is not Produce and cls is not Consume:
                    core = thread.core
                    start = core_clock[core]
                    if best_clock > start:
                        start = best_clock
                    value, latency = execute(thread.tid, op, start)
                    clock = start + latency
                    if interrupts is not None:
                        clock += interrupts.maybe_interrupt(
                            system, thread.tid, core, clock)
                    thread.clock = clock
                    core_clock[core] = clock
                    thread.pending_value = value
                else:
                    self._queue_step(thread, op, cls)
            steps += 1
            if steps > max_steps:
                raise ReproError(f"exceeded {max_steps} scheduler steps")
        thread_clocks = {t.tid: t.clock for t in self.threads}
        return RunResult(
            makespan=max(thread_clocks.values(), default=0),
            thread_clocks=thread_clocks,
            core_clocks=dict(self._core_clock),
            ops_executed=sum(t.ops_executed for t in self.threads),
        )

    # ------------------------------------------------------------------

    def _collect_runnable(self) -> Optional[List[ThreadHandle]]:
        """Unblock consumers whose queues filled; None when all are done.

        Reference implementation of the sweep that :meth:`run` fuses into
        its selection loop; kept for tests and interactive debugging.
        """
        live = [t for t in self.threads if not t.done]
        if not live:
            return None
        runnable = []
        for thread in live:
            if thread.blocked_on is not None:
                entry = self.queues.get(thread.blocked_on).try_consume(thread.clock)
                if entry is None:
                    continue
                value, ready_time = entry
                thread.clock = max(thread.clock, ready_time)
                thread.clock += self.system.config.op_costs.queue_op
                thread.pending_value = value
                thread.blocked_on = None
            elif thread.blocked_produce is not None:
                queue_name, value = thread.blocked_produce
                queue = self.queues.get(queue_name)
                if queue.full():
                    continue
                # Space appeared when a consumer popped; the producer's
                # clock advances to that moment (back-pressure stall).
                thread.clock = max(thread.clock, queue.last_pop_time)
                thread.clock += self.system.config.op_costs.queue_op
                queue.produce(value, thread.clock)
                thread.blocked_produce = None
            runnable.append(thread)
        return runnable

    def _step(self, thread: ThreadHandle) -> None:
        try:
            op = thread.program.send(thread.pending_value)
        except StopIteration:
            thread.done = True
            return
        thread.pending_value = None
        thread.ops_executed += 1
        cls = type(op)
        if cls is not Produce and cls is not Consume:
            # Hot path: plain core op — no queue interaction.
            core = thread.core
            core_clock = self._core_clock
            clock = thread.clock
            start = core_clock[core]
            if clock > start:
                start = clock
            value, latency = self.executor.execute(thread.tid, op, now=start)
            clock = start + latency
            if self.interrupts is not None:
                clock += self.interrupts.maybe_interrupt(
                    self.system, thread.tid, core, clock)
            thread.clock = clock
            core_clock[core] = clock
            thread.pending_value = value
            return
        self._queue_step(thread, op, cls)

    def _queue_step(self, thread: ThreadHandle, op: Op, cls: type) -> None:
        """Produce/Consume handling shared by :meth:`run` and :meth:`_step`."""
        if cls is Produce:
            queue = self.queues.get(op.queue)
            if queue.full():
                thread.blocked_produce = (op.queue, op.value)
                return
            start = max(thread.clock, self._core_clock[thread.core])
            thread.clock = start + self.system.config.op_costs.queue_op
            self._core_clock[thread.core] = thread.clock
            queue.produce(op.value, thread.clock)
            return
        # Consume (cls is Consume by elimination).
        entry = self.queues.get(op.queue).try_consume(thread.clock)
        if entry is None:
            thread.blocked_on = op.queue
            return
        value, ready_time = entry
        start = max(thread.clock, self._core_clock[thread.core], ready_time)
        thread.clock = start + self.system.config.op_costs.queue_op
        self._core_clock[thread.core] = thread.clock
        thread.pending_value = value
