"""Parallel runtime: discrete-event scheduler, queues, execution paradigms."""

from .paradigms import (
    ParadigmResult,
    run_doacross,
    run_doall,
    run_dswp,
    run_ps_dswp,
    run_sequential,
    run_workload,
)
from .queues import QueueSet, TimedQueue
from .scheduler import DeadlockError, RunResult, Scheduler, ThreadHandle

__all__ = [
    "DeadlockError",
    "ParadigmResult",
    "QueueSet",
    "RunResult",
    "Scheduler",
    "ThreadHandle",
    "TimedQueue",
    "run_doacross",
    "run_doall",
    "run_dswp",
    "run_ps_dswp",
    "run_sequential",
    "run_workload",
]
