"""Parallel execution paradigms: Sequential, DOALL, DOACROSS, DSWP, PS-DSWP.

These executors compose a workload's loop-body fragments with HMTX
transaction management, reproducing the execution models of Figure 1:

* **Sequential** — one thread, no speculation (the baseline).
* **DOALL** — iterations run fully independently on k threads; each
  iteration is a single-threaded transaction, committed in order (TLS).
* **DOACROSS** — iterations round-robin across k threads; the loop-carried
  value crosses cores *every iteration*, putting inter-core latency on the
  critical path (Figure 1b).
* **DSWP** — the body is split into two pipeline stages on two threads;
  each iteration is a *multithreaded transaction* spanning both.  The
  loop-carried dependence stays inside stage 1, so inter-core latency is
  paid only at pipeline fill (Figure 1c).
* **PS-DSWP** — DSWP whose second (iteration-independent) stage is
  replicated across k-1 worker threads (Figure 1d).

All speculative paradigms also implement the section 4.6 VID-overflow
protocol (stall until the max VID commits, then reset) and abort recovery
(restart from the last committed iteration, recomputing register state from
committed memory).  Recovery decisions — retry, backoff, serialise, or
abandon speculation for the non-speculative serial fallback — are
delegated to a :class:`~repro.txctl.manager.ContentionManager`; every
speculative runner accepts one via the ``manager`` keyword.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..coherence.vid import VidExhaustedError
from ..core.config import MachineConfig
from ..core.system import HMTXSystem
from ..cpu.core_model import CoreExecutor
from ..cpu.interrupts import InterruptInjector
from ..cpu.isa import BeginMTX, CommitMTX, Consume, Op, Produce, Work
from ..errors import MisspeculationError
from ..txctl import Action, ContentionManager, SerialFallback
from ..workloads.base import Workload
from .scheduler import RunResult, Scheduler

Program = Generator[Op, Any, None]

#: Cycles burnt per poll while stalled (VID exhaustion, commit ordering).
_SPIN_COST = 4
#: How many uncommitted transactions one worker keeps open at once (the
#: paper allows many per core; bounding it caps VID-window and cache-set
#: version pressure, like the bounded DSWP queues).
_MAX_OPEN_TX_PER_CORE = 4
#: System-wide cap on live (begun, uncommitted) transactions.  Every live
#: transaction can pin one version of a hot forwarded line (Figure 3's
#: ``producedNode``) in a single cache set; with an 8-way L1 over a 32-way
#: L2, more than ~24 live versions of one line cannot all stay cached and
#: eviction past the LLC aborts (section 5.4).  Real deployments impose the
#: same throttle through bounded queues and finite VID windows.
_MAX_LIVE_TRANSACTIONS = 20


@dataclass
class ParadigmResult:
    """Outcome of one parallelised hot-loop run."""

    workload: str
    paradigm: str
    cycles: int
    system: HMTXSystem
    run: RunResult
    recoveries: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        return self.system.stats.committed


def _fresh_system(config: Optional[MachineConfig], sla_enabled: bool) -> HMTXSystem:
    return HMTXSystem(config=config, sla_enabled=sla_enabled)


def _make_scheduler(system: HMTXSystem,
                    interrupts: Optional[InterruptInjector],
                    executor_factory: Optional[Callable[[HMTXSystem], CoreExecutor]],
                    ) -> Scheduler:
    executor = executor_factory(system) if executor_factory else None
    return Scheduler(system, executor=executor, interrupts=interrupts)


# ----------------------------------------------------------------------
# Sequential
# ----------------------------------------------------------------------

def run_sequential(workload: Workload, config: Optional[MachineConfig] = None,
                   interrupts: Optional[InterruptInjector] = None,
                   executor_factory: Optional[Callable[[HMTXSystem], CoreExecutor]] = None,
                   system_factory: Optional[Callable[[], HMTXSystem]] = None,
                   ) -> ParadigmResult:
    """Run the hot loop on one core without speculation (the baseline)."""
    system = system_factory() if system_factory else _fresh_system(config, sla_enabled=True)
    workload.setup(system)

    def program() -> Program:
        carry = workload.initial_carry(system)
        for i in range(workload.iterations):
            carry = yield from workload.sequential_iteration(i, carry)

    scheduler = _make_scheduler(system, interrupts, executor_factory)
    scheduler.add_thread(0, core=0, program=program())
    run = scheduler.run()
    result = ParadigmResult(workload.name, "Sequential", run.makespan, system, run)
    result.extra["exec_stats"] = scheduler.executor.stats
    return result


# ----------------------------------------------------------------------
# Shared speculative-paradigm plumbing
# ----------------------------------------------------------------------

def _allocate_vid_with_stall(system: HMTXSystem) -> Program:
    """Allocate the next VID, spinning through the 4.6 overflow protocol.

    Yields stall ops while the VID space is exhausted; performs the VID
    reset once every outstanding transaction has committed.  The generator's
    return value is the fresh VID.
    """
    while True:
        try:
            return system.allocate_vid()
        except VidExhaustedError:
            if system.ready_for_vid_reset():
                yield Work(system.vid_reset())
            else:
                yield Work(_SPIN_COST)


def _wait_for_epoch(system: HMTXSystem, epoch: int) -> Program:
    """Block until the VID space has been recycled ``epoch`` times.

    Used by the statically-VID-mapped paradigms (DOALL/DOACROSS): epoch ``e``
    may start only after all ``max_vid`` transactions of epoch ``e - 1``
    committed and one thread performed the reset.
    """
    max_vid = system.vid_space.max_vid
    while system.vid_space.resets < epoch:
        done_epochs = system.vid_space.resets + 1
        if system.stats.committed >= done_epochs * max_vid \
                and not system.active_vids:
            yield Work(system.vid_reset())
        else:
            yield Work(_SPIN_COST)


def _wait_commit_turn(system: HMTXSystem, vid: int) -> Program:
    """Spin until ``vid - 1`` has committed (in-order commit contract)."""
    while system.last_committed != vid - 1:
        yield Work(_SPIN_COST)


@dataclass
class RecoveryOutcome:
    """How one speculative run's abort recovery played out."""

    recoveries: int = 0
    serialized: bool = False
    fallback: bool = False


def _run_serial_fallback(scheduler: Scheduler, system: HMTXSystem,
                         workload: Workload,
                         manager: ContentionManager) -> None:
    """Execute the remaining iterations non-speculatively (txctl fallback).

    The triggering abort already rolled every cache back to the last
    committed state, so one thread re-runs iterations
    ``committed..iterations`` at VID 0 under the global fallback lock
    while every other thread parks — guaranteed forward progress with MTX
    atomicity intact (nothing speculative runs concurrently).
    """
    fallback = manager.fallback
    assert fallback is not None
    lock_tid = scheduler.threads[0].tid
    programs: Dict[int, Program] = {
        lock_tid: fallback.program(system, workload, tid=lock_tid,
                                   stats=manager.stats)}
    for thread in scheduler.threads[1:]:
        programs[thread.tid] = SerialFallback.idle_program()
    scheduler.queues.clear_all()
    scheduler.replace_programs(programs)
    scheduler.run()


def _run_with_recovery(scheduler: Scheduler, system: HMTXSystem,
                       workload: Workload,
                       rebuild: Callable[..., Dict[int, Program]],
                       manager: Optional[ContentionManager] = None,
                       ) -> RecoveryOutcome:
    """Drive the scheduler, restarting from committed state on aborts.

    ``rebuild(serial=...)`` must produce fresh per-thread programs resuming
    at iteration ``system.stats.committed`` (the abort already rolled all
    speculative memory back to the last committed state).

    Every abort is classified and handed to the
    :class:`~repro.txctl.manager.ContentionManager`, which decides the
    next attempt: speculative retry (optionally after a machine-wide
    backoff stall), serialised retry (one transaction in flight — makes
    conflicts, and without SLAs wrong-path false aborts, impossible), or
    the non-speculative serial fallback (guaranteed progress even for
    transactions that can never fit the cache hierarchy).  Livelock
    escalates down that ladder instead of raising;
    :class:`~repro.errors.LivelockError` is reserved for managers whose
    fallback is explicitly disabled.
    """
    manager = (manager or ContentionManager()).bind(system)
    while True:
        try:
            scheduler.run()
            return RecoveryOutcome(manager.recoveries, manager.serialized,
                                   manager.fallback_taken)
        except MisspeculationError as exc:
            decision = manager.on_abort(exc, committed=system.stats.committed)
            if decision.action is Action.FALLBACK:
                _run_serial_fallback(scheduler, system, workload, manager)
                return RecoveryOutcome(manager.recoveries,
                                       manager.serialized, True)
            if decision.delay:
                scheduler.stall_all(decision.delay)
            scheduler.queues.clear_all()
            serial = decision.action is Action.SERIALIZE
            scheduler.replace_programs(rebuild(serial=serial))


def _result(workload: Workload, paradigm: str, system: HMTXSystem,
            scheduler: Scheduler,
            outcome: Optional[RecoveryOutcome] = None) -> ParadigmResult:
    outcome = outcome or RecoveryOutcome()
    thread_clocks = {t.tid: t.clock for t in scheduler.threads}
    cycles = max(thread_clocks.values())
    run = RunResult(cycles, thread_clocks, {},
                    sum(t.ops_executed for t in scheduler.threads))
    result = ParadigmResult(workload.name, paradigm, cycles, system, run,
                            outcome.recoveries)
    result.extra["exec_stats"] = scheduler.executor.stats
    result.extra["degraded_serial"] = outcome.serialized
    result.extra["serial_fallback"] = outcome.fallback
    result.extra["contention"] = system.stats.contention
    return result


# ----------------------------------------------------------------------
# DOALL (TLS-style: one single-threaded transaction per iteration)
# ----------------------------------------------------------------------

def run_doall(workload: Workload, config: Optional[MachineConfig] = None,
              workers: Optional[int] = None,
              interrupts: Optional[InterruptInjector] = None,
              sla_enabled: bool = True,
              executor_factory: Optional[Callable[[HMTXSystem], CoreExecutor]] = None,
              system_factory: Optional[Callable[[], HMTXSystem]] = None,
              manager: Optional[ContentionManager] = None,
              ) -> ParadigmResult:
    """Speculative DOALL: iteration ``i`` runs on thread ``i % workers``.

    VIDs are assigned statically in iteration order
    (``vid = i % max_vid + 1``); commits are made in order by spinning on
    the commit turn, and epochs recycle the VID space.
    """
    system = system_factory() if system_factory else _fresh_system(config, sla_enabled)
    workload.setup(system)
    workers = workers or system.config.num_cores
    max_vid = system.vid_space.max_vid

    def worker(widx: int, start: int, serial: bool) -> Program:
        # Run iteration bodies eagerly (several uncommitted transactions
        # may live on one core); epilogue + commit happen in VID order.
        # In serial (degraded) mode each body waits for its commit turn
        # before starting, so only one transaction is ever in flight.
        pending = deque()
        todo = [i for i in range(start, workload.iterations)
                if i % workers == widx]
        cursor = 0
        while cursor < len(todo) or pending:
            if pending and system.last_committed == pending[0][1] - 1:
                i, vid = pending.popleft()
                yield BeginMTX(vid)
                yield from workload.stage2_epilogue(i)
                yield CommitMTX(vid)
                continue
            if cursor < len(todo) and len(pending) < _MAX_OPEN_TX_PER_CORE:
                i = todo[cursor]
                epoch, vid0 = divmod(i, max_vid)
                vid = vid0 + 1
                if system.vid_space.resets < epoch and pending:
                    # Cannot cross an epoch boundary with open transactions.
                    yield Work(_SPIN_COST)
                    continue
                yield from _wait_for_epoch(system, epoch)
                if serial:
                    yield from _wait_commit_turn(system, vid)
                yield BeginMTX(vid)
                yield from workload.doall_iteration(i)
                yield BeginMTX(0)
                pending.append((i, vid))
                cursor += 1
                continue
            yield Work(_SPIN_COST)

    def build(start: int = 0, serial: bool = False) -> Dict[int, Program]:
        return {w: worker(w, start, serial) for w in range(workers)}

    scheduler = _make_scheduler(system, interrupts, executor_factory)
    for w, program in build().items():
        scheduler.add_thread(w, core=w % system.config.num_cores, program=program)
    outcome = _run_with_recovery(
        scheduler, system, workload,
        lambda serial=False: build(system.stats.committed, serial),
        manager=manager)
    return _result(workload, "DOALL", system, scheduler, outcome)


# ----------------------------------------------------------------------
# DOACROSS
# ----------------------------------------------------------------------

def run_doacross(workload: Workload, config: Optional[MachineConfig] = None,
                 workers: Optional[int] = None,
                 interrupts: Optional[InterruptInjector] = None,
                 sla_enabled: bool = True,
                 executor_factory: Optional[Callable[[HMTXSystem], CoreExecutor]] = None,
                 system_factory: Optional[Callable[[], HMTXSystem]] = None,
                 manager: Optional[ContentionManager] = None,
                 ) -> ParadigmResult:
    """Speculative DOACROSS: the carry crosses cores every iteration.

    Thread ``i % workers`` runs the *whole* body of iteration ``i``,
    receiving the loop-carried register state from the previous iteration's
    thread through a timed queue — inter-core latency lands on every
    iteration's critical path (Figure 1b, section 2.1).
    """
    system = system_factory() if system_factory else _fresh_system(config, sla_enabled)
    workload.setup(system)
    workers = workers or system.config.num_cores
    max_vid = system.vid_space.max_vid

    def carry_queue(iteration: int) -> str:
        return f"carry[{iteration % workers}]"

    def worker(widx: int, start: int, serial: bool) -> Program:
        first = start + (widx - start) % workers
        for i in range(first, workload.iterations, workers):
            if i == start:
                carry = (workload.recover_carry(system, i) if start
                         else workload.initial_carry(system))
            else:
                carry = yield Consume(carry_queue(i))
            epoch, vid0 = divmod(i, max_vid)
            vid = vid0 + 1
            yield from _wait_for_epoch(system, epoch)
            if serial:
                yield from _wait_commit_turn(system, vid)
            yield BeginMTX(vid)
            carry = yield from workload.sequential_iteration(i, carry)
            yield BeginMTX(0)
            if i + 1 < workload.iterations:
                yield Produce(carry_queue(i + 1), carry)
            yield from _wait_commit_turn(system, vid)
            yield CommitMTX(vid)

    def build(start: int = 0, serial: bool = False) -> Dict[int, Program]:
        return {w: worker(w, start, serial) for w in range(workers)}

    scheduler = _make_scheduler(system, interrupts, executor_factory)
    for w, program in build().items():
        scheduler.add_thread(w, core=w % system.config.num_cores, program=program)
    outcome = _run_with_recovery(
        scheduler, system, workload,
        lambda serial=False: build(system.stats.committed, serial),
        manager=manager)
    return _result(workload, "DOACROSS", system, scheduler, outcome)


# ----------------------------------------------------------------------
# DSWP / PS-DSWP (multithreaded transactions)
# ----------------------------------------------------------------------

def run_ps_dswp(workload: Workload, config: Optional[MachineConfig] = None,
                stage2_workers: Optional[int] = None,
                interrupts: Optional[InterruptInjector] = None,
                sla_enabled: bool = True,
                executor_factory: Optional[Callable[[HMTXSystem], CoreExecutor]] = None,
                system_factory: Optional[Callable[[], HMTXSystem]] = None,
                inline_commit: Optional[bool] = None,
                manager: Optional[ContentionManager] = None,
                ) -> ParadigmResult:
    """Speculative (PS-)DSWP over multithreaded transactions (Figure 3).

    Pipeline structure on N cores:

    * **stage 1** (1 thread) chases the loop-carried dependence, opening a
      new MTX per iteration and forwarding only the VID through a bounded
      queue; data flows to stage 2 through versioned memory (uncommitted
      value forwarding).
    * **stage 2** (``stage2_workers`` threads) runs the parallel bodies.
      Workers free-run: a core may hold several uncommitted transactions
      at once (the paper's second headline feature) — nobody stalls for a
      commit turn.
    * **stage 3** (1 thread) re-sequences completions, runs each
      iteration's ordered epilogue (in-order output emission) and issues
      the atomic group commit — the sequential tail stage of real DSWP
      pipelines.

    With ``stage2_workers == 1`` (or ``inline_commit=True``) workers run
    the epilogue + commit themselves once their commit turn arrives,
    instead of handing off to a stage-3 thread.
    """
    system = system_factory() if system_factory else _fresh_system(config, sla_enabled)
    workload.setup(system)
    num_cores = system.config.num_cores
    if stage2_workers is None:
        stage2_workers = max(1, num_cores - 2)
    inline_commit = stage2_workers == 1
    paradigm = "DSWP" if inline_commit else "PS-DSWP"

    VID_QUEUE = "vids"
    DONE_QUEUE = "done"

    def stage1(start_iter: int, serial: bool) -> Program:
        carry = (workload.recover_carry(system, start_iter) if start_iter
                 else workload.initial_carry(system))
        window = 1 if serial else _MAX_LIVE_TRANSACTIONS
        for i in range(start_iter, workload.iterations):
            while len(system.active_vids) >= window:
                yield Work(_SPIN_COST)
            vid = yield from _allocate_vid_with_stall(system)
            yield BeginMTX(vid)
            carry = yield from workload.stage1_iteration(i, carry)
            yield BeginMTX(0)
            yield Produce(VID_QUEUE, (i, vid))
        for _ in range(stage2_workers):
            yield Produce(VID_QUEUE, None)

    def stage2(widx: int) -> Program:
        while True:
            token = yield Consume(VID_QUEUE)
            if token is None:
                if inline_commit:
                    return
                yield Produce(DONE_QUEUE, None)
                return
            i, vid = token
            yield BeginMTX(vid)
            yield from workload.stage2_iteration(i)
            if inline_commit:
                yield from _wait_commit_turn(system, vid)
                yield from workload.stage2_epilogue(i)
                yield CommitMTX(vid)
            else:
                yield BeginMTX(0)
                yield Produce(DONE_QUEUE, (i, vid))

    def stage3(start_iter: int) -> Program:
        # Reorder completions back into original program order, then run
        # the ordered epilogue and group-commit each transaction.
        buffered: Dict[int, int] = {}
        sentinels = 0
        for i in range(start_iter, workload.iterations):
            while i not in buffered:
                token = yield Consume(DONE_QUEUE)
                if token is None:
                    sentinels += 1
                    continue
                buffered[token[0]] = token[1]
            vid = buffered.pop(i)
            yield BeginMTX(vid)
            yield from workload.stage2_epilogue(i)
            yield CommitMTX(vid)
        while sentinels < stage2_workers:
            token = yield Consume(DONE_QUEUE)
            if token is None:
                sentinels += 1

    def build(start_iter: int = 0, serial: bool = False) -> Dict[int, Program]:
        programs: Dict[int, Program] = {0: stage1(start_iter, serial)}
        for w in range(stage2_workers):
            programs[w + 1] = stage2(w)
        if not inline_commit:
            programs[stage2_workers + 1] = stage3(start_iter)
        return programs

    scheduler = _make_scheduler(system, interrupts, executor_factory)
    for tid, program in build().items():
        scheduler.add_thread(tid, core=tid % num_cores, program=program)
    outcome = _run_with_recovery(
        scheduler, system, workload,
        lambda serial=False: build(system.stats.committed, serial),
        manager=manager)
    return _result(workload, paradigm, system, scheduler, outcome)


def run_dswp(workload: Workload, config: Optional[MachineConfig] = None,
             **kwargs) -> ParadigmResult:
    """Two-thread DSWP (Figure 1c): PS-DSWP with a single stage-2 worker."""
    return run_ps_dswp(workload, config, stage2_workers=1, **kwargs)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

_PARADIGMS: Dict[str, Callable[..., ParadigmResult]] = {
    "Sequential": run_sequential,
    "DOALL": run_doall,
    "DOACROSS": run_doacross,
    "DSWP": run_dswp,
    "PS-DSWP": run_ps_dswp,
}


def run_workload(workload: Workload, config: Optional[MachineConfig] = None,
                 paradigm: Optional[str] = None, **kwargs) -> ParadigmResult:
    """Run ``workload`` under ``paradigm`` (default: its Table 1 paradigm)."""
    name = paradigm or workload.paradigm
    if name not in _PARADIGMS:
        raise ValueError(f"unknown paradigm {name!r}; "
                         f"choose from {sorted(_PARADIGMS)}")
    runner = _PARADIGMS[name]
    if name == "Sequential":
        kwargs.pop("sla_enabled", None)
        kwargs.pop("manager", None)
    return runner(workload, config, **kwargs)
