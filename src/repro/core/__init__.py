"""The paper's primary contribution: the HMTX programming interface.

Quick example (two threads collaborating on one transaction)::

    from repro.core import HMTXSystem

    sys = HMTXSystem()
    sys.thread(0, core=0)
    sys.thread(1, core=1)

    vid = sys.allocate_vid()
    sys.begin_mtx(0, vid)
    sys.store(0, 0x1000, 42)        # speculative store by thread 0
    sys.begin_mtx(0, 0)             # thread 0 done (not committing!)

    sys.begin_mtx(1, vid)           # thread 1 continues the same MTX
    value = sys.load(1, 0x1000).value   # sees the uncommitted 42
    sys.commit_mtx(1, vid)          # atomic group commit
"""

from .config import MachineConfig, small_test_config, table2_config
from .context import ThreadContext
from .sla import SlaTracker
from .stats import CommittedTransaction, OpenTransaction, SystemStats
from .system import HMTXSystem

__all__ = [
    "CommittedTransaction",
    "HMTXSystem",
    "MachineConfig",
    "OpenTransaction",
    "SlaTracker",
    "SystemStats",
    "ThreadContext",
    "small_test_config",
    "table2_config",
]
