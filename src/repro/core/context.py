"""Per-hardware-thread HMTX state.

Each thread context carries the VID register that ``beginMTX`` sets
(section 3.1) — the VID attached to every memory operation the thread issues
— plus the recovery handler registered via ``initMTX`` and the output buffer
of section 4.7 (program output inside a transaction must not escape until
commit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass
class ThreadContext:
    """Architectural HMTX state of one hardware thread."""

    tid: int
    core: int
    #: The VID register set by ``beginMTX``; 0 means non-speculative.
    vid: int = 0
    #: Recovery code registered by ``initMTX``; invoked on abort.
    recovery_handler: Optional[Callable[..., Any]] = None
    #: Output produced inside uncommitted transactions, keyed by VID.
    _pending_output: dict = field(default_factory=dict)

    def buffer_output(self, value: Any) -> None:
        """Buffer transactional output until the owning VID commits (4.7)."""
        self._pending_output.setdefault(self.vid, []).append(value)

    def release_output(self, vid: int) -> List[Any]:
        """Drain the output buffered under ``vid`` (called at commit)."""
        return self._pending_output.pop(vid, [])

    def discard_output(self) -> int:
        """Drop all uncommitted output (called on abort); returns count."""
        dropped = sum(len(v) for v in self._pending_output.values())
        self._pending_output.clear()
        return dropped

    def pending_output_count(self) -> int:
        return sum(len(v) for v in self._pending_output.values())
