"""Machine configuration — the paper's Table 2.

=====================  ==============================================
Feature                Parameter
=====================  ==============================================
Architecture           Alpha 21264 (modelled abstractly)
Clock speed            2.0 GHz
L1 I and D caches      64 KB, 8-way set associative, 2-cycle latency
Shared L2 cache        32 MB, 32-way set associative, 40-cycle latency
Cache line size        64 B
Base coherence         MOESI
Memory                 1 GB, 200-cycle latency
=====================  ==============================================

The default :class:`MachineConfig` reproduces this table; experiments vary
``num_cores`` and ``vid_bits`` for the ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..coherence.hierarchy import HierarchyConfig
from ..cpu.isa import OpCosts


@dataclass
class MachineConfig:
    """Full simulated-machine configuration (Table 2 defaults)."""

    num_cores: int = 4
    clock_ghz: float = 2.0
    l1_size: int = 64 * 1024
    l1_assoc: int = 8
    l1_latency: int = 2
    l2_size: int = 32 * 1024 * 1024
    l2_assoc: int = 32
    l2_latency: int = 40
    line_size: int = 64
    memory_latency: int = 200
    memory_size: int = 1 << 30
    vid_bits: int = 6
    #: Coherence organisation: "snoopy" (the paper's design) or
    #: "directory" (the section 8 scaling extension).
    coherence: str = "snoopy"
    #: Section 8 extension: spill speculative LLC victims to a memory-side
    #: version table instead of aborting ("unlimited read and write sets").
    unbounded_sets: bool = False
    #: One-way inter-core produce/consume latency for DSWP queues.  Pipeline
    #: paradigms pay it once at pipeline fill; DOACROSS pays it per
    #: iteration (section 2.1).
    queue_latency: int = 40
    op_costs: OpCosts = field(default_factory=OpCosts)

    def hierarchy_config(self) -> HierarchyConfig:
        """Project the machine configuration onto the cache hierarchy."""
        kwargs = dict(
            num_cores=self.num_cores,
            l1_size=self.l1_size,
            l1_assoc=self.l1_assoc,
            l1_latency=self.l1_latency,
            l2_size=self.l2_size,
            l2_assoc=self.l2_assoc,
            l2_latency=self.l2_latency,
            line_size=self.line_size,
            memory_latency=self.memory_latency,
            vid_bits=self.vid_bits,
            unbounded_sets=self.unbounded_sets,
        )
        if self.coherence == "directory":
            from ..coherence.directory import DirectoryConfig  # lint-ok: RL005 (coherence.directory imports this module's configs; a top-level import would cycle)
            return DirectoryConfig(**kwargs)
        if self.coherence != "snoopy":
            raise ValueError(f"unknown coherence organisation "
                             f"{self.coherence!r}")
        return HierarchyConfig(**kwargs)

    def build_hierarchy(self):
        """Construct the configured memory system."""
        from ..coherence.hierarchy import MemoryHierarchy  # lint-ok: RL005 (coherence layers import this module's configs; a top-level import would cycle)
        if self.coherence == "directory":
            from ..coherence.directory import DirectoryHierarchy  # lint-ok: RL005 (same cycle as above)
            return DirectoryHierarchy(self.hierarchy_config())
        return MemoryHierarchy(self.hierarchy_config())

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to wall-clock seconds at ``clock_ghz``."""
        return cycles / (self.clock_ghz * 1e9)


def table2_config() -> MachineConfig:
    """The exact Table 2 machine (4 cores)."""
    return MachineConfig()


def small_test_config(num_cores: int = 2, l1_size: int = 4 * 1024,
                      l2_size: int = 64 * 1024) -> MachineConfig:
    """A deliberately tiny machine for overflow/eviction unit tests."""
    return MachineConfig(
        num_cores=num_cores,
        l1_size=l1_size,
        l1_assoc=2,
        l2_size=l2_size,
        l2_assoc=4,
    )
