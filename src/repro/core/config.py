"""Machine configuration — the paper's Table 2.

=====================  ==============================================
Feature                Parameter
=====================  ==============================================
Architecture           Alpha 21264 (modelled abstractly)
Clock speed            2.0 GHz
L1 I and D caches      64 KB, 8-way set associative, 2-cycle latency
Shared L2 cache        32 MB, 32-way set associative, 40-cycle latency
Cache line size        64 B
Base coherence         MOESI
Memory                 1 GB, 200-cycle latency
=====================  ==============================================

The default :class:`MachineConfig` reproduces this table; experiments vary
``num_cores`` and ``vid_bits`` for the ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..coherence.hierarchy import HierarchyConfig
from ..cpu.isa import OpCosts
from ..topology import PLACEMENT_POLICIES, TopologySpec, topology_preset


@dataclass
class MachineConfig:
    """Full simulated-machine configuration (Table 2 defaults)."""

    num_cores: int = 4
    clock_ghz: float = 2.0
    l1_size: int = 64 * 1024
    l1_assoc: int = 8
    l1_latency: int = 2
    l2_size: int = 32 * 1024 * 1024
    l2_assoc: int = 32
    l2_latency: int = 40
    line_size: int = 64
    memory_latency: int = 200
    memory_size: int = 1 << 30
    vid_bits: int = 6
    #: Coherence organisation: "snoopy" (the paper's design) or
    #: "directory" (the section 8 scaling extension).
    coherence: str = "snoopy"
    #: Machine shape (sockets × cores-per-socket, LLC slices, NUMA hops).
    #: ``None`` is the flat Table 2 machine; multi-socket specs slice the
    #: LLC per socket.  When set, its core count must equal ``num_cores``.
    topology: Optional[TopologySpec] = None
    #: Thread-placement policy: "pack" fills cores in id order (the
    #: historical mapping — flat machines are unaffected); "spread"
    #: round-robins worker threads across sockets first.
    placement: str = "pack"
    #: Directory knobs (only meaningful with ``coherence="directory"``;
    #: per-socket under a multi-socket topology).
    directory_banks: int = 8
    directory_latency: int = 12
    bank_occupancy: int = 4
    link_latency: int = 10
    #: Section 8 extension: spill speculative LLC victims to a memory-side
    #: version table instead of aborting ("unlimited read and write sets").
    unbounded_sets: bool = False
    #: One-way inter-core produce/consume latency for DSWP queues.  Pipeline
    #: paradigms pay it once at pipeline fill; DOACROSS pays it per
    #: iteration (section 2.1).
    queue_latency: int = 40
    op_costs: OpCosts = field(default_factory=OpCosts)

    def __post_init__(self) -> None:
        if self.topology is not None \
                and self.topology.num_cores != self.num_cores:
            raise ValueError(
                f"topology describes {self.topology.num_cores} cores "
                f"({self.topology.sockets}x"
                f"{self.topology.cores_per_socket}) but num_cores is "
                f"{self.num_cores}")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(f"unknown placement policy "
                             f"{self.placement!r}; choose from "
                             f"{PLACEMENT_POLICIES}")

    def hierarchy_config(self) -> HierarchyConfig:
        """Project the machine configuration onto the cache hierarchy."""
        kwargs = dict(
            num_cores=self.num_cores,
            l1_size=self.l1_size,
            l1_assoc=self.l1_assoc,
            l1_latency=self.l1_latency,
            l2_size=self.l2_size,
            l2_assoc=self.l2_assoc,
            l2_latency=self.l2_latency,
            line_size=self.line_size,
            memory_latency=self.memory_latency,
            vid_bits=self.vid_bits,
            unbounded_sets=self.unbounded_sets,
            topology=self.topology,
        )
        if self.coherence == "directory":
            from ..coherence.directory import DirectoryConfig  # lint-ok: RL005 (coherence.directory imports this module's configs; a top-level import would cycle)
            return DirectoryConfig(
                directory_banks=self.directory_banks,
                directory_latency=self.directory_latency,
                bank_occupancy=self.bank_occupancy,
                link_latency=self.link_latency,
                **kwargs)
        if self.coherence != "snoopy":
            raise ValueError(f"unknown coherence organisation "
                             f"{self.coherence!r}")
        return HierarchyConfig(**kwargs)

    def build_hierarchy(self):
        """Construct the configured memory system."""
        from ..coherence.hierarchy import MemoryHierarchy  # lint-ok: RL005 (coherence layers import this module's configs; a top-level import would cycle)
        if self.coherence == "directory":
            from ..coherence.directory import DirectoryHierarchy  # lint-ok: RL005 (same cycle as above)
            return DirectoryHierarchy(self.hierarchy_config())
        return MemoryHierarchy(self.hierarchy_config())

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to wall-clock seconds at ``clock_ghz``."""
        return cycles / (self.clock_ghz * 1e9)

    def socket_of_core(self, core: int) -> int:
        """Socket owning ``core`` (0 for every core on a flat machine)."""
        if self.topology is None:
            return 0
        return self.topology.socket_of_core(core)

    @classmethod
    def for_topology(cls, preset_or_spec, coherence: str = "directory",
                     **overrides) -> "MachineConfig":
        """Machine for a topology preset name (or spec).

        Multi-socket machines default to directory coherence — the
        section 8 scaling organisation the topology exists for; pass
        ``coherence="snoopy"`` to model a (non-scalable) global bus.
        """
        spec = (topology_preset(preset_or_spec)
                if isinstance(preset_or_spec, str) else preset_or_spec)
        overrides.setdefault("num_cores", spec.num_cores)
        overrides.setdefault("coherence",
                             "snoopy" if spec.flat else coherence)
        return cls(topology=None if spec.flat else spec, **overrides)


def table2_config() -> MachineConfig:
    """The exact Table 2 machine (4 cores)."""
    return MachineConfig()


def small_test_config(num_cores: int = 2, l1_size: int = 4 * 1024,
                      l2_size: int = 64 * 1024) -> MachineConfig:
    """A deliberately tiny machine for overflow/eviction unit tests."""
    return MachineConfig(
        num_cores=num_cores,
        l1_size=l1_size,
        l1_assoc=2,
        l2_size=l2_size,
        l2_assoc=4,
    )
