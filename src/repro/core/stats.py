"""Transaction-level statistics: read/write sets, SLA counts, aborts.

These counters back Table 1 (speculative accesses per transaction, SLAs as a
fraction of speculative loads, aborts avoided via SLA) and Figure 9 (average
read/write-set sizes per transaction in kilobytes).

Read and write sets are tracked at cache-line granularity, matching the
hardware's conflict-detection granularity (section 7.1: HMTX deliberately
uses line-level rather than byte-level granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..txctl.causes import AbortCause
from ..txctl.stats import ContentionStats


@dataclass
class OpenTransaction:
    """Accounting for one in-flight (uncommitted) transaction."""

    vid: int
    read_lines: Set[int] = field(default_factory=set)
    write_lines: Set[int] = field(default_factory=set)
    spec_loads: int = 0
    spec_stores: int = 0
    slas_sent: int = 0


@dataclass
class CommittedTransaction:
    """Immutable record of a committed transaction (one Figure 9 sample)."""

    vid: int
    read_set_bytes: int
    write_set_bytes: int
    combined_set_bytes: int
    spec_accesses: int
    slas_sent: int


@dataclass
class SystemStats:
    """Aggregate statistics of one :class:`~repro.core.system.HMTXSystem` run."""

    line_size: int = 64
    committed: int = 0
    aborted: int = 0
    explicit_aborts: int = 0
    spec_loads: int = 0
    spec_stores: int = 0
    slas_sent: int = 0
    wrong_path_loads: int = 0
    false_aborts_avoided: int = 0
    false_aborts_triggered: int = 0
    vid_resets: int = 0
    transactions: List[CommittedTransaction] = field(default_factory=list)
    #: Abort-cause taxonomy and recovery-decision counters (repro.txctl).
    contention: ContentionStats = field(default_factory=ContentionStats)
    _open: Dict[int, OpenTransaction] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def open_transaction(self, vid: int) -> OpenTransaction:
        tx = self._open.get(vid)
        if tx is None:
            tx = self._open[vid] = OpenTransaction(vid)
        return tx

    def record_load(self, vid: int, addr: int, sla_sent: bool) -> None:  # hot-path
        tx = self._open.get(vid)
        if tx is None:
            tx = self._open[vid] = OpenTransaction(vid)  # lint-ok: RL006 (once per transaction open)
        tx.read_lines.add(addr - (addr % self.line_size))
        tx.spec_loads += 1
        self.spec_loads += 1
        if sla_sent:
            tx.slas_sent += 1
            self.slas_sent += 1

    def record_store(self, vid: int, addr: int) -> None:  # hot-path
        tx = self._open.get(vid)
        if tx is None:
            tx = self._open[vid] = OpenTransaction(vid)  # lint-ok: RL006 (once per transaction open)
        tx.write_lines.add(addr - (addr % self.line_size))
        tx.spec_stores += 1
        self.spec_stores += 1

    def record_commit(self, vid: int) -> Optional[CommittedTransaction]:
        tx = self._open.pop(vid, None)
        self.committed += 1
        if tx is None:
            return None
        record = CommittedTransaction(
            vid=vid,
            read_set_bytes=len(tx.read_lines) * self.line_size,
            write_set_bytes=len(tx.write_lines) * self.line_size,
            combined_set_bytes=len(tx.read_lines | tx.write_lines) * self.line_size,
            spec_accesses=tx.spec_loads + tx.spec_stores,
            slas_sent=tx.slas_sent,
        )
        self.transactions.append(record)
        return record

    def record_abort(self, explicit: bool = False,
                     cause: Optional[AbortCause] = None,
                     vid: int = 0) -> None:
        self.aborted += 1
        if explicit:
            self.explicit_aborts += 1
        if cause is not None:
            self.contention.record_abort(vid, cause)
        self._open.clear()

    # ------------------------------------------------------------------
    # Derived metrics (Table 1 / Figure 9)
    # ------------------------------------------------------------------

    @property
    def avg_spec_accesses_per_tx(self) -> float:
        if not self.transactions:
            return 0.0
        return sum(t.spec_accesses for t in self.transactions) / len(self.transactions)

    @property
    def avg_read_set_kb(self) -> float:
        return self._avg_kb("read_set_bytes")

    @property
    def avg_write_set_kb(self) -> float:
        return self._avg_kb("write_set_bytes")

    @property
    def avg_combined_set_kb(self) -> float:
        return self._avg_kb("combined_set_bytes")

    def _avg_kb(self, attr: str) -> float:
        if not self.transactions:
            return 0.0
        total = sum(getattr(t, attr) for t in self.transactions)
        return total / len(self.transactions) / 1024.0

    @property
    def sla_fraction_of_spec_loads(self) -> float:
        """"% of Spec Loads Needing SLA" column of Table 1."""
        if self.spec_loads == 0:
            return 0.0
        return self.slas_sent / self.spec_loads

    @property
    def avoided_aborts_per_tx(self) -> float:
        """"Number of TX Aborts Avoided via SLA Per TX" column of Table 1."""
        if self.committed == 0:
            return 0.0
        return self.false_aborts_avoided / self.committed
