"""The HMTX system: the paper's programming interface over the hierarchy.

:class:`HMTXSystem` exposes the four new instructions of section 3.1 —
``beginMTX`` / ``commitMTX`` / ``abortMTX`` / ``initMTX`` — plus speculative
loads and stores that carry the issuing thread's VID register, on top of the
versioned cache hierarchy of :mod:`repro.coherence`.

It also owns the machinery that sits between the ISA and the protocol:

* VID allocation in original program order and the reset protocol (4.6/4.7),
* consecutive-commit-order enforcement (4.4: behaviour is undefined
  otherwise, so we make it a hard error),
* SLA bookkeeping for branch-speculative loads (5.1),
* transactional output buffering (4.7),
* read/write-set and abort statistics (Table 1, Figure 9).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..coherence.hierarchy import AccessResult, MemoryHierarchy
from ..coherence.protocol import AccessKind
from ..coherence.vid import VidSpace
from ..errors import MisspeculationError, TransactionUsageError
from ..txctl.causes import AbortCause, classify
from .config import MachineConfig
from .context import ThreadContext
from .sla import SlaTracker
from .stats import OpenTransaction, SystemStats


class HMTXSystem:
    """A multicore machine with HMTX extensions.

    Parameters
    ----------
    config:
        Machine configuration (defaults to the paper's Table 2).
    sla_enabled:
        When False, wrong-path loads genuinely mark cache lines (the naive
        pre-SLA design of section 5.1) — used by the SLA ablation.
    """

    def __init__(self, config: Optional[MachineConfig] = None,
                 sla_enabled: bool = True) -> None:
        self.config = config or MachineConfig()
        self.hierarchy = self.config.build_hierarchy()
        self.vid_space = VidSpace(bits=self.config.vid_bits)
        self.stats = SystemStats(line_size=self.config.line_size)
        self.sla = SlaTracker(enabled=sla_enabled,
                              line_size=self.config.line_size)
        self.contexts: Dict[int, ThreadContext] = {}
        self.last_committed = 0
        self.active_vids: Set[int] = set()
        self.committed_output: list = []
        #: Lines marked by wrong-path loads in no-SLA mode (line address ->
        #: highest marking VID), to attribute the resulting aborts as
        #: *false* (SLA-preventable).  Entries are pruned once their
        #: marking VID commits: a committed mark is architecturally real
        #: and can no longer cause a false abort, so leaving it behind
        #: would misattribute a genuine later conflict on the same line.
        self._wrong_path_marks: Dict[int, int] = {}
        #: Scheduler-installed machine-quiesce hook (section 4.6: the
        #: reset scrub is a *global* barrier — every core must drain and
        #: acknowledge before any thread proceeds).  ``None`` until a
        #: :class:`~repro.runtime.scheduler.Scheduler` attaches; direct
        #: protocol-level users (the model checker, unit tests) pay the
        #: latency on the calling thread instead.
        self.quiesce_cb: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------

    def thread(self, tid: int, core: int) -> ThreadContext:
        """Register (or fetch) the context of hardware thread ``tid``."""
        if tid not in self.contexts:
            if not 0 <= core < self.config.num_cores:
                raise ValueError(f"core {core} out of range")
            self.contexts[tid] = ThreadContext(tid=tid, core=core)
        return self.contexts[tid]

    def migrate(self, tid: int, core: int) -> None:
        """Move a thread to another core (section 5.2: speculative threads
        can migrate; their data is found through the transaction's VID)."""
        if not 0 <= core < self.config.num_cores:
            raise ValueError(f"core {core} out of range")
        self.contexts[tid].core = core

    def socket_of_core(self, core: int) -> int:
        """Socket owning ``core`` (0 for every core on a flat machine)."""
        return self.config.socket_of_core(core)

    def socket_of_thread(self, tid: int) -> int:
        """Socket the thread currently runs on (follows migration)."""
        return self.config.socket_of_core(self.contexts[tid].core)

    # ------------------------------------------------------------------
    # VID lifecycle (sections 4.6, 4.7)
    # ------------------------------------------------------------------

    def allocate_vid(self) -> int:
        """Allocate the next VID in original program order.

        Raises :class:`~repro.coherence.vid.VidExhaustedError` when the
        m-bit space is used up; the runtime must then drain commits and
        call :meth:`vid_reset`.
        """
        vid = self.vid_space.allocate()
        self.active_vids.add(vid)
        return vid

    def ready_for_vid_reset(self) -> bool:
        """All VIDs used and every transaction committed (4.6)."""
        return self.vid_space.exhausted() and not self.active_vids

    def vid_reset(self) -> int:
        """Recycle the VID space; returns the broadcast latency.

        On a multi-socket machine with a scheduler attached, the scrub
        stalls *every* thread through :attr:`quiesce_cb` (the barrier of
        section 4.6 — no core may issue speculative accesses while VID
        tags are being cleared across the sliced LLC) and the resetting
        thread is charged only a 1-cycle issue slot, so the cost is not
        double-counted.  Flat machines keep the original model: the
        broadcast latency lands on the caller alone.
        """
        if self.active_vids:
            raise TransactionUsageError(
                f"VID reset with live transactions: {sorted(self.active_vids)}")
        latency = self.hierarchy.vid_reset()
        self.vid_space.reset()
        self.last_committed = 0
        self.stats.vid_resets += 1
        topo = self.config.topology
        if (self.quiesce_cb is not None and topo is not None
                and topo.sockets > 1):
            self.quiesce_cb(latency)
            return 1
        return latency

    # ------------------------------------------------------------------
    # The four MTX instructions (section 3.1)
    # ------------------------------------------------------------------

    def begin_mtx(self, tid: int, vid: int) -> int:
        """``beginMTX(VID)``: set the thread's VID register.

        VID 0 moves the thread back to non-speculative execution without
        committing anything.  Returns the instruction latency.
        """
        if vid < 0 or vid > self.vid_space.max_vid:
            raise TransactionUsageError(f"VID {vid} outside 0..{self.vid_space.max_vid}")
        if vid > 0:
            if vid <= self.last_committed:
                raise TransactionUsageError(
                    f"beginMTX({vid}) after VID {self.last_committed} committed")
            self.active_vids.add(vid)
        ctx = self.contexts[tid]
        ctx.vid = vid
        return self.config.op_costs.mtx_instruction

    def init_mtx(self, tid: int, handler: Callable[..., Any]) -> int:
        """``initMTX(pc)``: register this thread's recovery code."""
        self.contexts[tid].recovery_handler = handler
        return self.config.op_costs.mtx_instruction

    def commit_mtx(self, tid: int, vid: int) -> int:
        """``commitMTX(VID)``: atomic group commit of the whole MTX.

        Enforces the section 4.4/4.7 software contract: commits occur in
        consecutive VID order, exactly once, by exactly one thread of the
        transaction.  Returns the commit latency (cheap — lazy scheme).
        """
        if vid != self.last_committed + 1:
            raise TransactionUsageError(
                f"commitMTX({vid}) out of order; expected "
                f"{self.last_committed + 1}")
        if vid not in self.active_vids:
            raise TransactionUsageError(f"commitMTX({vid}) of unknown VID")
        latency = self.hierarchy.commit(vid)
        self.active_vids.discard(vid)
        self.last_committed = vid
        if self._wrong_path_marks:
            self._wrong_path_marks = {
                line: v for line, v in self._wrong_path_marks.items()
                if v > vid}
        self.stats.record_commit(vid)
        self.sla.on_commit(vid)
        ctx = self.contexts[tid]
        for context in self.contexts.values():
            self.committed_output.extend(context.release_output(vid))
        if ctx.vid == vid:
            ctx.vid = 0
        return latency

    def abort_mtx(self, tid: int, vid: int) -> int:
        """``abortMTX(VID)``: software-detected misspeculation.

        Flushes *all* uncommitted transactional state (section 4.4's
        simple-and-rare abort philosophy), then raises
        :class:`~repro.errors.MisspeculationError` so every thread unwinds
        to its registered recovery code (the runtime restarts execution
        from the last committed iteration).
        """
        self._abort(explicit=True, cause=AbortCause.EXPLICIT, vid=vid)
        raise MisspeculationError(f"explicit abortMTX({vid})", vid=vid,
                                  cause=AbortCause.EXPLICIT)

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def load(self, tid: int, addr: int, now: int = 0) -> AccessResult:  # hot-path
        """Load with the thread's current VID attached."""
        ctx = self.contexts[tid]
        vid = ctx.vid
        hierarchy = self.hierarchy
        try:
            if "load" in hierarchy.__dict__:
                # Instrumented (e.g. a protocol tracer wraps the bound
                # method as an instance attribute): go through the wrapper.
                result = hierarchy.load(ctx.core, addr, vid, now=now)
            else:
                hstats = hierarchy.stats
                hstats.loads += 1
                if vid > 0:
                    hstats.spec_loads += 1
                result = hierarchy._access(ctx.core, addr, vid,
                                           AccessKind.READ, None, now)
        except MisspeculationError as exc:
            # A load can misspeculate too: installing the fetched line may
            # evict a speculative version past the LLC (section 5.4).  The
            # abort must flush state here just like the store path.
            self._abort(explicit=False, cause=classify(exc), vid=exc.vid)
            raise
        if vid > 0:
            # The SLA (if one is needed) is sent when the load retires; it
            # is buffered store-queue style, so it adds traffic but no
            # program-order latency (section 5.1).  Inline record_load.
            stats = self.stats
            tx = stats._open.get(vid)
            if tx is None:
                tx = stats._open[vid] = OpenTransaction(vid)  # lint-ok: RL006 (once per transaction open)
            tx.read_lines.add(addr - (addr % stats.line_size))
            tx.spec_loads += 1
            stats.spec_loads += 1
            if result.sla_required:
                tx.slas_sent += 1
                stats.slas_sent += 1
        return result

    def store(self, tid: int, addr: int, value: int,
              now: int = 0) -> AccessResult:  # hot-path
        """Store with the thread's current VID attached."""
        ctx = self.contexts[tid]
        vid = ctx.vid
        hierarchy = self.hierarchy
        try:
            if "store" in hierarchy.__dict__:
                result = hierarchy.store(ctx.core, addr, vid, value, now=now)
            else:
                hstats = hierarchy.stats
                hstats.stores += 1
                if vid > 0:
                    hstats.spec_stores += 1
                result = hierarchy._access(ctx.core, addr, vid,
                                           AccessKind.WRITE, value, now)
        except MisspeculationError as exc:
            line = addr - (addr % self.config.line_size)
            if not self.sla.enabled and line in self._wrong_path_marks:
                # A false abort the SLA mechanism would have avoided: the
                # conflicting mark came from a squashed wrong-path load.
                self.stats.false_aborts_triggered += 1
                exc.cause = AbortCause.WRONG_PATH
            self._abort(explicit=False, cause=classify(exc), vid=exc.vid)
            raise
        if vid > 0:
            stats = self.stats
            tx = stats._open.get(vid)
            if tx is None:
                tx = stats._open[vid] = OpenTransaction(vid)  # lint-ok: RL006 (once per transaction open)
            tx.write_lines.add(addr - (addr % stats.line_size))
            tx.spec_stores += 1
            stats.spec_stores += 1
            if self.sla.enabled and self.sla.check_store(addr, vid):
                self.stats.false_aborts_avoided += 1
        return result

    def wrong_path_load(self, tid: int, addr: int) -> Tuple[int, int]:
        """A branch-speculative load that will be squashed (section 5.1).

        With SLAs enabled the load's data flows through the hierarchy but no
        line is marked (the SLA is simply never sent).  With SLAs disabled
        the load marks the line like any speculative load — setting up the
        false misspeculations the mechanism exists to avoid.

        Returns ``(value, latency)``.
        """
        ctx = self.contexts[tid]
        self.stats.wrong_path_loads += 1
        if self.sla.enabled or ctx.vid == 0:
            value, latency = self.hierarchy.peek(ctx.core, addr, ctx.vid)
            if ctx.vid > 0:
                hit = self.hierarchy.l1s[ctx.core].lookup(addr, ctx.vid)
                would_mark = (hit is None or not hit.is_speculative()
                              or hit.high_vid < ctx.vid)
                self.sla.record_wrong_path(addr, ctx.vid, would_mark)
            return value, latency
        result = self.hierarchy.load(ctx.core, addr, ctx.vid)
        line = addr - (addr % self.config.line_size)
        if ctx.vid > self._wrong_path_marks.get(line, 0):
            self._wrong_path_marks[line] = ctx.vid
        return result.value, result.latency

    def kernel_load(self, tid: int, addr: int) -> AccessResult:
        """A load from interrupt/exception-handler code (section 5.2).

        Handler PCs fall outside the registered text segment, so no VID is
        attached regardless of the thread's VID register.
        """
        ctx = self.contexts[tid]
        try:
            return self.hierarchy.load(ctx.core, addr, 0)
        except MisspeculationError as exc:
            exc.cause = AbortCause.INTERRUPT
            self._abort(explicit=False, cause=AbortCause.INTERRUPT,
                        vid=exc.vid)
            raise

    def kernel_store(self, tid: int, addr: int, value: int) -> AccessResult:
        """A store from interrupt/exception-handler code (section 5.2).

        A handler store landing on live speculative state is a
        conservative conflict (the hierarchy treats any non-speculative
        write to a speculative version as one); it aborts with cause
        ``INTERRUPT`` so the contention manager knows speculation lost to
        kernel activity, not to another transaction.
        """
        ctx = self.contexts[tid]
        try:
            return self.hierarchy.store(ctx.core, addr, 0, value)
        except MisspeculationError as exc:
            exc.cause = AbortCause.INTERRUPT
            self._abort(explicit=False, cause=AbortCause.INTERRUPT,
                        vid=exc.vid)
            raise

    def output(self, tid: int, value: Any) -> None:
        """Emit program output; buffered until commit inside an MTX (4.7)."""
        ctx = self.contexts[tid]
        if ctx.vid > 0:
            ctx.buffer_output(value)
        else:
            self.committed_output.append(value)

    # ------------------------------------------------------------------
    # Abort/recovery plumbing
    # ------------------------------------------------------------------

    def _abort(self, explicit: bool,
               cause: Optional[AbortCause] = None, vid: int = 0) -> int:
        latency = self.hierarchy.abort()
        self.stats.record_abort(explicit=explicit, cause=cause, vid=vid)
        self.sla.on_abort()
        self._wrong_path_marks.clear()
        dropped = 0
        for ctx in self.contexts.values():
            dropped += ctx.discard_output()
            ctx.vid = 0
        self.active_vids.clear()
        # Aborted VIDs are recycled: re-executed transactions restart right
        # after the last committed VID.
        self.vid_space.rewind(self.last_committed + 1)
        return latency

    def recovery_handlers(self) -> Dict[int, Optional[Callable[..., Any]]]:
        """The per-thread recovery code registered via ``initMTX``."""
        return {tid: ctx.recovery_handler for tid, ctx in self.contexts.items()}
