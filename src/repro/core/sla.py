"""Speculative Load Acknowledgments (SLAs) — section 5.1.

With deep pipelines and branch prediction, loads execute before the branches
they depend on resolve.  A squashed wrong-path load must not mark a cache
line with its VID, or a later (logically earlier) store to that line will
trigger a *false* misspeculation.

Under the SLA scheme a branch-speculative load does **not** mark the line.
Only when the load retires (branch resolved correctly) is an SLA message —
carrying the loaded value, address and VID — sent to the cache system, which
re-verifies the value and applies the speculative marking.  An SLA is only
needed when the line is not already marked for that VID, which memory
locality makes rare (Table 1: 1.28%–13% of speculative loads).

This module tracks two things:

* how many SLAs the system sends (``slas_sent`` lives in the system stats;
  the *decision* comes from :class:`~repro.coherence.hierarchy.AccessResult.
  sla_required`), and
* the *ghost marks* that wrong-path loads would have left if SLAs were
  disabled, so the evaluation can count how many false aborts the mechanism
  avoided (Table 1's "TX Aborts Avoided via SLA Per TX").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SlaTracker:
    """Ghost-mark bookkeeping for the SLA mechanism.

    ``enabled=False`` models the naive system: wrong-path loads really mark
    lines, and the false aborts they cause are real (the ablation benchmark
    measures this).
    """

    enabled: bool = True
    line_size: int = 64
    #: line address -> highest VID a wrong-path load *would have* marked.
    _ghosts: Dict[int, int] = field(default_factory=dict)
    wrong_path_loads: int = 0
    ghost_marks: int = 0
    avoided_aborts: int = 0

    def _line(self, addr: int) -> int:
        return addr - (addr % self.line_size)

    def record_wrong_path(self, addr: int, vid: int, would_mark: bool) -> None:
        """Log a squashed speculative load that SLAs kept from marking."""
        self.wrong_path_loads += 1
        if not would_mark or vid <= 0:
            return
        line = self._line(addr)
        self.ghost_marks += 1
        if self._ghosts.get(line, 0) < vid:
            self._ghosts[line] = vid

    def check_store(self, addr: int, vid: int) -> bool:
        """Would this store have aborted against a ghost mark?

        Called for every speculative store that did *not* misspeculate for
        real.  A ghost mark with a higher VID on the store's line means the
        naive system would have seen VID < highVID and aborted — an abort
        the SLA mechanism avoided.
        """
        line = self._line(addr)
        ghost_vid = self._ghosts.get(line)
        if ghost_vid is not None and vid < ghost_vid:
            self.avoided_aborts += 1
            del self._ghosts[line]
            return True
        return False

    def on_commit(self, vid: int) -> None:
        """Ghost marks from committed VIDs can no longer cause aborts."""
        dead = [line for line, g in self._ghosts.items() if g <= vid]
        for line in dead:
            del self._ghosts[line]

    def on_abort(self) -> None:
        """A real abort flushes all speculative state, ghosts included."""
        self._ghosts.clear()

    def pending_ghosts(self) -> int:
        return len(self._ghosts)
