"""Backend registry: named constructors for every TM implementation.

``get_backend("hmtx")`` returns a factory building a fresh
:class:`~repro.backends.protocol.TMBackend`; new backends plug in with
:func:`register_backend` and immediately work everywhere a backend name
is accepted — the paradigm executors, the sweep engine, and the CLI —
without touching any executor code.

Factories are registered lazily (import path + attribute) so importing
this module pulls in no system implementation: ``repro.smtx`` imports
the runtime package, which imports this registry, and eager imports
would cycle.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, Tuple

from .protocol import TMBackend

#: A backend factory: ``factory(config=None, **kwargs) -> TMBackend``.
BackendFactory = Callable[..., TMBackend]

_FACTORIES: Dict[str, BackendFactory] = {}
_LAZY: Dict[str, Tuple[str, str]] = {
    "hmtx": ("repro.core.system", "HMTXSystem"),
    "smtx": ("repro.smtx.system", "SMTXSystem"),
    "oracle": ("repro.backends.oracle", "OracleTMSystem"),
}


def register_backend(name: str, factory: BackendFactory) -> BackendFactory:
    """Register ``factory`` under ``name`` (replacing any lazy entry)."""
    _FACTORIES[name] = factory
    _LAZY.pop(name, None)
    return factory


def get_backend(name: str) -> BackendFactory:
    """The factory registered under ``name``.

    Raises ``KeyError`` with the available names for a typo'd backend.
    """
    if name in _FACTORIES:
        return _FACTORIES[name]
    if name in _LAZY:
        module_name, attr = _LAZY[name]
        factory = getattr(importlib.import_module(module_name), attr)
        _FACTORIES[name] = factory
        return factory
    raise KeyError(f"unknown backend {name!r}; "
                   f"choose from {sorted(backend_names())}")


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name."""
    return tuple(sorted(set(_FACTORIES) | set(_LAZY)))
