"""``repro.backends`` — the formal TM-backend interface and registry.

``protocol``
    :class:`TMBackend`, the structural contract between the paradigm
    executors and a transactional-memory implementation, plus the
    method/attribute lists the conformance suite enforces.
``registry``
    ``get_backend(name)`` / ``register_backend`` — named factories for
    ``"hmtx"`` (the paper's hardware), ``"smtx"`` (the software
    baseline) and ``"oracle"`` (an ideal TM for upper-bound curves).
``oracle``
    The ideal backend implementation.

Backend implementations are imported lazily by the registry, so this
package is cheap and cycle-free to import from the runtime layer.
"""

from .protocol import PROTOCOL_ATTRIBUTES, PROTOCOL_METHODS, TMBackend
from .registry import BackendFactory, backend_names, get_backend, register_backend

__all__ = [
    "BackendFactory",
    "PROTOCOL_ATTRIBUTES",
    "PROTOCOL_METHODS",
    "TMBackend",
    "backend_names",
    "get_backend",
    "register_backend",
]
