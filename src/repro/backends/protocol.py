"""The formal TM-backend interface every system object implements.

:class:`TMBackend` is the contract between the paradigm executors of
:mod:`repro.runtime.paradigms` and a transactional-memory implementation.
The seed grew two such implementations by duck typing —
:class:`~repro.core.system.HMTXSystem` (the paper's hardware) and
:class:`~repro.smtx.system.SMTXSystem` (the software baseline) — and the
hybrid-TM literature (Alistarh et al.; Brown & Ravi) makes the case that
the interesting experiments are *comparisons across backends under one
harness*.  That requires the interface to be explicit: this protocol
names every method and attribute an executor may touch, and
``tests/backends/test_conformance.py`` holds each registered backend to
it (same signatures, same :class:`~repro.core.stats.SystemStats` shape,
same abort-cause taxonomy from :mod:`repro.txctl`).

A backend models one machine running one TM scheme.  The surface:

* **lifecycle** — ``thread`` registers a hardware thread; ``allocate_vid``
  / ``ready_for_vid_reset`` / ``vid_reset`` implement the section 4.6
  VID-window protocol (backends with unbounded software VIDs simply never
  become ready).
* **the four MTX instructions** — ``begin_mtx`` / ``commit_mtx`` /
  ``abort_mtx`` / ``init_mtx`` (section 3.1), enforcing in-order commit.
* **memory** — ``load`` / ``store`` carry the issuing thread's VID;
  ``wrong_path_load`` models branch-speculative loads; ``kernel_load`` /
  ``kernel_store`` model handler code (section 5.2); ``output`` buffers
  program output until commit (4.7).
* **observability** — ``stats`` (a :class:`SystemStats`), ``config``,
  ``hierarchy`` (values + latency), ``active_vids`` / ``last_committed``
  / ``committed_output``.

Aborts are reported by raising :class:`~repro.errors.MisspeculationError`
with a :class:`~repro.txctl.causes.AbortCause` stamped at the raise site;
recovery policy belongs to the contention manager, never the backend.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

from ..coherence.hierarchy import AccessResult
from ..coherence.vid import VidSpace
from ..core.config import MachineConfig
from ..core.context import ThreadContext
from ..core.stats import SystemStats

#: The methods every backend must expose with *identical* signatures
#: (checked by the conformance suite; ``runtime_checkable`` protocols
#: only verify presence, not shape).
PROTOCOL_METHODS = (
    "thread",
    "allocate_vid",
    "ready_for_vid_reset",
    "vid_reset",
    "begin_mtx",
    "init_mtx",
    "commit_mtx",
    "abort_mtx",
    "load",
    "store",
    "wrong_path_load",
    "kernel_load",
    "kernel_store",
    "output",
)

#: The attributes executors and experiment drivers read.
PROTOCOL_ATTRIBUTES = (
    "config",
    "stats",
    "vid_space",
    "hierarchy",
    "contexts",
    "active_vids",
    "last_committed",
    "committed_output",
)


@runtime_checkable
class TMBackend(Protocol):
    """Structural interface of a transactional-memory system object."""

    config: MachineConfig
    stats: SystemStats
    vid_space: VidSpace
    contexts: Dict[int, ThreadContext]
    active_vids: Set[int]
    last_committed: int
    committed_output: list

    # -- lifecycle ------------------------------------------------------

    def thread(self, tid: int, core: int) -> ThreadContext: ...

    def allocate_vid(self) -> int: ...

    def ready_for_vid_reset(self) -> bool: ...

    def vid_reset(self) -> int: ...

    # -- the four MTX instructions (section 3.1) ------------------------

    def begin_mtx(self, tid: int, vid: int) -> int: ...

    def init_mtx(self, tid: int, handler: Callable[..., Any]) -> int: ...

    def commit_mtx(self, tid: int, vid: int) -> int: ...

    def abort_mtx(self, tid: int, vid: int) -> int: ...

    # -- memory ---------------------------------------------------------

    def load(self, tid: int, addr: int, now: int = 0) -> AccessResult: ...

    def store(self, tid: int, addr: int, value: int,
              now: int = 0) -> AccessResult: ...

    def wrong_path_load(self, tid: int, addr: int) -> Tuple[int, int]: ...

    def kernel_load(self, tid: int, addr: int) -> AccessResult: ...

    def kernel_store(self, tid: int, addr: int, value: int) -> AccessResult: ...

    def output(self, tid: int, value: Any) -> None: ...
