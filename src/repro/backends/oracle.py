"""An ideal/oracle TM backend: the upper bound every real scheme chases.

The oracle machine has perfect advance knowledge of conflicts, so it pays
*none* of the costs that separate HMTX from SMTX: no per-access logging or
validation (SMTX's tax), no VID-window stalls or capacity aborts (HMTX's).
Speculative values still flow through per-VID buffers with uncommitted
value forwarding, commits still happen atomically in VID order, and cache
*timing* is still real (a plain non-speculative hierarchy) — only the TM
bookkeeping is free and aborts never strike.

Running a paradigm on ``get_backend("oracle")`` therefore yields the
paradigm's intrinsic speedup curve: the gap between an oracle run and an
HMTX/SMTX run of the same workload is exactly the cost of that scheme's
conflict-detection machinery.  (Compare the "HyTM upper bound" harnesses
of Alistarh et al. and Brown & Ravi.)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..coherence.hierarchy import AccessResult, MemoryHierarchy
from ..coherence.vid import VidSpace
from ..core.config import MachineConfig
from ..core.context import ThreadContext
from ..core.stats import SystemStats
from ..errors import MisspeculationError, TransactionUsageError
from ..smtx.memory import SmtxMemory
from ..smtx.system import _MemoryFacade
from ..txctl.causes import AbortCause


class OracleTMSystem:
    """A multicore with a zero-overhead, never-aborting TM."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 sla_enabled: bool = True) -> None:
        # SLAs exist to suppress false aborts; an oracle has none either way.
        del sla_enabled
        self.config = config or MachineConfig()
        self.memory = SmtxMemory()
        self.timing = MemoryHierarchy(self.config.hierarchy_config())
        self.hierarchy = _MemoryFacade(self.memory, self.timing)
        # Perfect hardware tracks unbounded VIDs; the 4.6 reset protocol
        # never triggers.
        self.vid_space = VidSpace(bits=30)
        self.stats = SystemStats(line_size=self.config.line_size)
        self.contexts: Dict[int, ThreadContext] = {}
        self.active_vids: Set[int] = set()
        self.last_committed = 0
        self.committed_output: list = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def thread(self, tid: int, core: int) -> ThreadContext:
        if tid not in self.contexts:
            self.contexts[tid] = ThreadContext(tid=tid, core=core)
        return self.contexts[tid]

    def allocate_vid(self) -> int:
        vid = self.vid_space.allocate()
        self.active_vids.add(vid)
        return vid

    def ready_for_vid_reset(self) -> bool:
        return False

    def vid_reset(self) -> int:
        raise TransactionUsageError("oracle VIDs are unbounded; no reset exists")

    # ------------------------------------------------------------------
    # The four MTX instructions
    # ------------------------------------------------------------------

    def begin_mtx(self, tid: int, vid: int) -> int:
        if vid > 0:
            if vid <= self.last_committed:
                raise TransactionUsageError(
                    f"beginMTX({vid}) after VID {self.last_committed} committed")
            self.active_vids.add(vid)
        self.contexts[tid].vid = vid
        return self.config.op_costs.mtx_instruction

    def init_mtx(self, tid: int, handler: Callable[..., Any]) -> int:
        self.contexts[tid].recovery_handler = handler
        return self.config.op_costs.mtx_instruction

    def commit_mtx(self, tid: int, vid: int) -> int:
        """Atomic in-order group commit; the oracle never needs to validate."""
        if vid != self.last_committed + 1:
            raise TransactionUsageError(
                f"commitMTX({vid}) out of order; expected "
                f"{self.last_committed + 1}")
        if vid not in self.active_vids:
            raise TransactionUsageError(f"commitMTX({vid}) of unknown VID")
        self.memory.commit(vid)
        self.active_vids.discard(vid)
        self.last_committed = vid
        self.stats.record_commit(vid)
        ctx = self.contexts[tid]
        for context in self.contexts.values():
            self.committed_output.extend(context.release_output(vid))
        if ctx.vid == vid:
            ctx.vid = 0
        return self.config.op_costs.mtx_instruction

    def abort_mtx(self, tid: int, vid: int) -> int:
        """Software-detected misspeculation still aborts (the one way)."""
        self._abort()
        raise MisspeculationError(f"explicit abortMTX({vid})", vid=vid,
                                  cause=AbortCause.EXPLICIT)

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def load(self, tid: int, addr: int, now: int = 0) -> AccessResult:
        ctx = self.contexts[tid]
        value, _ = self._read_with_source(ctx.vid, addr)
        latency = self.timing.load(ctx.core, addr, 0, now=now).latency
        if ctx.vid > 0:
            self.stats.record_load(ctx.vid, addr, sla_sent=False)
        return AccessResult(value, latency, True, "oracle")

    def store(self, tid: int, addr: int, value: int,
              now: int = 0) -> AccessResult:
        ctx = self.contexts[tid]
        latency = self.timing.store(ctx.core, addr, 0, 0, now=now).latency
        self.memory.write(ctx.vid, addr, value)
        if ctx.vid > 0:
            self.stats.record_store(ctx.vid, addr)
        return AccessResult(value, latency, True, "oracle")

    def wrong_path_load(self, tid: int, addr: int) -> Tuple[int, int]:
        """Perfect hardware never lets a squashed load mark anything."""
        ctx = self.contexts[tid]
        self.stats.wrong_path_loads += 1
        value = self.memory.read(ctx.vid, addr)
        _, latency = self.timing.peek(ctx.core, addr, 0)
        return value, latency

    def kernel_load(self, tid: int, addr: int) -> AccessResult:
        ctx = self.contexts[tid]
        latency = self.timing.load(ctx.core, addr, 0).latency
        return AccessResult(self.memory.read(0, addr), latency, True, "oracle")

    def kernel_store(self, tid: int, addr: int, value: int) -> AccessResult:
        ctx = self.contexts[tid]
        latency = self.timing.store(ctx.core, addr, 0, 0).latency
        self.memory.write(0, addr, value)
        return AccessResult(value, latency, True, "oracle")

    def output(self, tid: int, value: Any) -> None:
        ctx = self.contexts[tid]
        if ctx.vid > 0:
            ctx.buffer_output(value)
        else:
            self.committed_output.append(value)

    # ------------------------------------------------------------------

    def _read_with_source(self, vid: int, addr: int) -> Tuple[int, int]:
        """Read with uncommitted value forwarding (0 = committed source)."""
        word = addr - (addr % self.memory.backing.word_size)
        if vid > 0:
            for buffer_vid in sorted(self.memory.live_vids(), reverse=True):
                if buffer_vid <= vid and \
                        word in self.memory._buffers[buffer_vid]:
                    return self.memory._buffers[buffer_vid][word], buffer_vid
        return self.memory.backing.read_word(word), 0

    def _abort(self) -> None:
        self.memory.abort_all()
        self.stats.record_abort(explicit=True, cause=AbortCause.EXPLICIT)
        for ctx in self.contexts.values():
            ctx.discard_output()
            ctx.vid = 0
        self.active_vids.clear()
        self.vid_space.rewind(self.last_committed + 1)
