"""Declarative machine topology: sockets, LLC slices, NUMA latencies.

The paper's Table 2 machine is a flat multicore: N cores over one shared
L2 on one snoopy bus.  Section 8 proposes adapting HMTX to a directory
protocol "to allow for efficient scaling to many more cores" — and at
64–256 cores the machine stops being flat: cores live on *sockets*, the
last-level cache is *sliced* per socket, and a cache miss pays a very
different price depending on whether its data is one hop away on the same
die or across a socket interconnect.

:class:`TopologySpec` is the frozen, declarative description of that
shape.  Everything downstream — the cache hierarchy, the directory, the
scheduler's thread placement, the cycle profiler's per-socket attribution
— is *derived* from a spec rather than hard-coded:

* cores are numbered socket-major: socket ``s`` owns cores
  ``[s * cores_per_socket, (s + 1) * cores_per_socket)``;
* each socket carries one LLC slice; line addresses are interleaved
  across sockets (:meth:`TopologySpec.home_socket`), so every line has
  exactly one *home slice* that owns its directory entry;
* message latencies are two-tier: ``intra_hop_latency`` on-die,
  ``cross_hop_latency`` over the socket interconnect;
* commit/abort/VID-reset broadcasts travel a multicast tree — a
  cross-socket tree over the sockets, then an on-die tree per socket —
  so the section 4.6 reset-scrub stall *grows with the topology* instead
  of being a flat constant.

A spec with ``sockets == 1`` is the flat machine: every consumer treats
it exactly like "no topology" (pinned by a hypothesis property in
``tests/integration/test_topology_golden.py``), so the paper's Table 2
results are bit-identical with or without a declared topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Thread-placement policies understood by :func:`place_core`.
PLACEMENT_POLICIES = ("pack", "spread")


@dataclass(frozen=True)
class TopologySpec:
    """Frozen description of a multi-socket machine shape.

    Defaults describe one socket of the Table 2 machine; the presets in
    :data:`TOPOLOGY_PRESETS` scale it to big-iron shapes.
    """

    #: Number of sockets (NUMA nodes).  1 means the flat Table 2 machine.
    sockets: int = 1
    #: Cores per socket; total cores = ``sockets * cores_per_socket``.
    cores_per_socket: int = 4
    #: Per-socket LLC slice capacity in bytes (applies when ``sockets > 1``;
    #: a 1-socket machine keeps the ``HierarchyConfig`` L2 geometry).
    llc_slice_size: int = 8 * 1024 * 1024
    #: Ways per set in each LLC slice.
    llc_slice_assoc: int = 16
    #: Hit latency of an LLC slice, cycles.
    llc_slice_latency: int = 40
    #: One-way on-die hop latency (core <-> local slice / directory bank).
    intra_hop_latency: int = 10
    #: One-way socket-interconnect hop latency (QPI/UPI-class link).
    cross_hop_latency: int = 60
    #: Home-socket interleaving function; ``"line"`` round-robins line
    #: addresses across sockets (the only scheme currently modelled).
    home_interleave: str = "line"
    #: Multiplier on the section 4.6 reset-scrub stall
    #: (:meth:`reset_scrub_latency`).  1.0 is the physical model; the
    #: what-if profiler (``python -m repro obs whatif``) perturbs it to
    #: measure how much of the makespan is causally downstream of the
    #: scrub barrier.  Flat (1-socket) machines have no barrier and
    #: ignore it.
    scrub_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError(f"sockets must be >= 1, got {self.sockets}")
        if self.cores_per_socket < 1:
            raise ValueError(f"cores_per_socket must be >= 1, "
                             f"got {self.cores_per_socket}")
        if self.home_interleave != "line":
            raise ValueError(f"unknown home_interleave "
                             f"{self.home_interleave!r} (expected 'line')")
        for name in ("llc_slice_size", "llc_slice_assoc",
                     "llc_slice_latency", "intra_hop_latency",
                     "cross_hop_latency"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.scrub_scale <= 0:
            raise ValueError(f"scrub_scale must be > 0, "
                             f"got {self.scrub_scale}")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def flat(self) -> bool:
        """A 1-socket spec is the flat machine of the paper."""
        return self.sockets == 1

    def socket_of_core(self, core: int) -> int:
        """Socket owning ``core`` (cores are numbered socket-major)."""
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} outside 0..{self.num_cores - 1}")
        return core // self.cores_per_socket

    def cores_of_socket(self, socket: int) -> range:
        """The core-id range of one socket."""
        if not 0 <= socket < self.sockets:
            raise ValueError(f"socket {socket} outside 0..{self.sockets - 1}")
        start = socket * self.cores_per_socket
        return range(start, start + self.cores_per_socket)

    def home_socket(self, addr: int, line_size: int = 64) -> int:
        """Home socket of a line address (line-interleaved across sockets).

        The home slice holds the line's directory entry and receives the
        line's LLC-bound victims; interleaving by line address spreads
        directory and slice pressure uniformly.
        """
        if self.sockets == 1:
            return 0
        return (addr // line_size) % self.sockets

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------

    def hop_latency(self, socket_a: int, socket_b: int) -> int:
        """One-way message latency between two sockets' tiles."""
        return (self.intra_hop_latency if socket_a == socket_b
                else self.cross_hop_latency)

    def multicast_latency(self, base_latency: int) -> int:
        """Cycles for a commit/abort broadcast over the multicast tree.

        The broadcast first fans across the socket interconnect (a binary
        tree over the sockets, each edge a cross hop), then down each die
        (a binary tree over the cores of one socket, each edge an on-die
        hop).  With one socket this reduces to the flat formula the
        directory hierarchy has always used.
        """
        intra_depth = max(1, math.ceil(
            math.log2(self.cores_per_socket + 1)))
        latency = base_latency + intra_depth * self.intra_hop_latency
        if self.sockets > 1:
            cross_depth = max(1, math.ceil(math.log2(self.sockets)))
            latency += cross_depth * self.cross_hop_latency
        return latency

    def reset_scrub_latency(self, base_latency: int,
                            slice_latency: int) -> int:
        """Cycles a section 4.6 VID reset stalls the whole machine.

        The reset is a multicast plus a *scrub barrier*: every LLC slice
        sweeps its speculative lines and acknowledges up the same tree.
        Slices scrub in parallel, but the acknowledgment collection
        serialises one slice-latency window per socket — the reset-scrub
        stall the ROADMAP's scaling story is about: it grows linearly
        with the socket count on top of the log-depth tree.
        """
        if self.sockets == 1:
            return base_latency
        stall = (self.multicast_latency(base_latency)
                 + self.sockets * slice_latency
                 + self.cross_hop_latency)
        # scrub_scale == 1.0 is exact identity (round(1.0 * int) == int),
        # so the physical model is bit-identical to the pre-knob machine.
        return int(round(self.scrub_scale * stall))

    # ------------------------------------------------------------------
    # Description (reports, tables)
    # ------------------------------------------------------------------

    def describe(self) -> Dict[str, int]:
        """Plain-data shape summary for report artifacts."""
        shape = {
            "sockets": self.sockets,
            "cores_per_socket": self.cores_per_socket,
            "num_cores": self.num_cores,
            "llc_slice_size": self.llc_slice_size,
            "llc_slice_assoc": self.llc_slice_assoc,
            "llc_slice_latency": self.llc_slice_latency,
            "intra_hop_latency": self.intra_hop_latency,
            "cross_hop_latency": self.cross_hop_latency,
        }
        if self.scrub_scale != 1.0:
            # Only a perturbed machine reports the knob, so existing
            # artifacts (REPORT_scaling.json) keep their exact shape.
            shape["scrub_scale"] = self.scrub_scale
        return shape


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

#: Named machine shapes.  ``table2`` is the paper's flat 4-core machine;
#: the big-iron presets follow ROADMAP item 1 (64–256 cores, per-socket
#: LLC slices, directory-style cross-socket coherence).
TOPOLOGY_PRESETS: Dict[str, TopologySpec] = {
    "table2": TopologySpec(sockets=1, cores_per_socket=4),
    "2s64c": TopologySpec(sockets=2, cores_per_socket=32),
    "4s128c": TopologySpec(sockets=4, cores_per_socket=32),
    "4s256c": TopologySpec(sockets=4, cores_per_socket=64),
}


def topology_preset(name: str) -> TopologySpec:
    """Look up a named preset; raises ``KeyError`` with the valid names."""
    try:
        return TOPOLOGY_PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown topology preset {name!r}; choose from "
                       f"{sorted(TOPOLOGY_PRESETS)}") from None


def preset_names() -> Tuple[str, ...]:
    return tuple(sorted(TOPOLOGY_PRESETS))


# ----------------------------------------------------------------------
# Thread placement
# ----------------------------------------------------------------------

def place_core(index: int, num_cores: int, topology: "TopologySpec" = None,
               policy: str = "pack") -> int:
    """Core for the ``index``-th worker thread under a placement policy.

    ``pack``
        Fill cores in id order (socket 0 first) — the historical
        ``index % num_cores`` mapping, so flat machines are bit-identical
        to the pre-topology scheduler.
    ``spread``
        Round-robin workers across sockets first, then across the cores
        of each socket — maximises per-thread LLC slice capacity and
        spreads directory-bank pressure, at the price of cross-socket
        commit traffic.
    """
    if policy not in PLACEMENT_POLICIES:
        raise ValueError(f"unknown placement policy {policy!r}; "
                         f"choose from {PLACEMENT_POLICIES}")
    if policy == "pack" or topology is None or topology.flat:
        return index % num_cores
    slot = index % num_cores
    socket = slot % topology.sockets
    within = (slot // topology.sockets) % topology.cores_per_socket
    return socket * topology.cores_per_socket + within


def placement_map(num_threads: int, num_cores: int,
                  topology: "TopologySpec" = None,
                  policy: str = "pack") -> List[int]:
    """The full worker-index -> core mapping (tests, reports)."""
    return [place_core(i, num_cores, topology, policy)
            for i in range(num_threads)]
