"""130.li (SPEC CPU95): xlisp interpreter.

Hot loop: evaluate one top-level expression per iteration — walk the cons
cell graph (irregular pointer chasing), allocate fresh cells as evaluation
builds results, and mark reachable cells GC-style.  li runs the *largest*
transactions of the suite (Table 1: 181.8M speculative accesses per TX)
with heavy branching (20.5%, 3.65% mispredicted), and avoids 22.5 false
aborts per transaction: mispredicted evaluator branches chase stale cons
pointers into heap regions that earlier expressions are still mutating.

Pipeline split: stage 1 walks the expression list; stage 2 evaluates.
"""

from __future__ import annotations

from ..cpu.isa import Load, Store, Work
from .base import Fragment
from .common import LINE, Lcg, Region, branch_op
from .pipeline import PipelinedBenchmark

_WORK2 = Work(2)


class LiWorkload(PipelinedBenchmark):
    """Cons-graph evaluation model of li's hot loop."""

    name = "130.li"
    hot_loop_fraction = 1.0
    mispredict_rate = 0.0365

    branch_pct = 0.205
    # Calibrated DSWP stage split (see EXPERIMENTS.md):
    stage1_work = 2208
    epilogue_work = 14900

    def __init__(self, iterations: int = 8, eval_steps: int = 850,
                 heap_lines: int = 224, alloc_per_step: int = 1) -> None:
        super().__init__(iterations)
        self.eval_steps = eval_steps
        self.alloc_per_step = alloc_per_step
        # Shared cons heap: read-mostly graph built at setup.
        self.heap = Region(0x400_0000, heap_lines * LINE)
        # Per-iteration allocation frontier (fresh cells -> big write set).
        self.frontiers = Region(0x500_0000, iterations * 64 * LINE)

    def setup_domain(self, memory) -> None:
        rng = Lcg(0x11E4)
        cells = self.heap.size // LINE
        for c in range(cells):
            # car = value, cdr = pointer to another cell.
            cell = self.heap.line(c)
            memory.write_word(cell, (c * 17 + 5) & 0xFFFF)
            memory.write_word(cell + 8, self.heap.line(rng.next(cells)))

    def _frontier(self, i: int) -> int:
        return self.frontiers.base + i * 64 * LINE

    def work_body(self, i: int, element: int) -> Fragment:
        rng = Lcg(0x11E400 + i)
        cells = self.heap.size // LINE
        cell = self.heap.line((element * 313) % cells)
        frontier = self._frontier(i)
        wrong = (self.result_slot(i - 1),) if i else ()
        allocated = 0
        checksum = element
        for step in range(self.eval_steps):
            car = yield Load(cell)
            cdr = yield Load(cell + 8)
            checksum = (checksum * 33 + car) & 0xFFFFFFFF
            # Evaluator dispatch: branchy, occasionally chasing a stale
            # pointer into the previous expression's freshly-written cells.
            burst_wrong = wrong if step % 4 == 0 else ()
            yield branch_op(rng, burst_wrong)
            yield branch_op(rng, burst_wrong)
            if (car + step) % 5 == 0:
                # Allocate a result cell on this expression's frontier.
                new_cell = frontier + (allocated % (64 * LINE // 16)) * 16
                yield Store(new_cell, checksum & 0xFFFF)
                yield Store(new_cell + 8, cell)
                allocated += 1
            yield _WORK2
            cell = cdr
        return (checksum + allocated) & 0xFFFFFFFF

    def golden(self, i: int) -> int:
        element = self.element_payload(i)
        rng_setup = Lcg(0x11E4)
        cells = self.heap.size // LINE
        cars = [(c * 17 + 5) & 0xFFFF for c in range(cells)]
        cdrs = [rng_setup.next(cells) for _ in range(cells)]
        rng = Lcg(0x11E400 + i)
        idx = (element * 313) % cells
        allocated = 0
        checksum = element
        for step in range(self.eval_steps):
            car = cars[idx]
            checksum = (checksum * 33 + car) & 0xFFFFFFFF
            for _ in range(2):
                rng.next(4)
            if (car + step) % 5 == 0:
                allocated += 1
            idx = cdrs[idx]
        return (checksum + allocated) & 0xFFFFFFFF

    def smtx_shared_regions(self):
        return super().smtx_shared_regions() + [self.heap.span(),
                                                self.frontiers.span()]
