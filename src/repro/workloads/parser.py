"""197.parser (SPEC CPU2000): link-grammar natural-language parsing.

Hot loop: parse one sentence per iteration — look each word up in the
dictionary, then search for a consistent linkage, building parse nodes as
it goes.  Parser is branch-heavy (19.2%) but predictable (1.05%
mispredicts); its claim to fame in Table 1 is avoiding the most false
aborts per transaction (24.6): mispredicted linkage branches issue loads
against parse structures that logically-earlier sentences are still
writing.

Pipeline split: stage 1 walks the sentence list; stage 2 parses.
"""

from __future__ import annotations

from ..cpu.isa import Load, Store, Work
from .base import Fragment
from .common import LINE, Lcg, Region, branch_op
from .pipeline import PipelinedBenchmark


class ParserWorkload(PipelinedBenchmark):
    """Link-grammar model of parser's hot loop."""

    name = "197.parser"
    hot_loop_fraction = 1.0
    mispredict_rate = 0.0105

    branch_pct = 0.192
    # Calibrated DSWP stage split (see EXPERIMENTS.md):
    stage1_work = 644
    epilogue_work = 4100

    def __init__(self, iterations: int = 14, words_per_sentence: int = 36,
                 dict_lines: int = 1024, linkage_passes: int = 3) -> None:
        super().__init__(iterations)
        self.words_per_sentence = words_per_sentence
        self.linkage_passes = linkage_passes
        self.dictionary = Region(0x380_0000, dict_lines * LINE)
        # Per-sentence parse-node arena (written while building linkages).
        self.arenas = Region(0x390_0000, iterations * 16 * LINE)

    def setup_domain(self, memory) -> None:
        for i in range(self.dictionary.size // LINE):
            memory.write_word(self.dictionary.line(i), (i * 769 + 31) & 0xFFFF)

    def _arena(self, i: int) -> int:
        return self.arenas.base + i * 16 * LINE

    def work_body(self, i: int, element: int) -> Fragment:
        rng = Lcg(0x9A25E + i)
        arena = self._arena(i)
        dict_lines = self.dictionary.size // LINE
        wrong = (self.result_slot(i - 1),) if i else ()
        nodes = 0
        checksum = element
        for p in range(self.linkage_passes):
            for w in range(self.words_per_sentence):
                # A sentence re-uses a small vocabulary: its words map
                # to ~6 hot dictionary lines, re-probed on every pass.
                word_id = (element * 31 + (w % 6) * 7) & 0xFFFF
                entry = yield Load(self.dictionary.line(word_id % dict_lines))
                entry2 = yield Load(self.dictionary.line((word_id // 7) % dict_lines))
                # Linkage decision: branches; mispredicted ones chase a
                # stale pointer into the previous sentence's arena.
                yield branch_op(rng, wrong)
                yield branch_op(rng, wrong)
                if (entry + entry2 + w) % 3 == 0:
                    yield Store(arena + 8 * (nodes % 128), word_id)
                    nodes += 1
                checksum = (checksum + entry * 2 + entry2) & 0xFFFFFFFF
                yield Work(2)
            yield branch_op(rng)
        return (checksum + nodes) & 0xFFFFFFFF

    def golden(self, i: int) -> int:
        element = self.element_payload(i)
        dict_lines = self.dictionary.size // LINE
        nodes = 0
        checksum = element
        for p in range(self.linkage_passes):
            for w in range(self.words_per_sentence):
                word_id = (element * 31 + (w % 6) * 7) & 0xFFFF
                entry = ((word_id % dict_lines) * 769 + 31) & 0xFFFF
                entry2 = (((word_id // 7) % dict_lines) * 769 + 31) & 0xFFFF
                if (entry + entry2 + w) % 3 == 0:
                    nodes += 1
                checksum = (checksum + entry * 2 + entry2) & 0xFFFFFFFF
        return (checksum + nodes) & 0xFFFFFFFF

    def smtx_shared_regions(self):
        return super().smtx_shared_regions() + [self.dictionary.span(),
                                                self.arenas.span()]
