"""ispell (MiBench): spell-checking via dictionary hash lookups.

Hot loop: read the next word, hash it, probe the dictionary, record
whether it is spelled correctly.  Transactions are *tiny* (Table 1: 43,752
speculative accesses per TX — by far the smallest) and have almost no
intra-transaction locality, which is why ispell needs SLAs on 13% of its
speculative loads, the highest of any benchmark.

Pipeline split: stage 1 walks the word list; stage 2 hashes and probes.
"""

from __future__ import annotations

from ..cpu.isa import Load, Store, Work
from .base import Fragment
from .common import LINE, Lcg, Region, branch_op
from .pipeline import PipelinedBenchmark


class IspellWorkload(PipelinedBenchmark):
    """Dictionary-probe model of ispell's hot loop."""

    name = "ispell"
    hot_loop_fraction = 0.865
    mispredict_rate = 0.0282

    branch_pct = 0.166
    # Calibrated DSWP stage split (see EXPERIMENTS.md):
    stage1_work = 226
    epilogue_work = 2580

    def __init__(self, iterations: int = 64, probes: int = 4,
                 dict_lines: int = 2048) -> None:
        super().__init__(iterations)
        self.probes = probes
        self.dictionary = Region(0x300_0000, dict_lines * LINE)

    def setup_domain(self, memory) -> None:
        for i in range(self.dictionary.size // LINE):
            value = (i * 2654435761) & 0xFFFF
            for word in range(8):
                memory.write_word(self.dictionary.line(i) + 8 * word, value)

    def _probe_sequence(self, i: int):
        rng = Lcg(0x15BE11 + i)
        return [rng.next(self.dictionary.size // LINE) for _ in range(self.probes)]

    def work_body(self, i: int, element: int) -> Fragment:
        rng = Lcg(0xB4A0C + i)
        wrong = (self.result_slot(i - 1),) if i else ()
        found = 0
        for bucket in self._probe_sequence(i):
            line = self.dictionary.line(bucket)
            entry = 0
            # Walk the bucket's chain words and compare characters: several
            # touches to the same line, so only the first needs an SLA.
            for word in range(6):
                entry = (entry + (yield Load(line + 8 * (word % 8)))) & 0xFFFFFFFF
            yield branch_op(rng, wrong)
            found = (found * 31 + entry + element) & 0xFFFFFFFF
            yield Work(6)
        # Scratch note in the word's own result line (re-used, low SLA cost).
        yield Store(self.result_slot(i) + 8, found & 0xFF)
        yield branch_op(rng)
        return found

    def golden(self, i: int) -> int:
        element = self.element_payload(i)
        found = 0
        for bucket in self._probe_sequence(i):
            entry = (6 * ((bucket * 2654435761) & 0xFFFF)) & 0xFFFFFFFF  # 6 equal words
            found = (found * 31 + entry + element) & 0xFFFFFFFF
        return found

    def smtx_shared_regions(self):
        return super().smtx_shared_regions() + [self.dictionary.span()]
