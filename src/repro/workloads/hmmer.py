"""456.hmmer (SPEC CPU2006): profile-HMM sequence search (Viterbi DP).

Hot loop: for each candidate sequence, run the Viterbi dynamic program
against the profile HMM.  The DP sweeps small, hot rows repeatedly, so
intra-transaction locality is excellent — hmmer needs SLAs on only 1.40%
of speculative loads and avoids almost no aborts (0.187 per TX), with the
lowest branch density of the suite (4.83%).

Pipeline split: stage 1 fetches the next sequence; stage 2 runs the DP.
"""

from __future__ import annotations

from ..cpu.isa import Load, Store, Work
from .base import Fragment
from .common import LINE, Lcg, Region, branch_op
from .pipeline import PipelinedBenchmark


class HmmerWorkload(PipelinedBenchmark):
    """Viterbi-sweep model of hmmer's hot loop."""

    name = "456.hmmer"
    hot_loop_fraction = 1.0
    mispredict_rate = 0.0103

    branch_pct = 0.0483
    # Calibrated DSWP stage split (see EXPERIMENTS.md):
    stage1_work = 247
    epilogue_work = 1576

    def __init__(self, iterations: int = 40, model_states: int = 24,
                 sequence_len: int = 4) -> None:
        super().__init__(iterations)
        self.model_states = model_states
        self.sequence_len = sequence_len
        # Profile coefficients: a few hot lines, re-read constantly.
        self.model = Region(0x310_0000, 4 * LINE)
        # One DP row per iteration (private), updated in place many times.
        self.dp_rows = Region(0x320_0000, iterations * 2 * LINE)

    def setup_domain(self, memory) -> None:
        for i in range(self.model.size // 8):
            memory.write_word(self.model.base + 8 * i, (i * 37 + 11) & 0xFF)

    def _dp_row(self, i: int) -> int:
        return self.dp_rows.base + i * 2 * LINE

    def work_body(self, i: int, element: int) -> Fragment:
        rng = Lcg(0x6A33E2 + i)
        row = self._dp_row(i)
        score = element
        for pos in range(self.sequence_len):
            for state in range(self.model_states):
                coeff = yield Load(self.model.base + 8 * ((state * 3 + pos) %
                                                          (self.model.size // 8)))
                cell = row + 8 * (state % 16)
                prev = yield Load(cell)
                score = (prev + coeff * (element + pos)) & 0xFFFFFFFF
                yield Store(cell, score)
            yield Work(10)
            yield branch_op(rng)
        return score

    def golden(self, i: int) -> int:
        element = self.element_payload(i)
        cells = [0] * 16
        score = element
        for pos in range(self.sequence_len):
            for state in range(self.model_states):
                coeff = (((state * 3 + pos) % (self.model.size // 8)) * 37 + 11) & 0xFF
                idx = state % 16
                score = (cells[idx] + coeff * (element + pos)) & 0xFFFFFFFF
                cells[idx] = score
        return score

    def smtx_shared_regions(self):
        return super().smtx_shared_regions() + [self.model.span()]
