"""186.crafty (SPEC CPU2000): chess move generation and evaluation.

Hot loop: for each game position, generate candidate moves and evaluate
the resulting boards.  Crafty is the branchiest behaviour in the suite by
misprediction rate (5.59% of its 13.1% branch mix) — data-dependent move
legality and alpha-beta cutoffs defeat the predictor — which is what makes
wrong-path loads (and hence SLAs, 4.92% of loads) prominent.

Pipeline split: stage 1 walks the position list; stage 2 searches.
"""

from __future__ import annotations

from ..cpu.isa import Load, Store, Work
from .base import Fragment
from .common import LINE, Lcg, Region, branch_op
from .pipeline import PipelinedBenchmark


class CraftyWorkload(PipelinedBenchmark):
    """Move-search model of crafty's hot loop."""

    name = "186.crafty"
    hot_loop_fraction = 0.995
    mispredict_rate = 0.0559

    branch_pct = 0.131
    # Calibrated DSWP stage split (see EXPERIMENTS.md):
    stage1_work = 843
    epilogue_work = 5900

    def __init__(self, iterations: int = 24, moves: int = 24,
                 attack_lines: int = 512) -> None:
        super().__init__(iterations)
        self.moves = moves
        # Precomputed attack/eval tables, probed data-dependently.
        self.attack_tables = Region(0x330_0000, attack_lines * LINE)
        # Per-iteration scratch: move list + board copy (small write set).
        self.scratch = Region(0x340_0000, iterations * 4 * LINE)

    def setup_domain(self, memory) -> None:
        for i in range(self.attack_tables.size // LINE):
            value = (i * 193 + 7) & 0x3FF
            for word in range(3):
                memory.write_word(self.attack_tables.line(i) + 8 * word, value)

    def _scratch(self, i: int) -> int:
        return self.scratch.base + i * 4 * LINE

    def work_body(self, i: int, element: int) -> Fragment:
        rng = Lcg(0xC4AF7 + i)
        scratch = self._scratch(i)
        table_lines = self.attack_tables.size // LINE
        window = (element * 131) % (table_lines - 16)
        wrong = (self.result_slot(i - 1),) if i else ()
        best = 0
        for move in range(self.moves):
            # Generate: probe this position's hot window of the attack
            # tables (mask, mobility, piece value from each probed line).
            legal = 0
            for probe in range(3):
                line = self.attack_tables.line(window + (move * 5 + probe * 3) % 16)
                for word in range(3):
                    legal += yield Load(line + 8 * word)
            # Evaluate: branch storm; mispredicted cutoffs chase a stale
            # pointer into the previous position's (still-unwritten) result.
            yield branch_op(rng, wrong)
            yield branch_op(rng, wrong)
            yield branch_op(rng, wrong)
            yield Work(8)
            score = (legal * (move + 1) + element) & 0xFFFFFFFF
            yield Store(scratch + 8 * (move % 8), score)
            prev = yield Load(scratch + 8 * (move % 8))
            if score > best:
                best = score
            yield branch_op(rng)
            best = (best + (prev & 1)) & 0xFFFFFFFF
        return best

    def golden(self, i: int) -> int:
        element = self.element_payload(i)
        table_lines = self.attack_tables.size // LINE
        window = (element * 131) % (table_lines - 16)
        best = 0
        for move in range(self.moves):
            legal = 0
            for probe in range(3):
                idx = window + (move * 5 + probe * 3) % 16
                legal += 3 * ((idx * 193 + 7) & 0x3FF)
            score = (legal * (move + 1) + element) & 0xFFFFFFFF
            if score > best:
                best = score
            best = (best + (score & 1)) & 0xFFFFFFFF
        return best

    def smtx_shared_regions(self):
        return super().smtx_shared_regions() + [self.attack_tables.span(),
                                                self.scratch.span()]
