"""164.gzip (SPEC CPU2000): LZ77 compression over input blocks.

Hot loop: for each input block, slide a window over the data, probe the
hash chain for previous occurrences, and emit literals/matches.  The hash
table is the classic shared, irregularly-updated structure; block data is
streamed (modest locality — 7.08% of loads need SLAs).

Pipeline split: stage 1 produces the next block; stage 2 deflates it.
"""

from __future__ import annotations

from ..cpu.isa import Load, Store, Work
from .base import Fragment
from .common import LINE, Lcg, Region, branch_op
from .pipeline import PipelinedBenchmark


class GzipWorkload(PipelinedBenchmark):
    """Deflate model of gzip's hot loop."""

    name = "164.gzip"
    hot_loop_fraction = 0.984
    mispredict_rate = 0.0268

    branch_pct = 0.146
    # Calibrated DSWP stage split (see EXPERIMENTS.md):
    stage1_work = 818
    epilogue_work = 7300

    def __init__(self, iterations: int = 20, block_words: int = 40,
                 hash_lines: int = 64) -> None:
        super().__init__(iterations)
        self.block_words = block_words
        # Input blocks: one private region per iteration (streamed reads).
        self.blocks = Region(0x350_0000, iterations * ((block_words * 8 + LINE - 1)
                                                       // LINE + 1) * LINE)
        # Per-iteration private hash table slice and output buffer.  (The
        # real deflate hash table is shared; the manual parallelisation
        # privatises it per block, as the paper's transformations must to
        # keep the parallel stage independent.)
        self.hash_tables = Region(0x360_0000, iterations * hash_lines // 8 * LINE)
        self.output = Region(0x370_0000, iterations * 8 * LINE)
        self.hash_lines = hash_lines // 8

    def setup_domain(self, memory) -> None:
        rng = Lcg(0x621F)
        for i in range(self.blocks.size // 8):
            memory.write_word(self.blocks.base + 8 * i, rng.next(251))

    def _block(self, i: int) -> int:
        stride = ((self.block_words * 8 + LINE - 1) // LINE + 1) * LINE
        return self.blocks.base + i * stride

    def _hash_table(self, i: int) -> int:
        return self.hash_tables.base + i * self.hash_lines * LINE

    def _output(self, i: int) -> int:
        return self.output.base + i * 8 * LINE

    def work_body(self, i: int, element: int) -> Fragment:
        rng = Lcg(0x621F00 + i)
        block, table, out = self._block(i), self._hash_table(i), self._output(i)
        wrong = (self.result_slot(i - 1),) if i else ()
        crc = element
        emitted = 0
        for w in range(self.block_words):
            byte = yield Load(block + 8 * w)
            bucket = (byte * 2654435761 >> 8) % (self.hash_lines * 8)
            prev = yield Load(table + 8 * (bucket % (self.hash_lines * 8)))
            yield Store(table + 8 * (bucket % (self.hash_lines * 8)), w)
            match = prev != 0 and (byte & 3) == 0
            yield branch_op(rng, wrong)
            if match:
                crc = (crc + prev * 3) & 0xFFFFFFFF
            else:
                crc = (crc + byte) & 0xFFFFFFFF
                yield Store(out + 8 * (emitted % 64), byte)
                emitted += 1
            yield Work(3)
        return crc

    def golden(self, i: int) -> int:
        element = self.element_payload(i)
        # Recreate the block contents exactly as setup wrote them.
        rng_data = Lcg(0x621F)
        words = self.blocks.size // 8
        data = [rng_data.next(251) for _ in range(words)]
        stride_words = (((self.block_words * 8 + LINE - 1) // LINE + 1) * LINE) // 8
        base_index = i * stride_words
        table = {}
        crc = element
        for w in range(self.block_words):
            byte = data[base_index + w]
            bucket = (byte * 2654435761 >> 8) % (self.hash_lines * 8)
            prev = table.get(bucket, 0)
            table[bucket] = w
            if prev != 0 and (byte & 3) == 0:
                crc = (crc + prev * 3) & 0xFFFFFFFF
            else:
                crc = (crc + byte) & 0xFFFFFFFF
        return crc

    def smtx_shared_regions(self):
        return super().smtx_shared_regions() + [self.blocks.span(),
                                                self.hash_tables.span()]
