"""Shared building blocks for the benchmark models.

Each of the 8 evaluated benchmarks (Table 1) is modelled as a synthetic
program whose hot loop reproduces, at ~1/1000 scale, the original's

* parallelisation paradigm and stage split,
* speculative-access count and read/write-set footprint per transaction,
* branch density and misprediction rate (via calibrated predictors),
* wrong-path-load behaviour (what the SLA mechanism must absorb).

The helpers here keep the individual models small: deterministic
pseudo-randomness, address-region bookkeeping, and branch-burst emission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..cpu.branch import CalibratedPredictor
from ..cpu.core_model import CoreExecutor
from ..cpu.isa import Branch
from .base import Fragment

LINE = 64
WORD = 8


class Lcg:
    """Deterministic 64-bit LCG for reproducible synthetic access streams."""

    _MULT = 6364136223846793005
    _INC = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self._state = seed & self._MASK

    def next(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``."""
        self._state = (self._state * self._MULT + self._INC) & self._MASK
        return (self._state >> 17) % bound


@dataclass(frozen=True)
class Region:
    """A named address region of the workload's layout."""

    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def word(self, index: int) -> int:
        """Address of the ``index``-th word (wraps within the region)."""
        return self.base + (index * WORD) % self.size

    def line(self, index: int) -> int:
        """Address of the ``index``-th line (wraps within the region)."""
        return self.base + (index * LINE) % self.size

    def span(self) -> Tuple[int, int]:
        return (self.base, self.end)


#: Branch ops are immutable value objects, so the two wrong-path-free
#: outcomes are shared singletons — workload loops yield them thousands of
#: times and the construction cost is pure overhead.
_BRANCH_TAKEN = Branch(taken=True)
_BRANCH_NOT_TAKEN = Branch(taken=False)


def branch_op(rng: Lcg, wrong_path: Tuple[int, ...] = ()) -> Branch:
    """One data-dependent branch op (the single-branch ``branch_burst``).

    Returning the op instead of yielding it lets hot workload bodies do
    ``yield branch_op(rng)`` without spinning up a subgenerator per burst.
    """
    taken = rng.next(4) != 0
    if wrong_path:
        return Branch(taken=taken, wrong_path_loads=wrong_path)
    return _BRANCH_TAKEN if taken else _BRANCH_NOT_TAKEN


def branch_burst(count: int, rng: Lcg,
                 wrong_path: Tuple[int, ...] = ()) -> Fragment:
    """Emit ``count`` data-dependent branches.

    Outcomes follow a pseudo-random pattern so the calibrated predictor's
    misprediction stream is exercised; each branch carries the same
    wrong-path load set (typically a line a logically-earlier transaction
    still has to write — the section 5.1 hazard).
    """
    for _ in range(count):
        yield branch_op(rng, wrong_path)


def calibrated_executor_factory(mispredict_rate: float, seed: int = 0xFACE):
    """Executor factory whose predictors mispredict at the Table 1 rate."""

    def factory(system) -> CoreExecutor:
        counter = {"n": 0}

        def predictor():
            counter["n"] += 1
            return CalibratedPredictor(mispredict_rate,
                                       seed=seed + 7919 * counter["n"])

        return CoreExecutor(system, predictor_factory=predictor)

    return factory


def executor_factory_for(workload) -> Optional[object]:
    """The calibrated executor factory for a benchmark model (or None)."""
    rate = getattr(workload, "mispredict_rate", None)
    if rate is None:
        return None
    return calibrated_executor_factory(rate)
