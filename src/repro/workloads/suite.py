"""The evaluated benchmark suite: 8 models and their Table 1 ground truth.

``make_benchmark(name, scale)`` builds a model instance; ``scale`` grows or
shrinks iteration counts and per-transaction work together (1.0 = the
default simulation size used by the benchmarks; the paper's native sizes
are ~1000x larger — see EXPERIMENTS.md).

``PAPER_TABLE1`` records the published per-benchmark statistics so the
reproduction reports paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from .alvinn import AlvinnWorkload
from .base import Workload
from .bzip2 import Bzip2Workload
from .crafty import CraftyWorkload
from .gzip import GzipWorkload
from .hmmer import HmmerWorkload
from .ispell import IspellWorkload
from .li import LiWorkload
from .parser import ParserWorkload


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    benchmark: str
    paradigm: str
    hot_loop_pct: float
    spec_accesses_per_tx: float
    aborts_avoided_per_tx: float
    sla_pct_of_loads: float
    branch_pct: float
    mispredict_pct: float


PAPER_TABLE1: Dict[str, Table1Row] = {
    "052.alvinn": Table1Row("052.alvinn", "DOALL", 85.5, 2_290_717, 0.158,
                            1.28, 11.5, 0.245),
    "130.li": Table1Row("130.li", "PS-DSWP", 100.0, 181_844_120, 22.5,
                        4.21, 20.5, 3.65),
    "164.gzip": Table1Row("164.gzip", "PS-DSWP", 98.4, 6_248_356, 3.32,
                          7.08, 14.6, 2.68),
    "186.crafty": Table1Row("186.crafty", "PS-DSWP", 99.5, 4_498_903, 1.50,
                            4.92, 13.1, 5.59),
    "197.parser": Table1Row("197.parser", "PS-DSWP", 100.0, 24_733_144, 24.6,
                            2.56, 19.2, 1.05),
    "256.bzip2": Table1Row("256.bzip2", "PS-DSWP", 98.5, 131_271_380, 17.3,
                           6.04, 12.6, 1.33),
    "456.hmmer": Table1Row("456.hmmer", "PS-DSWP", 100.0, 1_709_195, 0.187,
                           1.40, 4.83, 1.03),
    "ispell": Table1Row("ispell", "PS-DSWP", 86.5, 43_752, 0.028,
                        13.0, 16.6, 2.82),
}

#: Paper Figure 8: benchmarks with a published SMTX comparison point.
SMTX_COMPARABLE = ("052.alvinn", "130.li", "164.gzip", "197.parser",
                   "256.bzip2", "456.hmmer")


def _scaled(value: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, round(value * scale))


_FACTORIES: Dict[str, Callable[[float], Workload]] = {
    "052.alvinn": lambda s: AlvinnWorkload(iterations=_scaled(32, s)),
    "130.li": lambda s: LiWorkload(iterations=_scaled(8, s)),
    "164.gzip": lambda s: GzipWorkload(iterations=_scaled(20, s)),
    "186.crafty": lambda s: CraftyWorkload(iterations=_scaled(24, s)),
    "197.parser": lambda s: ParserWorkload(iterations=_scaled(14, s)),
    "256.bzip2": lambda s: Bzip2Workload(iterations=_scaled(8, s)),
    "456.hmmer": lambda s: HmmerWorkload(iterations=_scaled(40, s)),
    "ispell": lambda s: IspellWorkload(iterations=_scaled(64, s)),
}

BENCHMARK_NAMES = tuple(_FACTORIES)


def make_benchmark(name: str, scale: float = 1.0) -> Workload:
    """Instantiate one benchmark model at the given size scale."""
    if name not in _FACTORIES:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"choose from {sorted(_FACTORIES)}")
    return _FACTORIES[name](scale)


def all_benchmarks(scale: float = 1.0) -> Dict[str, Workload]:
    """Fresh instances of every benchmark model."""
    return {name: make_benchmark(name, scale) for name in _FACTORIES}
