"""The workload registry and the evaluated benchmark suite.

``make_workload(name, scale, **options)`` builds any registered workload
by name — the 8 Table 1 benchmark models, the adversarial contention
microbenchmarks, and the :mod:`repro.svc` service workloads all share
this one lookup (mirroring the :mod:`repro.backends` registry: eager
factories plus lazy ``(module, attr)`` entries, so importing the suite
pulls in no optional subsystem).  New workloads plug in with
:func:`register_workload` and immediately work everywhere a workload
name is accepted: the sweep engine, ``python -m repro analyze``, and the
svc CLI.

``make_benchmark(name, scale)`` is the Table 1 view of the registry —
it accepts only the 8 evaluated benchmarks (``scale`` grows or shrinks
iteration counts; 1.0 = the default simulation size; the paper's native
sizes are ~1000x larger — see EXPERIMENTS.md).

``PAPER_TABLE1`` records the published per-benchmark statistics so the
reproduction reports paper-vs-measured side by side.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .alvinn import AlvinnWorkload
from .base import Workload
from .bzip2 import Bzip2Workload
from .crafty import CraftyWorkload
from .gzip import GzipWorkload
from .hmmer import HmmerWorkload
from .ispell import IspellWorkload
from .li import LiWorkload
from .parser import ParserWorkload


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    benchmark: str
    paradigm: str
    hot_loop_pct: float
    spec_accesses_per_tx: float
    aborts_avoided_per_tx: float
    sla_pct_of_loads: float
    branch_pct: float
    mispredict_pct: float


PAPER_TABLE1: Dict[str, Table1Row] = {
    "052.alvinn": Table1Row("052.alvinn", "DOALL", 85.5, 2_290_717, 0.158,
                            1.28, 11.5, 0.245),
    "130.li": Table1Row("130.li", "PS-DSWP", 100.0, 181_844_120, 22.5,
                        4.21, 20.5, 3.65),
    "164.gzip": Table1Row("164.gzip", "PS-DSWP", 98.4, 6_248_356, 3.32,
                          7.08, 14.6, 2.68),
    "186.crafty": Table1Row("186.crafty", "PS-DSWP", 99.5, 4_498_903, 1.50,
                            4.92, 13.1, 5.59),
    "197.parser": Table1Row("197.parser", "PS-DSWP", 100.0, 24_733_144, 24.6,
                            2.56, 19.2, 1.05),
    "256.bzip2": Table1Row("256.bzip2", "PS-DSWP", 98.5, 131_271_380, 17.3,
                           6.04, 12.6, 1.33),
    "456.hmmer": Table1Row("456.hmmer", "PS-DSWP", 100.0, 1_709_195, 0.187,
                           1.40, 4.83, 1.03),
    "ispell": Table1Row("ispell", "PS-DSWP", 86.5, 43_752, 0.028,
                        13.0, 16.6, 2.82),
}

#: Paper Figure 8: benchmarks with a published SMTX comparison point.
SMTX_COMPARABLE = ("052.alvinn", "130.li", "164.gzip", "197.parser",
                   "256.bzip2", "456.hmmer")


def _scaled(value: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, round(value * scale))


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

#: A workload factory: ``factory(scale, **options) -> Workload``.
WorkloadFactory = Callable[..., Workload]

_FACTORIES: Dict[str, WorkloadFactory] = {}
#: Lazy entries (import path + attribute) so the registry can name
#: workloads from optional subsystems without importing them eagerly.
_LAZY: Dict[str, Tuple[str, str]] = {
    "contended-list": ("repro.workloads.contended",
                       "contended_list_workload"),
    "capacity-hog": ("repro.workloads.contended", "capacity_hog_workload"),
    "svc-kv": ("repro.svc.kvstore", "kv_workload"),
    "svc-kv-read": ("repro.svc.kvstore", "kv_read_workload"),
    "svc-oltp": ("repro.svc.kvstore", "oltp_workload"),
    "svc-adversary": ("repro.svc.adversary", "adversary_workload"),
}

#: Names starting with this prefix resolve to serialized adversarial
#: survivors: ``svc-survivor:<path to survivor JSON>``.
SURVIVOR_PREFIX = "svc-survivor:"


def register_workload(name: str, factory: WorkloadFactory) -> WorkloadFactory:
    """Register ``factory`` under ``name``; duplicate names are an error."""
    if name in _FACTORIES or name in _LAZY:
        raise ValueError(f"workload {name!r} is already registered")
    _FACTORIES[name] = factory
    return factory


def workload_names() -> Tuple[str, ...]:
    """Every registered workload name (sorted; survivors excluded)."""
    return tuple(sorted(set(_FACTORIES) | set(_LAZY)))


def make_workload(name: str, scale: float = 1.0, **options) -> Workload:
    """Instantiate any registered workload at the given size scale.

    ``options`` are factory keyword arguments (e.g. ``seed=`` for the
    svc family); factories that take none reject extras loudly.
    """
    if name.startswith(SURVIVOR_PREFIX):
        from ..svc.adversary import survivor_workload  # lint-ok: RL005 (survivor replay only; keeps the svc subsystem out of suite imports)
        return survivor_workload(name[len(SURVIVOR_PREFIX):], **options)
    factory = _FACTORIES.get(name)
    if factory is None:
        lazy = _LAZY.get(name)
        if lazy is None:
            raise KeyError(f"unknown workload {name!r}; "
                           f"choose from {workload_names()}")
        module_name, attr = lazy
        factory = getattr(importlib.import_module(module_name), attr)
        _FACTORIES[name] = factory
    return factory(scale, **options)


# ----------------------------------------------------------------------
# The Table 1 suite, registered like everything else
# ----------------------------------------------------------------------

BENCHMARK_NAMES = ("052.alvinn", "130.li", "164.gzip", "186.crafty",
                   "197.parser", "256.bzip2", "456.hmmer", "ispell")

register_workload("052.alvinn",
                  lambda s, **kw: AlvinnWorkload(iterations=_scaled(32, s),
                                                 **kw))
register_workload("130.li",
                  lambda s, **kw: LiWorkload(iterations=_scaled(8, s), **kw))
register_workload("164.gzip",
                  lambda s, **kw: GzipWorkload(iterations=_scaled(20, s),
                                               **kw))
register_workload("186.crafty",
                  lambda s, **kw: CraftyWorkload(iterations=_scaled(24, s),
                                                 **kw))
register_workload("197.parser",
                  lambda s, **kw: ParserWorkload(iterations=_scaled(14, s),
                                                 **kw))
register_workload("256.bzip2",
                  lambda s, **kw: Bzip2Workload(iterations=_scaled(8, s),
                                                **kw))
register_workload("456.hmmer",
                  lambda s, **kw: HmmerWorkload(iterations=_scaled(40, s),
                                                **kw))
register_workload("ispell",
                  lambda s, **kw: IspellWorkload(iterations=_scaled(64, s),
                                                 **kw))


def make_benchmark(name: str, scale: float = 1.0) -> Workload:
    """Instantiate one Table 1 benchmark model at the given size scale."""
    if name not in BENCHMARK_NAMES:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"choose from {sorted(BENCHMARK_NAMES)}")
    return make_workload(name, scale)


def all_benchmarks(scale: float = 1.0) -> Dict[str, Workload]:
    """Fresh instances of every benchmark model."""
    return {name: make_benchmark(name, scale) for name in BENCHMARK_NAMES}
