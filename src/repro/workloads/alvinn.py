"""052.alvinn (SPEC CPU92/95): neural-network road-following training.

Hot loop: train the perceptron on one input pattern per iteration —
forward propagation reads the (hot, heavily re-read) weight matrices;
backpropagation accumulates into a *per-pattern* gradient slice.  The
iterations are independent, so alvinn is the one DOALL benchmark of the
suite (Table 1), with dense affine access patterns: only 1.28% of loads
need SLAs and it has the lowest misprediction rate (0.245%).

DOALL execution wraps each iteration in its own single-threaded
transaction (TLS); the same body also runs sequentially.
"""

from __future__ import annotations

from typing import Any

from ..cpu.isa import Branch, Load, Store, Work
from .base import Fragment, Workload
from .common import LINE, Lcg, Region, branch_op


class AlvinnWorkload(Workload):
    """Backpropagation-epoch model of alvinn's hot loop."""

    name = "052.alvinn"
    paradigm = "DOALL"
    hot_loop_fraction = 0.855
    mispredict_rate = 0.00245

    def __init__(self, iterations: int = 32, hidden_units: int = 12,
                 input_words: int = 24) -> None:
        self.iterations = iterations
        self.hidden_units = hidden_units
        self.input_words = input_words
        # Shared, read-only during the loop: inputs and current weights.
        self.patterns = Region(0x600_0000,
                               iterations * ((input_words * 8 + LINE - 1)
                                             // LINE + 1) * LINE)
        self.weights = Region(0x610_0000, 8 * LINE)
        # Private per-iteration gradient slice (the DOALL writes).
        self.gradients = Region(0x620_0000, iterations * 4 * LINE)
        self.results = Region(0x630_0000, iterations * LINE)
        # Epoch-level gradient accumulator (written only by the ordered
        # epilogue; never read inside the loop).
        self.accumulator = Region(0x640_0000, LINE)

    def setup(self, system) -> None:
        memory = system.hierarchy.memory
        rng = Lcg(0xA1B1)
        for i in range(self.patterns.size // 8):
            memory.write_word(self.patterns.base + 8 * i, rng.next(128))
        for i in range(self.weights.size // 8):
            memory.write_word(self.weights.base + 8 * i, (i * 13 + 3) & 0x7F)

    def _pattern(self, i: int) -> int:
        stride = ((self.input_words * 8 + LINE - 1) // LINE + 1) * LINE
        return self.patterns.base + i * stride

    def _gradient(self, i: int) -> int:
        return self.gradients.base + i * 4 * LINE

    def _result(self, i: int) -> int:
        return self.results.base + i * LINE

    # ------------------------------------------------------------------

    def doall_iteration(self, i: int) -> Fragment:
        rng = Lcg(0xA1B100 + i)
        pattern, gradient = self._pattern(i), self._gradient(i)
        weight_words = self.weights.size // 8
        activation = 0
        # Forward pass: every hidden unit re-reads the whole input slice
        # and the hot weight lines (dense reuse -> very few SLAs).
        for h in range(self.hidden_units):
            for w in range(self.input_words):
                x = yield Load(pattern + 8 * w)
                wt = yield Load(self.weights.base + 8 * ((h * 7 + w) % weight_words))
                activation = (activation + x * wt) & 0xFFFFFFFF
            yield branch_op(rng)
            yield Work(4)
        # Backward pass: accumulate the private gradient slice.
        for h in range(self.hidden_units):
            slot = gradient + 8 * (h % (4 * LINE // 8))
            acc = yield Load(slot)
            yield Store(slot, (acc + activation + h) & 0xFFFFFFFF)
        yield Store(self._result(i), activation & 0xFFFFFFFF)

    def stage2_epilogue(self, i: int) -> Fragment:
        """Fold this pattern's gradient into the epoch accumulator, in order.

        Gradient accumulation is a reduction: it must fold in original
        pattern order to preserve sequential floating-point semantics, so
        the epilogue serialises across DOALL workers via the commit turn.
        The accumulator is written only here (forward passes read the
        *weights*, which stay frozen for the whole epoch — batch training),
        so ordered execution is conflict-free."""
        gradient = self._gradient(i)
        branches = round(0.115 * 1200)
        yield Branch(taken=True, count=branches, work_cycles=1200 - branches)
        for h in range(4):
            g = yield Load(gradient + 8 * h)
            acc_addr = self.accumulator.base + 8 * h
            acc = yield Load(acc_addr)
            yield Store(acc_addr, (acc + (g & 0xFFFF)) & 0xFFFFFFFF)

    def sequential_iteration(self, i: int, carry: Any) -> Fragment:
        yield from self.doall_iteration(i)
        yield from self.stage2_epilogue(i)
        return None

    # ------------------------------------------------------------------

    def golden(self, i: int) -> int:
        rng_data = Lcg(0xA1B1)
        total_words = self.patterns.size // 8
        data = [rng_data.next(128) for _ in range(total_words)]
        stride_words = (((self.input_words * 8 + LINE - 1) // LINE + 1) * LINE) // 8
        base = i * stride_words
        weight_words = self.weights.size // 8
        activation = 0
        for h in range(self.hidden_units):
            for w in range(self.input_words):
                x = data[base + w]
                wt = (((h * 7 + w) % weight_words) * 13 + 3) & 0x7F
                activation = (activation + x * wt) & 0xFFFFFFFF
        return activation

    def expected_result(self, system) -> int:
        total = 0
        for i in range(self.iterations):
            total = (total + self.golden(i)) & 0xFFFFFFFF
        return total

    def observed_result(self, system) -> int:
        total = 0
        for i in range(self.iterations):
            value = system.hierarchy.read_committed(self._result(i))
            total = (total + value) & 0xFFFFFFFF
        return total

    # ------------------------------------------------------------------

    def smtx_minimal_addresses(self) -> frozenset:
        return frozenset()

    def smtx_shared_regions(self):
        return [self.weights.span(), self.gradients.span(),
                self.accumulator.span()]
