"""Workload interface: how benchmark models plug into the paradigms.

A workload describes one benchmark's hot loop as per-iteration op-generator
*fragments*, which the paradigm executors (:mod:`repro.runtime.paradigms`)
compose with transaction management:

* ``sequential_iteration(i, carry)`` — the whole loop body, for the
  sequential baseline.  ``carry`` models loop-carried register state (e.g.
  the current linked-list node); the fragment's generator *return value* is
  the next carry.
* ``stage1_iteration(i, carry)`` / ``stage2_iteration(i)`` — the DSWP
  partition of the body.  Stage 1 holds the loop-carried work (pointer
  chasing, input consumption) and communicates with stage 2 **through
  versioned memory** (like Figure 3's ``producedNode``), not through
  explicit queues — only the VID travels on a queue.  Stage 2 must be
  iteration-independent so PS-DSWP can replicate it.
* ``doall_iteration(i)`` — fully independent body for DOALL workloads.

``initial_carry``/``recover_carry`` let the executors (re)compute register
state from committed memory after an abort.

Scale note: paper transactions run 10^6–10^8 instructions; these models are
scaled down ~1000x so a pure-Python simulation finishes, preserving access
*patterns* (pointer chasing, R/W-set footprints, branch behaviour) rather
than absolute counts.  EXPERIMENTS.md reports both scales.
"""

from __future__ import annotations

import abc
from typing import Any, Generator, Optional

from ..cpu.isa import Op

Fragment = Generator[Op, Any, Any]


class Workload(abc.ABC):
    """One benchmark's hot loop, partitioned for every paradigm."""

    #: Benchmark name, e.g. ``"130.li"``.
    name: str = "workload"
    #: Preferred paradigm from Table 1 (``"DOALL"`` or ``"PS-DSWP"``).
    paradigm: str = "PS-DSWP"
    #: Number of hot-loop iterations (each becomes one transaction).
    iterations: int = 32
    #: Fraction of native whole-program time spent in the hot loop
    #: (Table 1's "Hot Loop Native Exec Time %").
    hot_loop_fraction: float = 1.0

    # ------------------------------------------------------------------
    # Memory setup / register state
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def setup(self, system) -> None:
        """Initialise the workload's data structures in simulated memory.

        Runs before timing starts; writes go straight to backing memory
        (``system.hierarchy.memory``), modelling pre-loop program state.
        """

    def initial_carry(self, system) -> Any:
        """Loop-carried register state before iteration 0."""
        return None

    def recover_carry(self, system, iteration: int) -> Any:
        """Recompute register state from committed memory after an abort."""
        return self.initial_carry(system)

    # ------------------------------------------------------------------
    # Loop-body fragments
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def sequential_iteration(self, i: int, carry: Any) -> Fragment:
        """The whole body of iteration ``i``; returns the next carry."""

    def stage1_iteration(self, i: int, carry: Any) -> Fragment:
        """DSWP stage 1 (loop-carried part); returns the next carry."""
        raise NotImplementedError(f"{self.name} has no DSWP partition")

    def stage2_iteration(self, i: int) -> Fragment:
        """DSWP stage 2 (parallelisable part); iteration-independent."""
        raise NotImplementedError(f"{self.name} has no DSWP partition")

    def doall_iteration(self, i: int) -> Fragment:
        """Fully independent body for DOALL execution."""
        raise NotImplementedError(f"{self.name} is not a DOALL workload")

    def stage2_epilogue(self, i: int) -> Fragment:
        """Ordered per-iteration epilogue (in-order output emission,
        reduction application).  The speculative executors run this *after*
        the transaction's commit turn arrives, so epilogues serialise in
        original program order across workers — the sequential tail stage
        present in most real DSWP pipelines."""
        return
        yield  # pragma: no cover - makes this an (empty) generator

    # ------------------------------------------------------------------
    # Validation support
    # ------------------------------------------------------------------

    def expected_result(self, system) -> Optional[Any]:
        """Golden output for correctness checks, or None.

        Called after a run; implementations typically read result locations
        from backing memory/committed state and return a comparable value.
        """
        return None
