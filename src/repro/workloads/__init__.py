"""Benchmark models: the paper's 8 evaluated programs plus teaching loops."""

from .alvinn import AlvinnWorkload
from .base import Workload
from .bzip2 import Bzip2Workload
from .common import Lcg, Region, calibrated_executor_factory, executor_factory_for
from .contended import CapacityHogWorkload, HighContentionListWorkload
from .crafty import CraftyWorkload
from .gzip import GzipWorkload
from .hmmer import HmmerWorkload
from .ispell import IspellWorkload
from .li import LiWorkload
from .linkedlist import LinkedListWorkload
from .parser import ParserWorkload
from .pipeline import PipelinedBenchmark
from .suite import (
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    SMTX_COMPARABLE,
    Table1Row,
    all_benchmarks,
    make_benchmark,
    make_workload,
    register_workload,
    workload_names,
)

__all__ = [
    "AlvinnWorkload",
    "BENCHMARK_NAMES",
    "Bzip2Workload",
    "CapacityHogWorkload",
    "CraftyWorkload",
    "HighContentionListWorkload",
    "GzipWorkload",
    "HmmerWorkload",
    "IspellWorkload",
    "Lcg",
    "LiWorkload",
    "LinkedListWorkload",
    "PAPER_TABLE1",
    "ParserWorkload",
    "PipelinedBenchmark",
    "Region",
    "SMTX_COMPARABLE",
    "Table1Row",
    "Workload",
    "all_benchmarks",
    "calibrated_executor_factory",
    "executor_factory_for",
    "make_benchmark",
    "make_workload",
    "register_workload",
    "workload_names",
]
