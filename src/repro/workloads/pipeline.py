"""Base class for the PS-DSWP benchmark models.

Seven of the eight evaluated benchmarks are pipeline-parallelised
(Table 1): a sequential first stage walks an input structure (file blocks,
sentences, expressions, game positions...) while a parallelisable second
stage does the heavy domain work on each element.  This base class
implements that common skeleton — Figure 3's pattern — so each benchmark
model only supplies its domain behaviour:

* :meth:`setup_domain` — initialise the benchmark's data structures;
* :meth:`work_body` — stage 2's per-iteration ops (the ``work()`` call);
* :meth:`golden` — a pure-Python mirror of ``work_body``'s result, used to
  verify that speculative parallel execution preserved sequential
  semantics.

Stage 1 forwards the per-iteration element through the versioned
``produced`` slot (a single speculative store; one version per VID), and
every stage-2 instance writes its result into a private per-iteration
result word which the correctness check folds after the run.
"""

from __future__ import annotations

from typing import Any, Optional

from ..cpu.isa import Branch, Load, Store, Work
from .base import Fragment, Workload
from .common import LINE, Region


class PipelinedBenchmark(Workload):
    """Skeleton for a PS-DSWP benchmark model.

    Address layout::

        produced slot     1 word   (stage-1 -> stage-2 forwarding, Fig. 3)
        chain region      1 line per iteration (input structure)
        results region    1 line per iteration (private outputs)
        domain regions    subclass-defined
    """

    paradigm = "PS-DSWP"
    #: Table 1 branch-misprediction rate, consumed by the calibrated
    #: executor factory (None = use the organic gshare predictor).
    mispredict_rate: Optional[float] = None
    #: Cycles of stage-1 bookkeeping per iteration (input handling, list
    #: management).  The paper does not publish its per-benchmark stage
    #: splits; this knob calibrates the split so each model reproduces the
    #: benchmark's published Figure 8 speedup (see EXPERIMENTS.md).
    stage1_work: int = 0
    #: Cycles of ordered epilogue work per iteration (in-order output
    #: emission) — serialises across stage-2 workers via the commit turn.
    epilogue_work: int = 0
    #: Branch density of the benchmark's code (Table 1's "% of Branch Insts
    #: Inside Hot Loop"); the calibration fillers emit this mix so the
    #: instruction-mix columns stay faithful.
    branch_pct: float = 0.12

    produced_slot = 0x2000
    chain_region = Region(0x100_0000, 0)       # sized in __init__
    results_region = Region(0x200_0000, 0)

    def __init__(self, iterations: int) -> None:
        self.iterations = iterations
        self.chain_region = Region(0x100_0000, iterations * LINE)
        self.results_region = Region(0x200_0000, iterations * LINE)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def setup_domain(self, memory) -> None:
        """Initialise domain data structures in backing memory."""
        raise NotImplementedError

    def work_body(self, i: int, element: int) -> Fragment:
        """Stage 2's ops for iteration ``i``; returns the result value.

        ``element`` is the payload stage 1 forwarded (loaded from the
        ``produced`` slot by the caller).
        """
        raise NotImplementedError

    def golden(self, i: int) -> int:
        """Pure-Python mirror of :meth:`work_body`'s result."""
        raise NotImplementedError

    def element_payload(self, i: int) -> int:
        """The value stage 1 forwards for iteration ``i``."""
        return 1 + 3 * i

    # ------------------------------------------------------------------
    # Common structure
    # ------------------------------------------------------------------

    def chain_node(self, i: int) -> int:
        return self.chain_region.line(i)

    def result_slot(self, i: int) -> int:
        return self.results_region.line(i)

    def setup(self, system) -> None:
        memory = system.hierarchy.memory
        for i in range(self.iterations):
            node = self.chain_node(i)
            nxt = self.chain_node(i + 1) if i + 1 < self.iterations else 0
            memory.write_word(node, nxt)
            memory.write_word(node + 8, self.element_payload(i))
        self.setup_domain(memory)

    def initial_carry(self, system) -> int:
        return self.chain_node(0)

    def recover_carry(self, system, iteration: int) -> int:
        return self.chain_node(iteration)

    # ------------------------------------------------------------------
    # Stage fragments
    # ------------------------------------------------------------------

    def _filler(self, cycles: int) -> Fragment:
        """Bookkeeping code: straight-line compute at the benchmark's
        branch density (so calibration work keeps the Table 1 mix)."""
        branches = max(1, round(self.branch_pct * cycles))
        yield Branch(taken=True, count=branches,
                     work_cycles=max(0, cycles - branches))

    def stage1_iteration(self, i: int, carry: Any) -> Fragment:
        node = carry
        payload = yield Load(node + 8)
        if self.stage1_work:
            yield from self._filler(self.stage1_work)
        yield Store(self.produced_slot, payload)
        nxt = yield Load(node)
        yield Branch(taken=nxt != 0, wrong_path_loads=())
        return nxt

    def stage2_iteration(self, i: int) -> Fragment:
        element = yield Load(self.produced_slot)
        result = yield from self.work_body(i, element)
        yield Store(self.result_slot(i), result & 0xFFFFFFFF)

    def sequential_iteration(self, i: int, carry: Any) -> Fragment:
        node = carry
        payload = yield Load(node + 8)
        if self.stage1_work:
            yield from self._filler(self.stage1_work)
        result = yield from self.work_body(i, payload)
        yield Store(self.result_slot(i), result & 0xFFFFFFFF)
        nxt = yield Load(node)
        yield Branch(taken=nxt != 0, wrong_path_loads=())
        yield from self.stage2_epilogue(i)
        return nxt

    def stage2_epilogue(self, i: int) -> Fragment:
        """Ordered output emission: serialised across workers (see base)."""
        if self.epilogue_work:
            yield from self._filler(self.epilogue_work)

    # ------------------------------------------------------------------
    # SMTX hooks
    # ------------------------------------------------------------------

    def smtx_minimal_addresses(self) -> frozenset:
        return frozenset({self.produced_slot})

    def smtx_shared_regions(self):
        """Default: the forwarding slot plus every domain region a compiler
        could not prove private (subclasses extend)."""
        return [(self.produced_slot, self.produced_slot + 8),
                self.chain_region.span()]

    # ------------------------------------------------------------------
    # Correctness
    # ------------------------------------------------------------------

    def expected_result(self, system) -> int:
        total = 0
        for i in range(self.iterations):
            total = (total + (self.golden(i) & 0xFFFFFFFF)) & 0xFFFFFFFF
        return total

    def observed_result(self, system) -> int:
        total = 0
        for i in range(self.iterations):
            value = system.hierarchy.read_committed(self.result_slot(i))
            total = (total + value) & 0xFFFFFFFF
        return total
