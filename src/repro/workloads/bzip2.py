"""256.bzip2 (SPEC CPU2000): block-sorting compression.

Hot loop: for each input block, run the Burrows-Wheeler transform —
read the whole block, build rank/rotation arrays, write the transformed
block.  bzip2's transactions have by far the largest read/write sets of
the suite (Figure 9: 16,222 kB average combined set; scaled here), and the
paper notes it is one of only two benchmarks whose *non-speculative*
backup (``S-O``, modVID 0) versions overflowed the caches (section 6.3).

Pipeline split: stage 1 produces block descriptors; stage 2 transforms.
"""

from __future__ import annotations

from ..cpu.isa import Load, Store, Work
from .base import Fragment
from .common import LINE, Lcg, Region, branch_op
from .pipeline import PipelinedBenchmark


class Bzip2Workload(PipelinedBenchmark):
    """Burrows-Wheeler model of bzip2's hot loop."""

    name = "256.bzip2"
    hot_loop_fraction = 0.985
    mispredict_rate = 0.0133

    branch_pct = 0.126
    # Calibrated DSWP stage split (see EXPERIMENTS.md):
    stage1_work = 4465
    epilogue_work = 30300

    def __init__(self, iterations: int = 8, block_lines: int = 44) -> None:
        super().__init__(iterations)
        self.block_lines = block_lines
        stride = block_lines * LINE
        self.input_blocks = Region(0x3A0_0000, iterations * stride)
        self.output_blocks = Region(0x3C0_0000, iterations * stride)
        self.rank_arrays = Region(0x3E0_0000, iterations * (block_lines // 4) * LINE)

    def setup_domain(self, memory) -> None:
        rng = Lcg(0xB21B2)
        for i in range(self.input_blocks.size // 8):
            memory.write_word(self.input_blocks.base + 8 * i, rng.next(255))

    def _in(self, i: int) -> int:
        return self.input_blocks.base + i * self.block_lines * LINE

    def _out(self, i: int) -> int:
        return self.output_blocks.base + i * self.block_lines * LINE

    def _rank(self, i: int) -> int:
        return self.rank_arrays.base + i * (self.block_lines // 4) * LINE

    def work_body(self, i: int, element: int) -> Fragment:
        rng = Lcg(0xB21B200 + i)
        src, dst, rank = self._in(i), self._out(i), self._rank(i)
        words = self.block_lines * (LINE // 8)
        wrong = (self.result_slot(i - 1),) if i else ()
        checksum = element
        # Pass 1: scan the block, accumulate bucket counts (rank array).
        for w in range(words):
            byte = yield Load(src + 8 * w)
            bucket = byte % (self.block_lines * 2)
            count = yield Load(rank + 8 * (bucket % (words // 8)))
            yield Store(rank + 8 * (bucket % (words // 8)), count + 1)
            checksum = (checksum + byte) & 0xFFFFFFFF
            if w % 16 == 0:
                yield branch_op(rng, wrong)
                yield Work(2)
        # Pass 2: write the "rotated" block (big sequential write set).
        for w in range(words):
            byte = yield Load(src + 8 * ((w * 7 + element) % words))
            yield Store(dst + 8 * w, byte)
            if w % 32 == 0:
                yield branch_op(rng)
        yield Work(40)
        return checksum

    def golden(self, i: int) -> int:
        element = self.element_payload(i)
        rng = Lcg(0xB21B2)
        total_words = self.input_blocks.size // 8
        data = [rng.next(255) for _ in range(total_words)]
        words = self.block_lines * (LINE // 8)
        base = i * words
        checksum = element
        for w in range(words):
            checksum = (checksum + data[base + w]) & 0xFFFFFFFF
        return checksum

    def smtx_shared_regions(self):
        return super().smtx_shared_regions() + [self.input_blocks.span(),
                                                self.output_blocks.span(),
                                                self.rank_arrays.span()]
