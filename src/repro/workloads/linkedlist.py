"""The paper's motivating workload: linked-list traversal with a work body.

This is the Figure 1/Figure 3 loop::

    while (node):
        w = work(node)      # may modify order of list
        if (w > MAX): break # control-flow speculated away
        node = node->next

The DSWP partition puts the pointer chase (``node = node->next``) in
stage 1 and ``work(node)`` in stage 2, with the node pointer communicated
through the shared versioned location ``producedNode`` — a single
speculative store per iteration, one version per VID (section 3.2).

The reduction over the per-node results is privatised (each iteration
writes its own output slot; the checksum is folded after the loop), exactly
as the paper's manual parallelisations must do to keep the parallel stage
iteration-independent.

Node layout (one cache line per node)::

    +0   next pointer
    +8   input value
    +16  output slot (written by work())
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..cpu.isa import Branch, Load, Store, Work
from .base import Fragment, Workload

_NEXT = 0
_VALUE = 8
_OUT = 16


class LinkedListWorkload(Workload):
    """Traverse a linked list, running a work function at each node.

    Parameters
    ----------
    nodes:
        List length; also the iteration count of the hot loop.
    work_cycles:
        Pure compute per ``work()`` call.
    work_reads:
        Extra reads ``work()`` performs against a shared read-mostly table
        (grows the read set).
    shuffle:
        Lay nodes out in a pseudo-random order so the pointer chase has no
        spatial locality (the "irregular pointer-chasing" case).
    """

    name = "linkedlist"
    paradigm = "PS-DSWP"

    def __init__(self, nodes: int = 32, work_cycles: int = 120,
                 work_reads: int = 8, shuffle: bool = True,
                 node_region: int = 0x10_0000, table_region: int = 0x80_0000,
                 produced_node: int = 0x1000) -> None:
        self.iterations = nodes
        self.nodes = nodes
        self.work_cycles = work_cycles
        self.work_reads = work_reads
        self.shuffle = shuffle
        self.node_region = node_region
        self.table_region = table_region
        self.produced_node = produced_node
        self._node_addrs: List[int] = []

    # ------------------------------------------------------------------

    def _layout(self) -> List[int]:
        order = list(range(self.nodes))
        if self.shuffle:
            # Deterministic shuffle (LCG) so runs are reproducible.
            state = 0x5EED
            for i in range(self.nodes - 1, 0, -1):
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                j = state % (i + 1)
                order[i], order[j] = order[j], order[i]
        return [self.node_region + slot * 64 for slot in order]

    def setup(self, system) -> None:
        memory = system.hierarchy.memory
        self._node_addrs = self._layout()
        for i, addr in enumerate(self._node_addrs):
            nxt = self._node_addrs[i + 1] if i + 1 < self.nodes else 0
            memory.write_word(addr + _NEXT, nxt)
            memory.write_word(addr + _VALUE, 3 * i + 7)
        for i in range(self.work_reads * 4):
            memory.write_word(self.table_region + 8 * i, i * i)

    def initial_carry(self, system) -> int:
        return self._node_addrs[0]

    def recover_carry(self, system, iteration: int) -> int:
        return self._node_addrs[iteration]

    # ------------------------------------------------------------------

    def _wrong_path(self, i: int) -> Tuple[int, ...]:
        """Addresses a mispredicted branch would load.

        A stale register plausibly points at the *previous* node, whose
        output slot the (logically earlier) previous iteration still has to
        write — exactly the pattern that, without SLAs, marks the line and
        triggers a false abort (section 5.1).
        """
        if i == 0:
            return ()
        return (self._node_addrs[i - 1] + _OUT,)

    def _work(self, i: int, node: int, value: int) -> Fragment:
        """The ``work()`` body: table reads, compute, private output store."""
        acc = value
        for r in range(self.work_reads):
            table_word = self.table_region + 8 * ((value + r) % (self.work_reads * 4))
            acc += yield Load(table_word)
        yield Work(self.work_cycles)
        yield Branch(taken=(acc % 7 != 0), wrong_path_loads=self._wrong_path(i))
        yield Store(node + _OUT, acc)
        return acc

    def sequential_iteration(self, i: int, carry: Any) -> Fragment:
        node = carry
        value = yield Load(node + _VALUE)
        yield from self._work(i, node, value)
        nxt = yield Load(node + _NEXT)
        yield Branch(taken=nxt != 0, wrong_path_loads=())
        return nxt

    def stage1_iteration(self, i: int, carry: Any) -> Fragment:
        node = carry
        # producedNode = node: one speculative store; stage 2 finds this
        # transaction's version by VID (uncommitted value forwarding).
        yield Store(self.produced_node, node)
        nxt = yield Load(node + _NEXT)
        yield Branch(taken=nxt != 0, wrong_path_loads=())
        return nxt

    def stage2_iteration(self, i: int) -> Fragment:
        node = yield Load(self.produced_node)
        value = yield Load(node + _VALUE)
        yield from self._work(i, node, value)

    def doall_iteration(self, i: int) -> Fragment:
        # Direct indexing (no pointer chase): only used when this workload
        # is forced into DOALL for paradigm-comparison experiments.
        node = self._node_addrs[i]
        value = yield Load(node + _VALUE)
        yield from self._work(i, node, value)

    # ------------------------------------------------------------------
    # SMTX baseline hooks
    # ------------------------------------------------------------------

    def smtx_minimal_addresses(self) -> frozenset:
        """Expert-minimal validation set: only the forwarding slot."""
        return frozenset({self.produced_node})

    def smtx_shared_regions(self):
        """Shared data: nodes and the forwarding slot (table is read-only
        and provably private per iteration under modest analysis)."""
        return [
            (self.node_region, self.node_region + self.nodes * 64),
            (self.produced_node, self.produced_node + 8),
        ]

    # ------------------------------------------------------------------

    def expected_result(self, system) -> Optional[int]:
        """Golden checksum: sum of per-node work() results."""
        total = 0
        for i in range(self.nodes):
            value = 3 * i + 7
            acc = value
            for r in range(self.work_reads):
                idx = (value + r) % (self.work_reads * 4)
                acc += idx * idx
            total = (total + acc) & 0xFFFFFFFF
        return total

    def observed_result(self, system) -> int:
        """Committed checksum after a run (read non-speculatively)."""
        total = 0
        for addr in self._node_addrs:
            total = (total + system.hierarchy.read_committed(addr + _OUT)) \
                & 0xFFFFFFFF
        return total
