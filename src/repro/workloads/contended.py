"""Adversarial workloads for the contention-management subsystem.

The Table 1 benchmarks are *well-partitioned*: their parallel stages are
iteration-independent, so aborts are rare and the seed's fixed restart
loop sufficed.  The :mod:`repro.txctl` subsystem exists for the loops
that are not so polite; this module models the two canonical failure
modes it must survive:

* :class:`HighContentionListWorkload` — the Figure 3 linked-list loop
  with a *shared read-modify-write* added to every iteration's work body
  (a global counter, like a shared statistics word or allocator bump
  pointer).  Every pair of concurrent transactions conflicts on the hot
  line, so free-running speculation aborts continuously and only
  backoff/serialisation restores progress.
* :class:`CapacityHogWorkload` — each transaction writes hundreds of
  distinct lines.  On a small cache hierarchy the speculative write set
  cannot be contained below the LLC, so every speculative attempt —
  serialised or not — dies with a ``CAPACITY_OVERFLOW`` abort (a
  *deterministic*, non-transient cause).  The seed runtime livelocked
  here ("abort livelock: too many recoveries"); the txctl serial
  fallback completes the loop non-speculatively (VID-0 stores are plain
  ``M`` lines that write back to memory freely).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core.config import MachineConfig
from ..cpu.isa import Load, Store, Work
from .base import Fragment, Workload
from .linkedlist import LinkedListWorkload

_OUT = 16


class HighContentionListWorkload(LinkedListWorkload):
    """Linked-list traversal whose work body bumps a shared counter.

    The counter lives on one cache line touched (load + store) by every
    iteration, so any two transactions in flight conflict — the classic
    high-contention microbenchmark.  ``rmw_per_iteration`` repeats the
    read-modify-write to widen the conflict window.
    """

    name = "contended-list"

    def __init__(self, nodes: int = 24, work_cycles: int = 60,
                 rmw_per_iteration: int = 1,
                 counter_addr: int = 0x2000, **kwargs) -> None:
        super().__init__(nodes=nodes, work_cycles=work_cycles, **kwargs)
        self.rmw_per_iteration = rmw_per_iteration
        self.counter_addr = counter_addr

    def setup(self, system) -> None:
        super().setup(system)
        system.hierarchy.memory.write_word(self.counter_addr, 0)

    def _work(self, i: int, node: int, value: int) -> Fragment:
        for _ in range(self.rmw_per_iteration):
            count = yield Load(self.counter_addr)
            yield Work(4)
            yield Store(self.counter_addr, count + 1)
        acc = yield from super()._work(i, node, value)
        return acc

    def counter_value(self, system) -> int:
        """The committed shared counter (``nodes * rmw`` when correct)."""
        return system.hierarchy.read_committed(self.counter_addr)

    def expected_counter(self) -> int:
        return self.nodes * self.rmw_per_iteration


class CapacityHogWorkload(Workload):
    """Transactions whose write sets overflow a small cache hierarchy.

    Iteration ``i`` streams stores over ``lines_per_iteration`` distinct
    lines of a private region, then records a checksum in its output
    slot.  Iterations are fully independent (DOALL-style) — the *only*
    obstacle to speculation is capacity, which makes this the acceptance
    workload for the serial fallback: no amount of retrying or
    serialising lets the write set fit.
    """

    name = "capacity-hog"
    paradigm = "PS-DSWP"

    def __init__(self, iterations: int = 4, lines_per_iteration: int = 400,
                 work_cycles: int = 20, region: int = 0x40_0000,
                 out_region: int = 0x20_0000,
                 produced_slot: int = 0x3000) -> None:
        self.iterations = iterations
        self.lines_per_iteration = lines_per_iteration
        self.work_cycles = work_cycles
        self.region = region
        self.out_region = out_region
        self.produced_slot = produced_slot

    @staticmethod
    def tiny_config(**overrides) -> MachineConfig:
        """A hierarchy small enough that one transaction overflows it."""
        params = dict(num_cores=4, l1_size=1024, l1_assoc=2,
                      l2_size=4096, l2_assoc=4)
        params.update(overrides)
        return MachineConfig(**params)

    # ------------------------------------------------------------------

    def _iteration_lines(self, i: int) -> List[int]:
        base = self.region + i * self.lines_per_iteration * 64
        return [base + j * 64 for j in range(self.lines_per_iteration)]

    def setup(self, system) -> None:
        memory = system.hierarchy.memory
        for i in range(self.iterations):
            memory.write_word(self.out_region + i * 64, 0)

    def _body(self, i: int) -> Fragment:
        checksum = 0
        for j, line in enumerate(self._iteration_lines(i)):
            value = (i * 131 + j * 17 + 1) & 0xFFFFFFFF
            yield Store(line, value)
            checksum = (checksum + value) & 0xFFFFFFFF
        yield Work(self.work_cycles)
        yield Store(self.out_region + i * 64, checksum)

    def sequential_iteration(self, i: int, carry: Any) -> Fragment:
        yield from self._body(i)
        return None

    def stage1_iteration(self, i: int, carry: Any) -> Fragment:
        yield Store(self.produced_slot, i)
        return None

    def stage2_iteration(self, i: int) -> Fragment:
        i = yield Load(self.produced_slot)
        yield from self._body(i)

    def doall_iteration(self, i: int) -> Fragment:
        yield from self._body(i)

    # ------------------------------------------------------------------

    def expected_result(self, system) -> Optional[int]:
        total = 0
        for i in range(self.iterations):
            checksum = sum((i * 131 + j * 17 + 1) & 0xFFFFFFFF
                           for j in range(len(self._iteration_lines(i))))
            total = (total + checksum) & 0xFFFFFFFF
        return total

    def observed_result(self, system) -> int:
        total = 0
        for i in range(self.iterations):
            total = (total +
                     system.hierarchy.read_committed(self.out_region + i * 64)) \
                & 0xFFFFFFFF
        return total


# ----------------------------------------------------------------------
# Registry factories (the ``scale`` parameterisations the sweep engine
# historically special-cased; golden timelines depend on these exact
# construction parameters)
# ----------------------------------------------------------------------

def contended_list_workload(scale: float = 1.0,
                            **kwargs) -> HighContentionListWorkload:
    params: dict = dict(nodes=max(8, int(24 * scale)), rmw_per_iteration=2)
    params.update(kwargs)
    return HighContentionListWorkload(**params)


def capacity_hog_workload(scale: float = 1.0,
                          **kwargs) -> CapacityHogWorkload:
    params: dict = dict(iterations=max(2, int(4 * scale)))
    params.update(kwargs)
    return CapacityHogWorkload(**params)
