"""Automatic speculative parallelization (the paper's section 8 end goal).

A small DSWP compiler over a loop IR:

1. describe the hot loop as statements over symbolic locations
   (:mod:`~repro.compiler.loopir`);
2. build the program dependence graph, with may-dependences weighted by
   profile probabilities (:mod:`~repro.compiler.pdg`);
3. speculate low-probability dependences away, condense SCCs, and assign
   them to a 3-stage speculative pipeline (:mod:`~repro.compiler.partition`);
4. generate a runnable workload whose dataflow rides on HMTX's versioned
   memory (:mod:`~repro.compiler.codegen`).

The generated code contains **no speculation-validation checks**: HMTX's
maximal hardware validation is what makes the compiler's aggressive
speculation safe — the paper's closing argument, executable.
"""

from .codegen import CompiledWorkload, compile_loop
from .loopir import Location, Loop, Statement
from .partition import PartitionError, PipelinePlan, plan_pipeline
from .pdg import (
    Dependence,
    build_pdg,
    carried_dependences,
    condense,
    may_dependences,
    remove_speculated,
)

__all__ = [
    "CompiledWorkload",
    "Dependence",
    "Location",
    "Loop",
    "PartitionError",
    "PipelinePlan",
    "Statement",
    "build_pdg",
    "carried_dependences",
    "compile_loop",
    "condense",
    "may_dependences",
    "plan_pipeline",
    "remove_speculated",
]
