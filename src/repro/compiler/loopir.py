"""Loop intermediate representation for the automatic parallelizer.

The paper's closing argument (section 8): "A compiler could achieve
profitable automatic speculative parallelization with the help of low
overhead speculation validation via HMTX."  This package is that compiler,
scoped to the loops HMTX targets: a hot loop described as *statements* over
*symbolic locations*, with data dependences derived from their read/write
sets and speculation decisions driven by profile probabilities.

Locations come in two flavours:

* **scalars** — one memory word shared by all iterations.  A scalar written
  and read across iterations is a loop-carried dependence (the pointer
  chase, a reduction accumulator);
* **arrays** — one slot per iteration (``name[i]``).  Accesses stay within
  the iteration, so arrays never carry dependences.

Each statement supplies a *pure* compute function from its read values to
its written values.  The same function drives three things: the sequential
golden model, the simulated execution (values flow through the versioned
memory, so forwarding and conflict detection are exercised for real), and
the dependence analysis (which only needs the read/write sets).

``maybe_writes`` declares **may** dependences: locations the statement
writes only on some iterations, with a profiled probability.  Those are
what the speculative partitioner removes (section 2.2: "speculating them
away can still be done highly confidently ... Still, validation must be
conservatively performed") — HMTX's hardware validation is what makes that
legal without software checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: A statement's compute function: (iteration, read values) -> writes.
ComputeFn = Callable[[int, Mapping[str, int]], Mapping[str, int]]


@dataclass(frozen=True)
class Location:
    """A symbolic memory location of the loop."""

    name: str
    kind: str                  # "scalar" | "array"
    init: int = 0

    @property
    def is_scalar(self) -> bool:
        return self.kind == "scalar"


@dataclass(frozen=True)
class Statement:
    """One statement of the loop body.

    Parameters
    ----------
    name:
        Unique statement label.
    reads / writes:
        Symbolic locations accessed every iteration.
    compute:
        Pure function from (iteration, read values) to written values; must
        return a value for every location in ``writes`` (and for any
        ``maybe_writes`` location it decides to write this iteration).
    maybe_writes:
        ``{location: probability}`` — locations written on only some
        iterations (the *may* dependences a speculative compiler removes
        when the profiled probability is low).  ``compute`` includes such a
        location in its result exactly on the iterations that write it.
    work / branches:
        Compute cycles and branch count per execution (for the timing
        model and Table 1-style instruction mix).
    ordered:
        True for statements that must execute in original iteration order
        even in parallel execution (output emission, reductions) — they
        become the pipeline's sequential epilogue stage.
    """

    name: str
    reads: Tuple[str, ...]
    writes: Tuple[str, ...]
    compute: ComputeFn
    maybe_writes: Dict[str, float] = field(default_factory=dict)
    work: int = 10
    branches: int = 1
    ordered: bool = False

    def all_writes(self) -> Tuple[str, ...]:
        return tuple(self.writes) + tuple(self.maybe_writes)


class Loop:
    """A hot loop: locations, statements, and an iteration count."""

    def __init__(self, name: str, iterations: int) -> None:
        self.name = name
        self.iterations = iterations
        self.locations: Dict[str, Location] = {}
        self.statements: List[Statement] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def scalar(self, name: str, init: int = 0) -> Location:
        return self._add_location(Location(name, "scalar", init))

    def array(self, name: str, init: int = 0) -> Location:
        return self._add_location(Location(name, "array", init))

    def _add_location(self, loc: Location) -> Location:
        if loc.name in self.locations:
            raise ValueError(f"duplicate location {loc.name!r}")
        self.locations[loc.name] = loc
        return loc

    def statement(self, name: str, reads=(), writes=(), compute=None,
                  maybe_writes=None, work: int = 10, branches: int = 1,
                  ordered: bool = False) -> Statement:
        """Append a statement (program order = append order)."""
        if any(s.name == name for s in self.statements):
            raise ValueError(f"duplicate statement {name!r}")
        stmt = Statement(
            name=name,
            reads=tuple(reads),
            writes=tuple(writes),
            compute=compute or (lambda i, env: {}),
            maybe_writes=dict(maybe_writes or {}),
            work=work,
            branches=branches,
            ordered=ordered,
        )
        for loc in list(stmt.reads) + list(stmt.all_writes()):
            if loc not in self.locations:
                raise ValueError(f"statement {name!r} uses undeclared "
                                 f"location {loc!r}")
        self.statements.append(stmt)
        return stmt

    # ------------------------------------------------------------------
    # Reference semantics (the golden model)
    # ------------------------------------------------------------------

    def interpret(self) -> Dict[str, object]:
        """Execute the loop sequentially in pure Python.

        Returns the final environment: scalars map to their value, arrays
        to a list of per-iteration values.
        """
        scalars = {name: loc.init for name, loc in self.locations.items()
                   if loc.is_scalar}
        arrays = {name: [loc.init] * self.iterations
                  for name, loc in self.locations.items() if not loc.is_scalar}

        def read(loc: str, i: int) -> int:
            if loc in scalars:
                return scalars[loc]
            return arrays[loc][i]

        for i in range(self.iterations):
            for stmt in self.statements:
                env = {loc: read(loc, i) for loc in stmt.reads}
                result = stmt.compute(i, env)
                for loc in stmt.all_writes():
                    if loc not in result:
                        if loc in stmt.maybe_writes:
                            continue        # not written this iteration
                        raise ValueError(
                            f"{stmt.name} did not produce {loc!r}")
                    if loc in scalars:
                        scalars[loc] = result[loc] & 0xFFFFFFFF
                    else:
                        arrays[loc][i] = result[loc] & 0xFFFFFFFF
        out: Dict[str, object] = dict(scalars)
        out.update(arrays)
        return out

    def validate(self) -> None:
        """Sanity-check the loop description."""
        if not self.statements:
            raise ValueError("loop has no statements")
        written = {loc for s in self.statements for loc in s.all_writes()}
        for stmt in self.statements:
            for loc in stmt.reads:
                location = self.locations[loc]
                if not location.is_scalar and loc not in written \
                        and location.init == 0:
                    # Reading a never-written, zero array is usually a bug
                    # in the loop description; allow but it is suspicious.
                    pass
