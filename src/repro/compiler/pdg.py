"""Program dependence graph construction over the loop IR.

Edges are data dependences between statements, each labelled:

* ``carried`` — does the dependence cross iterations?  Only *scalar*
  locations carry (arrays are per-iteration).  Within one iteration a
  scalar flows from a writer to later readers; across iterations it flows
  from every writer to every reader (and writer) of the same scalar.
* ``may`` / ``probability`` — dependences through ``maybe_writes``
  locations manifest only on some iterations; the partitioner may
  speculate them away when the profiled probability is low (HMTX's
  hardware validation catches the rare manifestations).

DSWP's central theorem: statements in a dependence *cycle* (an SCC of this
graph restricted to carried edges) must stay together in a sequential
pipeline stage; acyclic statements can flow downstream, and stages whose
statements carry no dependence at all can replicate (PS-DSWP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from .loopir import Loop, Statement


@dataclass(frozen=True)
class Dependence:
    """One PDG edge."""

    src: str
    dst: str
    location: str
    carried: bool
    may: bool
    probability: float      # 1.0 for must-dependences

    def describe(self) -> str:
        kind = "carried" if self.carried else "intra"
        flavour = f"may p={self.probability:.2f}" if self.may else "must"
        return f"{self.src} -> {self.dst} via {self.location} ({kind}, {flavour})"


def build_pdg(loop: Loop) -> nx.MultiDiGraph:
    """Construct the loop's program dependence graph.

    Nodes are statement names (with the Statement object attached); edges
    carry :class:`Dependence` records.
    """
    graph = nx.MultiDiGraph()
    for stmt in loop.statements:
        graph.add_node(stmt.name, statement=stmt)

    order = {stmt.name: idx for idx, stmt in enumerate(loop.statements)}

    def add_edge(src: Statement, dst: Statement, loc: str, carried: bool,
                 probability: float) -> None:
        dep = Dependence(src.name, dst.name, loc, carried,
                         may=probability < 1.0, probability=probability)
        graph.add_edge(src.name, dst.name, dependence=dep)

    for loc_name, location in loop.locations.items():
        writers = [(s, s.maybe_writes.get(loc_name, 1.0))
                   for s in loop.statements if loc_name in s.all_writes()]
        readers = [s for s in loop.statements if loc_name in s.reads]
        if not location.is_scalar:
            # Arrays: intra-iteration flow only (writer before reader).
            for writer, prob in writers:
                for reader in readers:
                    if order[writer.name] < order[reader.name]:
                        add_edge(writer, reader, loc_name, False, prob)
            continue
        # Scalars: intra-iteration flow to later statements...
        for writer, prob in writers:
            for reader in readers:
                if order[writer.name] < order[reader.name]:
                    add_edge(writer, reader, loc_name, False, prob)
        # ...and loop-carried flow to every reader/writer in the next
        # iteration (conservatively, regardless of intra-iteration order).
        for writer, prob in writers:
            for reader in readers:
                add_edge(writer, reader, loc_name, True, prob)
            for other, other_prob in writers:
                if other.name != writer.name:
                    add_edge(writer, other, loc_name, True,
                             min(prob, other_prob))
    return graph


def carried_dependences(graph: nx.MultiDiGraph) -> List[Dependence]:
    return [data["dependence"] for _, _, data in graph.edges(data=True)
            if data["dependence"].carried]


def may_dependences(graph: nx.MultiDiGraph) -> List[Dependence]:
    return [data["dependence"] for _, _, data in graph.edges(data=True)
            if data["dependence"].may]


def remove_speculated(graph: nx.MultiDiGraph,
                      threshold: float) -> Tuple[nx.MultiDiGraph, List[Dependence]]:
    """Drop may-dependences with manifestation probability <= threshold.

    Returns the speculative PDG and the list of *speculated assumptions* —
    the dependences the generated code relies on HMTX to validate.
    """
    speculative = nx.MultiDiGraph()
    speculative.add_nodes_from(graph.nodes(data=True))
    speculated: List[Dependence] = []
    for src, dst, data in graph.edges(data=True):
        dep: Dependence = data["dependence"]
        if dep.may and dep.probability <= threshold:
            speculated.append(dep)
        else:
            speculative.add_edge(src, dst, dependence=dep)
    return speculative, speculated


def condense(graph: nx.MultiDiGraph) -> Tuple[nx.DiGraph, Dict[str, int]]:
    """SCC condensation; returns (DAG of SCCs, statement -> SCC id)."""
    simple = nx.DiGraph()
    simple.add_nodes_from(graph.nodes())
    simple.add_edges_from((u, v) for u, v, _ in graph.edges(keys=True))
    condensation = nx.condensation(simple)
    membership = {}
    for scc_id, members in condensation.nodes(data="members"):
        for name in members:
            membership[name] = scc_id
    return condensation, membership


def scc_is_sequential(graph: nx.MultiDiGraph, members) -> bool:
    """Must this SCC stay in a sequential stage?

    True when its statements participate in a (non-speculated) carried
    dependence among themselves — the pointer-chase pattern.
    """
    members = set(members)
    for src, dst, data in graph.edges(data=True):
        dep: Dependence = data["dependence"]
        if dep.carried and src in members and dst in members:
            return True
    return False
