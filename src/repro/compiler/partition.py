"""DSWP pipeline partitioning with dependence speculation.

Implements the planning half of the compiler: given a loop's PDG,

1. **speculate** away may-dependences whose profiled manifestation
   probability is below threshold (section 2.2's "even if inhibitors of
   parallelization are input dependent, speculating them away can still be
   done highly confidently") — legal *because* HMTX validates every access
   in hardware, so no software checks are emitted;
2. **condense** to the SCC DAG (DSWP's core construction);
3. assign SCCs to the three-stage template the runtime executes:
   stage 1 (sequential: the carried-dependence cycles), stage 2
   (replicable: PS-DSWP's parallel stage), stage 3 (ordered epilogue:
   reductions and output emission).

Loops whose dependence structure cannot flow forward through that template
are rejected with a diagnostic rather than silently mis-compiled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import networkx as nx

from ..errors import ReproError
from .loopir import Loop, Statement
from .pdg import (
    Dependence,
    build_pdg,
    condense,
    remove_speculated,
    scc_is_sequential,
)


class PartitionError(ReproError):
    """The loop cannot be expressed in the 3-stage pipeline template."""


@dataclass
class PipelinePlan:
    """The compiler's partition of a loop into pipeline stages."""

    loop_name: str
    stage1: List[Statement]
    stage2: List[Statement]
    stage3: List[Statement]
    speculated: List[Dependence]
    scc_count: int

    @property
    def parallel_fraction(self) -> float:
        """Fraction of statements in the replicable stage."""
        total = len(self.stage1) + len(self.stage2) + len(self.stage3)
        return len(self.stage2) / total if total else 0.0

    @property
    def profitable(self) -> bool:
        """A pipeline with an empty parallel stage gains nothing."""
        return bool(self.stage2)

    @property
    def recommended_paradigm(self) -> str:
        """Which execution paradigm the partition calls for.

        No sequential front stage means nothing chases a loop-carried
        dependence: the iterations are independent and plain speculative
        DOALL (with the ordered epilogue for reductions) beats a pipeline.
        A non-empty stage 1 needs PS-DSWP's multithreaded transactions.
        An empty parallel stage is not worth parallelising at all.
        """
        if not self.stage2:
            return "Sequential"
        if not self.stage1:
            return "DOALL"
        return "PS-DSWP"

    def describe(self) -> str:
        lines = [f"pipeline plan for {self.loop_name!r} "
                 f"({self.scc_count} SCCs):"]
        for label, stage in (("stage 1 (sequential)", self.stage1),
                             ("stage 2 (parallel)", self.stage2),
                             ("stage 3 (ordered)", self.stage3)):
            names = ", ".join(s.name for s in stage) or "(empty)"
            lines.append(f"  {label}: {names}")
        if self.speculated:
            lines.append("  speculated dependences (validated by HMTX):")
            for dep in self.speculated:
                lines.append(f"    {dep.describe()}")
        return "\n".join(lines)


def plan_pipeline(loop: Loop, speculation_threshold: float = 0.1
                  ) -> PipelinePlan:
    """Partition ``loop`` into the 3-stage speculative pipeline."""
    loop.validate()
    pdg = build_pdg(loop)
    speculative_pdg, speculated = remove_speculated(pdg, speculation_threshold)
    condensation, membership = condense(speculative_pdg)
    order = {stmt.name: idx for idx, stmt in enumerate(loop.statements)}

    # Classify each SCC.
    sequential_sccs: Set[int] = set()
    for scc_id, members in condensation.nodes(data="members"):
        if scc_is_sequential(speculative_pdg, members):
            sequential_sccs.add(scc_id)

    # Ordered statements anchor stage 3; extend downstream so nothing
    # depends backwards on the epilogue.
    stage3_sccs: Set[int] = {membership[s.name] for s in loop.statements
                             if s.ordered}
    for scc_id in list(stage3_sccs):
        stage3_sccs.update(nx.descendants(condensation, scc_id))

    # Sequential SCCs (outside the epilogue) anchor stage 1; pull in their
    # ancestors so stage 1 never waits on a later stage.
    stage1_sccs: Set[int] = {scc for scc in sequential_sccs
                             if scc not in stage3_sccs}
    changed = True
    while changed:
        changed = False
        for scc_id in list(stage1_sccs):
            for ancestor in nx.ancestors(condensation, scc_id):
                if ancestor not in stage1_sccs:
                    stage1_sccs.add(ancestor)
                    changed = True

    if stage1_sccs & stage3_sccs:
        overlap = stage1_sccs & stage3_sccs
        members = [m for scc in overlap
                   for m in condensation.nodes[scc]["members"]]
        raise PartitionError(
            f"loop {loop.name!r}: statements {sorted(members)} are pinned "
            f"to both the sequential front stage and the ordered epilogue; "
            f"the 3-stage template cannot express this loop")

    stage2_sccs = set(condensation.nodes()) - stage1_sccs - stage3_sccs
    # A carried dependence inside stage 2 would make "replication" wrong.
    for scc_id in stage2_sccs:
        members = condensation.nodes[scc_id]["members"]
        if scc_is_sequential(speculative_pdg, members):
            raise PartitionError(
                f"loop {loop.name!r}: carried dependence among "
                f"{sorted(members)} survives in the parallel stage; raise "
                f"the speculation threshold or mark a statement ordered")

    # Stage-2 -> stage-1 edges would reverse the pipeline.
    for src, dst in condensation.edges():
        if src in stage2_sccs and dst in stage1_sccs:
            raise PartitionError(
                f"loop {loop.name!r}: the sequential stage consumes values "
                f"from the parallel stage; not pipelineable as 3 stages")

    def stage_statements(sccs: Set[int]) -> List[Statement]:
        names = [m for scc in sccs for m in condensation.nodes[scc]["members"]]
        return sorted((s for s in loop.statements if s.name in names),
                      key=lambda s: order[s.name])

    return PipelinePlan(
        loop_name=loop.name,
        stage1=stage_statements(stage1_sccs),
        stage2=stage_statements(stage2_sccs),
        stage3=stage_statements(stage3_sccs),
        speculated=speculated,
        scc_count=condensation.number_of_nodes(),
    )
