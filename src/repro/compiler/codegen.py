"""Code generation: a pipeline plan becomes a runnable workload.

The generated :class:`CompiledWorkload` plugs straight into the runtime's
paradigm executors.  Its key property — the one HMTX exists to provide —
is that **all cross-statement dataflow goes through simulated memory**:

* loop-carried scalars (the pointer chase) are single memory words whose
  per-iteration values are distinct *versions* in the cache hierarchy, so
  stage 1's chain and stage 1 -> stage 2 forwarding both ride on
  uncommitted value forwarding, exactly like Figure 3's ``producedNode``;
* speculated may-dependences need no generated checks: if the rare write
  manifests, the hardware's conflict detection aborts and the runtime
  re-executes from committed state.  Because *all* loop state lives in
  versioned memory, recovery needs no register checkpoints — the committed
  scalar values ARE the resume state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..cpu.isa import Branch, Load, Store, Work
from ..workloads.base import Fragment, Workload
from .loopir import Loop, Statement
from .partition import PipelinePlan, plan_pipeline

SCALAR_BASE = 0x8000_0000
ARRAY_BASE = 0x9000_0000
ARRAY_STRIDE = 1 << 24          # address space per array
LINE = 64


class CompiledWorkload(Workload):
    """A loop compiled for speculative pipeline execution on HMTX."""

    def __init__(self, loop: Loop, plan: PipelinePlan) -> None:
        self.loop = loop
        self.plan = plan
        self.name = f"compiled:{loop.name}"
        self.iterations = loop.iterations
        self.paradigm = plan.recommended_paradigm
        self._scalar_addr: Dict[str, int] = {}
        self._array_base: Dict[str, int] = {}
        for idx, (name, loc) in enumerate(sorted(loop.locations.items())):
            if loc.is_scalar:
                self._scalar_addr[name] = SCALAR_BASE + len(self._scalar_addr) * LINE
            else:
                self._array_base[name] = ARRAY_BASE + len(self._array_base) * ARRAY_STRIDE

    # ------------------------------------------------------------------
    # Address binding
    # ------------------------------------------------------------------

    def addr_of(self, location: str, i: int) -> int:
        loc = self.loop.locations[location]
        if loc.is_scalar:
            return self._scalar_addr[location]
        return self._array_base[location] + i * LINE

    # ------------------------------------------------------------------
    # Workload interface
    # ------------------------------------------------------------------

    def setup(self, system) -> None:
        memory = system.hierarchy.memory
        for name, loc in self.loop.locations.items():
            if loc.is_scalar:
                memory.write_word(self._scalar_addr[name], loc.init)
            elif loc.init:
                for i in range(self.iterations):
                    memory.write_word(self.addr_of(name, i), loc.init)

    def _execute(self, statements: List[Statement], i: int) -> Fragment:
        """Run statements for iteration ``i`` against simulated memory."""
        for stmt in statements:
            env: Dict[str, int] = {}
            for loc in stmt.reads:
                env[loc] = yield Load(self.addr_of(loc, i))
            if stmt.work:
                yield Work(stmt.work)
            if stmt.branches:
                taken = (i * 7 + len(stmt.name)) % 4 != 0
                yield Branch(taken=taken, count=stmt.branches)
            result = stmt.compute(i, env)
            for loc in stmt.all_writes():
                if loc in result:
                    yield Store(self.addr_of(loc, i), result[loc] & 0xFFFFFFFF)

    def stage1_iteration(self, i: int, carry: Any) -> Fragment:
        # Loop-carried state lives in versioned memory, not registers:
        # there is no carry to thread through, and abort recovery resumes
        # from the committed scalar values automatically.
        yield from self._execute(self.plan.stage1, i)
        return None

    def stage2_iteration(self, i: int) -> Fragment:
        yield from self._execute(self.plan.stage2, i)

    def stage2_epilogue(self, i: int) -> Fragment:
        yield from self._execute(self.plan.stage3, i)

    def doall_iteration(self, i: int) -> Fragment:
        """Independent-iteration body (when the plan recommends DOALL)."""
        if self.plan.stage1:
            raise NotImplementedError(
                f"{self.name} has a sequential stage; use PS-DSWP")
        yield from self._execute(self.plan.stage2, i)

    def sequential_iteration(self, i: int, carry: Any) -> Fragment:
        yield from self._execute(self.loop.statements, i)
        return None

    def initial_carry(self, system) -> Any:
        return None

    def recover_carry(self, system, iteration: int) -> Any:
        return None

    # ------------------------------------------------------------------
    # SMTX hooks
    # ------------------------------------------------------------------

    def smtx_minimal_addresses(self) -> frozenset:
        """Scalars are the cross-stage channels an expert would validate."""
        return frozenset(self._scalar_addr.values())

    def smtx_shared_regions(self):
        spans = [(addr, addr + 8) for addr in self._scalar_addr.values()]
        for base in self._array_base.values():
            spans.append((base, base + self.iterations * LINE))
        return spans

    # ------------------------------------------------------------------
    # Correctness
    # ------------------------------------------------------------------

    def expected_result(self, system) -> int:
        return self._fold(self.loop.interpret())

    def observed_result(self, system) -> int:
        state: Dict[str, object] = {}
        for name in self._scalar_addr:
            state[name] = system.hierarchy.read_committed(
                self._scalar_addr[name])
        for name in self._array_base:
            state[name] = [
                system.hierarchy.read_committed(self.addr_of(name, i))
                for i in range(self.iterations)
            ]
        return self._fold(state)

    def _fold(self, state: Dict[str, object]) -> int:
        digest = 0
        for name in sorted(state):
            value = state[name]
            if isinstance(value, list):
                for v in value:
                    digest = (digest * 31 + v) & 0xFFFFFFFF
            else:
                digest = (digest * 31 + value) & 0xFFFFFFFF
        return digest


def compile_loop(loop: Loop, speculation_threshold: float = 0.1,
                 plan: Optional[PipelinePlan] = None) -> CompiledWorkload:
    """The compiler's front door: loop IR in, runnable pipeline out."""
    plan = plan or plan_pipeline(loop, speculation_threshold)
    return CompiledWorkload(loop, plan)
