"""Deterministic adversarial workload generator: mutate-and-score search.

The TM-pathology literature (Alistarh et al.; Brown & Ravi) says the
interesting failure modes — abort storms, livelock escalation ladders,
VID-window exhaustion — live in a small corner of the access-pattern
space.  This module searches that space mechanically: an access-pattern
*genome* (key overlap, footprint, transaction length, interleaving)
instantiates an :class:`AdversarialWorkload`, the workload runs observed
under the standard DOALL executor, and the run is scored from exactly
the signals the :mod:`repro.obs` profiler exposes:

``score = 100·aborts/commit + 10·escalations + 25·fallback_entries
          + 400·vid_reset_share + 100·abort_replay_share
          + 50·commit_stall_share``

(the three shares are fractions of all thread cycles, straight from
:func:`repro.obs.profile.attribute`).

A seeded hill-climb (:func:`search`) mutates one gene at a time and
keeps the highest-scoring genome; every draw comes from one
:class:`~repro.workloads.common.Lcg`, so equal seeds reproduce the
entire search byte-for-byte.  High scorers are serialized as *survivor*
JSON files (``hmtx-svc-survivor/1``) that replay as regression
workloads: the workload registry resolves ``svc-survivor:<path>``, so
survivors run through the sweep engine and ``python -m repro analyze
--racecheck`` by name, and CI re-scores them against the recorded
metrics (:func:`replay_survivor`).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.config import MachineConfig
from ..cpu.isa import Load, Store, Work
from ..obs.profile import attribute
from ..obs.session import ObsSession
from ..runtime.paradigms import run_workload
from ..txctl import ContentionManager, make_policy
from ..workloads.base import Fragment, Workload
from ..workloads.common import LINE, Lcg

SURVIVOR_SCHEMA = "hmtx-svc-survivor/1"
SEARCH_SCHEMA = "hmtx-svc-search/1"

#: txctl policy the adversary runs (and survivors replay) under — the
#: full ladder, so livelock escalations and serial fallback can fire.
ADVERSARY_POLICY = "backoff"


def adversary_rig() -> MachineConfig:
    """The fixed machine the search scores genomes on.

    The default 64 KiB/32 MiB hierarchy absorbs any footprint the gene
    bounds allow, which would leave the ``footprint``/``stride`` genes
    with no gradient.  Scoring runs instead on a deliberately tight rig
    (same precedent as ``CapacityHogWorkload.tiny_config``) where the
    speculative-version capacity frontier falls *inside* the gene
    bounds: 4 concurrent transactions of a few dozen lines genuinely
    overflow the LLC and the search can discover capacity aborts,
    escalation ladders and the serial fallback.  Survivors replayed by
    name through the sweep engine or racecheck still run on whatever
    machine those drivers configure — the rig only defines the score.
    """
    return MachineConfig(num_cores=4, l1_size=2048, l1_assoc=2,
                         l2_size=8192, l2_assoc=4)

_MASK = 0xFFFFFFFF
_HOT_REGION = 0x2000_0000
_COLD_REGION = 0x2800_0000
_OUT_REGION = 0x3000_0000

#: Per-gene (lo, hi, mutation step) bounds.  ``iterations`` ranges past
#: the 6-bit VID window (63) so the search can discover epoch-recycling
#: (``vid_reset``) pressure.
_GENE_BOUNDS: Dict[str, Tuple[int, int, int]] = {
    "hot_keys": (1, 32, 4),
    "hot_pct": (0, 100, 20),
    "footprint": (1, 64, 8),
    "tx_ops": (1, 32, 4),
    "rmw_pct": (0, 100, 20),
    "think_cycles": (0, 64, 8),
    "stride": (1, 8, 2),
    "iterations": (8, 96, 16),
}


@dataclass(frozen=True)
class Genome:
    """One access pattern: what the adversarial transactions touch."""

    hot_keys: int = 4       #: size of the shared hot set (lines)
    hot_pct: int = 70       #: % of the footprint drawn from the hot set
    footprint: int = 8      #: distinct lines per transaction
    tx_ops: int = 6         #: accesses per transaction
    rmw_pct: int = 50       #: % of accesses that read-modify-write
    think_cycles: int = 8   #: straight-line work between accesses
    stride: int = 1         #: hot-set line stride (set-conflict shaping)
    iterations: int = 48    #: loop trip count (VID-window pressure)

    def clamped(self) -> "Genome":
        values = {}
        for gene, (lo, hi, _) in _GENE_BOUNDS.items():
            values[gene] = min(hi, max(lo, getattr(self, gene)))
        return Genome(**values)

    def mutate(self, rng: Lcg) -> "Genome":
        """One-gene mutation: additive step of LCG-drawn magnitude."""
        gene = list(_GENE_BOUNDS)[rng.next(len(_GENE_BOUNDS))]
        _, _, step = _GENE_BOUNDS[gene]
        magnitude = 1 + rng.next(step)
        delta = magnitude if rng.next(2) == 0 else -magnitude
        return replace(self, **{gene: getattr(self, gene) + delta}).clamped()

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Genome":
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown genome genes: {sorted(unknown)}")
        return cls(**{k: int(v) for k, v in data.items()}).clamped()


class AdversarialWorkload(Workload):
    """DOALL loop whose access pattern is dictated by a :class:`Genome`.

    Each iteration builds a line pool (hot lines shared across all
    iterations, cold lines private to this one) and issues ``tx_ops``
    reads/writes/RMWs over it — the sequential replay in
    ``expected_result`` defines the semantics the speculative run must
    preserve, exactly like the KV family.
    """

    paradigm = "DOALL"

    def __init__(self, genome: Genome, seed: int = 42,
                 name: str = "svc-adversary") -> None:
        self.genome = genome.clamped()
        self.seed = seed
        self.name = name
        self.iterations = self.genome.iterations
        rng = Lcg((seed * 2654435761) ^ 0xAD5E_11E7)
        g = self.genome
        self._plans: List[Tuple[Tuple[str, str, int, int], ...]] = []
        for i in range(g.iterations):
            pool: List[Tuple[str, int]] = []
            for f in range(g.footprint):
                if rng.next(100) < g.hot_pct:
                    pool.append(("hot", rng.next(g.hot_keys) * g.stride))
                else:
                    pool.append(("cold", i * g.footprint + f))
            ops: List[Tuple[str, str, int, int]] = []
            for _ in range(g.tx_ops):
                tag, index = pool[rng.next(len(pool))]
                if rng.next(100) < g.rmw_pct:
                    ops.append(("add", tag, index, rng.next(255) + 1))
                elif rng.next(2) == 0:
                    ops.append(("read", tag, index, 0))
                else:
                    ops.append(("write", tag, index, rng.next(1 << 30)))
            self._plans.append(tuple(ops))
        self._touched = sorted({(tag, index) for plan in self._plans
                                for _, tag, index, _ in plan})

    # ------------------------------------------------------------------

    def _addr(self, tag: str, index: int) -> int:
        base = _HOT_REGION if tag == "hot" else _COLD_REGION
        return base + index * LINE

    def _out_addr(self, i: int) -> int:
        return _OUT_REGION + i * LINE

    def setup(self, system) -> None:
        memory = system.hierarchy.memory
        for tag, index in self._touched:
            memory.write_word(self._addr(tag, index), index & _MASK)
        for i in range(self.iterations):
            memory.write_word(self._out_addr(i), 0)

    def _body(self, i: int) -> Fragment:
        acc = i & _MASK
        think = self.genome.think_cycles
        for op, tag, index, operand in self._plans[i]:
            addr = self._addr(tag, index)
            if op == "read":
                value = yield Load(addr)
            elif op == "write":
                value = operand
                yield Store(addr, value)
            else:
                current = yield Load(addr)
                yield Work(1)
                value = (current + operand) & _MASK
                yield Store(addr, value)
            acc = (acc * 31 + value) & _MASK
            if think:
                yield Work(think)
        yield Store(self._out_addr(i), acc)

    def sequential_iteration(self, i: int, carry: Any) -> Fragment:
        yield from self._body(i)
        return None

    def doall_iteration(self, i: int) -> Fragment:
        yield from self._body(i)

    # ------------------------------------------------------------------

    def expected_result(self, system) -> int:
        table = {key: key[1] & _MASK for key in self._touched}
        total = 0
        for i, plan in enumerate(self._plans):
            acc = i & _MASK
            for op, tag, index, operand in plan:
                key = (tag, index)
                if op == "read":
                    value = table[key]
                elif op == "write":
                    value = operand
                    table[key] = value
                else:
                    value = (table[key] + operand) & _MASK
                    table[key] = value
                acc = (acc * 31 + value) & _MASK
            total = (total * 131 + acc) & _MASK
        for key in self._touched:
            total = (total * 131 + table[key]) & _MASK
        return total

    def observed_result(self, system) -> int:
        read = system.hierarchy.read_committed
        total = 0
        for i in range(self.iterations):
            total = (total * 131 + read(self._out_addr(i))) & _MASK
        for tag, index in self._touched:
            total = (total * 131 + read(self._addr(tag, index))) & _MASK
        return total


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------

def evaluate_genome(genome: Genome, seed: int = 42,
                    policy: str = ADVERSARY_POLICY) -> Dict[str, Any]:
    """Run one genome observed and score it from the profiler's signals.

    Pure function of ``(genome, seed, policy, code)`` — the simulation
    is deterministic and the observation layer is behaviour-neutral, so
    re-evaluating a committed survivor must reproduce its metrics.
    """
    workload = AdversarialWorkload(genome, seed=seed)
    session = ObsSession()
    with session.activate():
        result = run_workload(workload, adversary_rig(), paradigm="DOALL",
                              manager=ContentionManager(
                                  policy=make_policy(policy)))
    session.detach()
    session.finalize(result)
    attribution = attribute(session)
    stats = result.system.stats
    contention = stats.contention
    commits = stats.committed
    aborts = stats.aborted
    aborts_per_commit = round(aborts / max(1, commits), 4)
    escalations = sum(contention.escalations.values())
    total = max(1, attribution.total_thread_cycles)

    def share(category: str) -> float:
        return round(attribution.totals.get(category, 0) / total, 6)

    vid_reset_share = share("vid_reset")
    abort_replay_share = share("abort_replay")
    commit_stall_share = share("commit_stall")
    metrics = {
        "cycles": result.cycles,
        "commits": commits,
        "aborts": aborts,
        "aborts_per_commit": aborts_per_commit,
        "escalations": escalations,
        "fallback_entries": contention.fallback_entries,
        "vid_reset_share": vid_reset_share,
        "abort_replay_share": abort_replay_share,
        "commit_stall_share": commit_stall_share,
        "correct": workload.observed_result(result.system)
        == workload.expected_result(result.system),
    }
    # Discrete pathology counters plus the profiler's continuous
    # wasted-cycle shares: the counters saturate once the escalation
    # ladder clamps concurrency, so the shares carry the gradient the
    # hill-climb follows between escalation regimes.
    metrics["score"] = round(100.0 * aborts_per_commit
                             + 10.0 * escalations
                             + 25.0 * contention.fallback_entries
                             + 400.0 * vid_reset_share
                             + 100.0 * abort_replay_share
                             + 50.0 * commit_stall_share, 4)
    return metrics


# ----------------------------------------------------------------------
# The search
# ----------------------------------------------------------------------

def search(seed: int = 42, rounds: int = 4, population: int = 4,
           base: Optional[Genome] = None,
           policy: str = ADVERSARY_POLICY) -> Dict[str, Any]:
    """Seeded hill-climb over genomes; returns a plain-data report.

    Each round mutates the incumbent ``population`` times, evaluates
    every new genome once (results memoised by genome), and adopts the
    best strict improvement.  Ties and ordering are deterministic:
    candidates are evaluated in generation order and compared by
    ``(score, earlier-first)``.
    """
    rng = Lcg((seed * 1_000_003) ^ 0x5EA2C4)
    incumbent = (base or Genome()).clamped()
    seen: Dict[Tuple[int, ...], Dict[str, Any]] = {}

    def evaluate(genome: Genome) -> Dict[str, Any]:
        key = tuple(genome.to_dict()[g] for g in sorted(_GENE_BOUNDS))
        if key not in seen:
            entry = {"genome": genome.to_dict(),
                     "metrics": evaluate_genome(genome, seed=seed,
                                                policy=policy)}
            entry["score"] = entry["metrics"]["score"]
            entry["order"] = len(seen)
            seen[key] = entry
        return seen[key]

    best = evaluate(incumbent)
    history: List[Dict[str, Any]] = []
    for round_index in range(rounds):
        candidates = [evaluate(incumbent.mutate(rng))
                      for _ in range(population)]
        round_best = max(candidates,
                         key=lambda entry: (entry["score"], -entry["order"]))
        if round_best["score"] > best["score"]:
            best = round_best
            incumbent = Genome.from_dict(best["genome"])
        history.append({"round": round_index,
                        "best_score": best["score"],
                        "round_best_score": round_best["score"]})
    leaderboard = sorted(seen.values(),
                         key=lambda entry: (-entry["score"], entry["order"]))
    return {
        "schema": SEARCH_SCHEMA,
        "seed": seed,
        "policy": policy,
        "rounds": rounds,
        "population": population,
        "evaluated": len(seen),
        "best": best,
        "history": history,
        "leaderboard": leaderboard[:10],
    }


# ----------------------------------------------------------------------
# Survivor serialization / replay
# ----------------------------------------------------------------------

def survivor_payload(entry: Dict[str, Any], seed: int, policy: str,
                     name: str) -> Dict[str, Any]:
    """The committed regression-workload document for one search entry."""
    return {
        "schema": SURVIVOR_SCHEMA,
        "name": name,
        "seed": seed,
        "policy": policy,
        "genome": dict(entry["genome"]),
        "score": entry["score"],
        "metrics": dict(entry["metrics"]),
    }


def write_survivors(report: Dict[str, Any], directory,
                    count: int = 2, min_score: float = 0.0) -> List[str]:
    """Serialize the top ``count`` distinct genomes as survivor files."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[str] = []
    rank = 0
    for entry in report["leaderboard"]:
        if entry["score"] < min_score or not entry["metrics"]["correct"]:
            continue
        rank += 1
        name = f"svc-adv-s{report['seed']}-{rank:02d}"
        payload = survivor_payload(entry, report["seed"],
                                   report["policy"], name)
        path = directory / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")
        paths.append(str(path))
        if rank >= count:
            break
    return paths


def load_survivor(path) -> Dict[str, Any]:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != SURVIVOR_SCHEMA:
        raise ValueError(f"{path}: not a {SURVIVOR_SCHEMA} document "
                         f"(schema={data.get('schema')!r})")
    return data


def survivor_workload(path, **options) -> AdversarialWorkload:
    """Build the regression workload a survivor file describes.

    This is the resolver behind the registry's ``svc-survivor:<path>``
    names, so survivors replay through everything that accepts a
    workload name (sweep engine, racecheck, CLI).
    """
    data = load_survivor(path)
    if options:
        raise TypeError(f"survivor workloads take no options: {options!r}")
    return AdversarialWorkload(Genome.from_dict(data["genome"]),
                               seed=data["seed"],
                               name=f"svc-survivor:{data['name']}")


def replay_survivor(path, tolerance: float = 0.25) -> Dict[str, Any]:
    """Re-score a survivor and compare against its recorded metrics.

    The gate CI enforces: the re-evaluated abort rate must lie within
    ``tolerance`` (relative, floored at an absolute 0.05) of the
    recorded ``aborts_per_commit``, and the run must stay correct.
    """
    data = load_survivor(path)
    metrics = evaluate_genome(Genome.from_dict(data["genome"]),
                              seed=data["seed"],
                              policy=data.get("policy", ADVERSARY_POLICY))
    recorded = data["metrics"]["aborts_per_commit"]
    observed = metrics["aborts_per_commit"]
    allowed = max(0.05, tolerance * max(1.0, recorded))
    ok = metrics["correct"] and abs(observed - recorded) <= allowed
    return {
        "path": str(path),
        "name": data["name"],
        "recorded_aborts_per_commit": recorded,
        "observed_aborts_per_commit": observed,
        "recorded_score": data["score"],
        "observed_score": metrics["score"],
        "allowed_delta": round(allowed, 4),
        "correct": metrics["correct"],
        "ok": ok,
    }


def adversary_workload(scale: float = 1.0, seed: int = 42,
                       **genes) -> AdversarialWorkload:
    """Registry factory: the default genome with per-gene overrides.

    ``scale`` multiplies the iteration count (clamped to the gene
    bounds) so ``svc-adversary`` behaves like every other registered
    workload under ``--scale``.
    """
    genome = Genome.from_dict({**Genome().to_dict(), **genes})
    if scale != 1.0:
        genome = replace(genome,
                         iterations=round(genome.iterations
                                          * scale)).clamped()
    return AdversarialWorkload(genome, seed=seed)
