"""Deterministic service traffic: Zipfian key skew and bursty arrivals.

Service-scale TM pathologies come from two statistical properties the
Table 1 benchmarks do not have (Alistarh et al.; Brown & Ravi):

* **key popularity skew** — a handful of hot keys absorb most of the
  traffic, so independent-looking transactions keep colliding on the
  same cache lines.  :class:`ZipfianSampler` draws key *ranks* from the
  standard Zipf(theta) popularity law over a configurable keyspace.
* **open-loop arrivals** — real requests arrive on the service's
  schedule, not the worker's: load comes in bursts, queues build while
  a worker is stuck behind a contended commit, and tail latency is born
  in exactly those queues.  :class:`BurstyArrivals` produces a
  deterministic nondecreasing arrival timetable (in simulated cycles)
  that workloads attach to requests via the :class:`~repro.cpu.isa.
  Arrive` op.

Everything here is integer-seeded through the repo's
:class:`~repro.workloads.common.Lcg` — no ``random`` module, no global
state, byte-identical streams for equal seeds (pinned by
``tests/svc/test_traffic.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List

from ..workloads.common import Lcg

#: Denominator for LCG-derived floats in [0, 1).  The LCG exposes 47
#: usable bits (state >> 17), and 2**47 % 2**30 == 0, so ``next(1 << 30)``
#: is exactly uniform — wider bounds would bias the draw.
_FLOAT_BITS = 1 << 30


def _uniform(rng: Lcg) -> float:
    return rng.next(_FLOAT_BITS) / _FLOAT_BITS


class ZipfianSampler:
    """Zipf(theta)-distributed ranks over ``[0, n)``; rank 0 is hottest.

    The cumulative popularity table costs O(n) to build and one bisect
    per draw — fast enough for the svc keyspace (10^5–10^6 keys at
    scale 1.0) because it is built once per workload instantiation.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 1) -> None:
        if n <= 0:
            raise ValueError(f"keyspace must be positive: {n!r}")
        self.n = n
        self.theta = theta
        self._rng = Lcg(seed)
        cdf: List[float] = []
        running = 0.0
        for rank in range(n):
            running += (rank + 1) ** -theta
            cdf.append(running)
        self._cdf = [value / running for value in cdf]

    def sample(self) -> int:
        """Draw one rank (0 = most popular)."""
        return bisect_left(self._cdf, _uniform(self._rng))

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]


class BurstyArrivals:
    """Deterministic open-loop arrival timetable, in simulated cycles.

    The process alternates phases: *steady* phases space requests
    ``base_gap``-ish cycles apart, *burst* phases pack them
    ``burst_gap``-ish apart, and occasionally a phase boundary inserts
    an ``idle_gap`` lull (the inter-burst silence that lets queues
    drain and makes the next burst hurt).  All phase lengths and gaps
    are LCG-drawn integers, so the schedule is a pure function of the
    seed.
    """

    def __init__(self, seed: int = 1, base_gap: int = 64, burst_gap: int = 8,
                 idle_gap: int = 600, burst_len: int = 10,
                 steady_len: int = 12) -> None:
        self.seed = seed
        self.base_gap = max(1, base_gap)
        self.burst_gap = max(1, burst_gap)
        self.idle_gap = max(0, idle_gap)
        self.burst_len = max(1, burst_len)
        self.steady_len = max(1, steady_len)

    def gaps(self, count: int) -> List[int]:
        """``count`` inter-arrival gaps (the schedule's first differences)."""
        rng = Lcg(self.seed)
        out: List[int] = []
        remaining = 0
        in_burst = False
        while len(out) < count:
            if remaining == 0:
                in_burst = rng.next(4) == 0  # one phase in four bursts
                span = self.burst_len if in_burst else self.steady_len
                remaining = span // 2 + rng.next(span) + 1
                if self.idle_gap and rng.next(8) == 0:
                    # A lull before the phase: half-to-full idle_gap.
                    out.append(self.idle_gap // 2
                               + rng.next(self.idle_gap // 2 + 1))
                    if len(out) == count:
                        break
            gap = self.burst_gap if in_burst else self.base_gap
            out.append(gap // 2 + rng.next(gap + 1))
            remaining -= 1
        return out

    def schedule(self, count: int) -> List[int]:
        """``count`` nondecreasing arrival timestamps starting at 0."""
        now = 0
        out: List[int] = []
        for gap in self.gaps(count):
            now += gap
            out.append(now)
        return out
