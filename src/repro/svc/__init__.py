"""repro.svc — service-scale workloads and the adversarial generator.

Three pieces, layered on the existing runtime/obs/experiments stack:

* :mod:`repro.svc.traffic` — deterministic Zipfian key skew and bursty
  open-loop arrival schedules (the statistics of service traffic).
* :mod:`repro.svc.kvstore` — the transactional KV/OLTP workload family
  (``svc-kv`` / ``svc-kv-read`` / ``svc-oltp`` in the workload
  registry), whose requests queue behind the scheduler via the
  :class:`~repro.cpu.isa.Arrive` op.
* :mod:`repro.svc.adversary` — seeded mutate-and-score search over
  access-pattern genomes; survivors serialize as regression workloads
  (``svc-survivor:<path>`` registry names).
* :mod:`repro.svc.latency` — the tail-latency artifact
  (``python -m repro svc``): per-backend commit-latency and queue-wait
  quantiles from the obs histograms, run through the sweep engine.

Import is lazy everywhere it matters: the registry maps svc names to
modules, so nothing here loads unless an svc workload is actually used.
"""

from .kvstore import KVStoreWorkload, kv_read_workload, kv_workload, \
    oltp_workload
from .traffic import BurstyArrivals, ZipfianSampler

__all__ = [
    "BurstyArrivals",
    "KVStoreWorkload",
    "ZipfianSampler",
    "kv_read_workload",
    "kv_workload",
    "oltp_workload",
]
