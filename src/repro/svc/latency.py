"""The svc tail-latency artifact: per-backend quantiles from obs data.

Tail latency is *the* service-level metric the open-loop KV workloads
exist to expose: a p99 commit latency dominated by queueing behind a
contended commit is invisible in makespan comparisons.  This module
turns one sweep over the TM backends into that artifact:

1. :func:`latency_spec` builds observed :class:`RunRequest`\\ s (one per
   backend) for an svc workload — plain engine requests, so ``--jobs N``
   fans them out across processes and the result is byte-identical to a
   serial run (the engine's merge-order contract).
2. Each record's ``obs_digest["histograms"]`` carries the
   ``svc_queue_wait_cycles`` / ``svc_commit_latency_cycles`` series the
   observation layer populated from :class:`~repro.cpu.isa.Arrive` ops
   and committed transactions; :meth:`Histogram.from_cumulative`
   rebuilds them from the plain-data digest.
3. :func:`latency_report` renders p50/p90/p99/p999 per backend —
   JSON (schema ``hmtx-svc-latency/1``, sorted keys, no wall-clock) or
   a text table.

Commit latency here is *sojourn time* — commit timestamp minus the
request's open-loop arrival — measured only on the attempt that
committed; queue wait is the scheduler-charged lateness of the
``Arrive`` op itself.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..experiments.engine import (
    RunRequest,
    SweepEngine,
    SweepSpec,
    request_options,
)
from ..experiments.reporting import format_table
from ..obs.profile import load_digest
from ..obs.registry import Histogram

LATENCY_SCHEMA = "hmtx-svc-latency/1"

#: Default backend lineup: the hardware design, the software baseline,
#: and the perfect-knowledge oracle (same trio as the backend registry).
DEFAULT_SYSTEMS: Tuple[str, ...] = ("hmtx", "smtx", "oracle")

#: Reported quantiles (fraction, column label).
QUANTILES: Tuple[Tuple[float, str], ...] = (
    (0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999"))

_SERIES = (("commit_latency", "svc_commit_latency_cycles"),
           ("queue_wait", "svc_queue_wait_cycles"))


def latency_spec(workload: str = "svc-kv", scale: float = 1.0,
                 systems: Sequence[str] = DEFAULT_SYSTEMS,
                 seed: int = 42) -> SweepSpec:
    """One observed run per backend over the same seeded workload."""
    requests = tuple(
        RunRequest(workload=workload, system=system, scale=scale,
                   paradigm="DOALL", observe=True,
                   options=request_options(seed=seed))
        for system in systems)
    return SweepSpec(name=f"svc-latency:{workload}", requests=requests)


def _series_quantiles(digest: Optional[Dict[str, Any]],
                      series: str) -> Dict[str, Any]:
    histograms = load_digest(digest)["histograms"] if digest else {}
    snap = histograms.get(series)
    if snap is None:
        return {"count": 0,
                **{label: 0.0 for _, label in QUANTILES}}
    hist = Histogram.from_cumulative(snap)
    out: Dict[str, Any] = {"count": hist.count,
                           "mean": round(hist.mean, 2),
                           "max": hist.max_value}
    for q, label in QUANTILES:
        out[label] = round(hist.quantile(q), 1)
    return out


def latency_report(workload: str = "svc-kv", scale: float = 1.0,
                   systems: Sequence[str] = DEFAULT_SYSTEMS,
                   seed: int = 42, jobs: int = 1,
                   engine: Optional[SweepEngine] = None) -> Dict[str, Any]:
    """Run the sweep and distill the tail-latency artifact (plain data)."""
    spec = latency_spec(workload=workload, scale=scale, systems=systems,
                        seed=seed)
    engine = engine or SweepEngine(jobs=jobs)
    records = engine.run_spec(spec)
    rows: List[Dict[str, Any]] = []
    for record in records:
        row: Dict[str, Any] = {
            "system": record.system,
            "cycles": record.cycles,
            "committed": record.committed,
            "aborted": record.aborted,
            "correct": record.correct,
        }
        for key, series in _SERIES:
            row[key] = _series_quantiles(record.obs_digest, series)
        rows.append(row)
    return {
        "schema": LATENCY_SCHEMA,
        "workload": workload,
        "scale": scale,
        "seed": seed,
        "systems": list(systems),
        "rows": rows,
    }


def render_text(report: Dict[str, Any]) -> str:
    """The human-readable artifact: one quantile table per series."""
    blocks: List[str] = []
    for key, _series in _SERIES:
        headers = ["system", "count"] + [label for _, label in QUANTILES] \
            + ["max", "cycles", "correct"]
        rows = []
        for row in report["rows"]:
            dist = row[key]
            rows.append([row["system"], dist["count"]]
                        + [dist[label] for _, label in QUANTILES]
                        + [dist.get("max", 0), row["cycles"],
                           row["correct"]])
        title = (f"svc {key.replace('_', ' ')} (cycles) — "
                 f"{report['workload']} @ scale {report['scale']}, "
                 f"seed {report['seed']}")
        blocks.append(format_table(headers, rows, title=title))
    return "\n\n".join(blocks)


def render_json(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
