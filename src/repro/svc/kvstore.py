"""Transactional KV-store / OLTP workload family (service-scale traffic).

Each request is one transaction against a shared key table: a read-only
point lookup, a blind write, a read-modify-write, or an OLTP-style
transfer touching multiple keys.  Keys are drawn from a Zipfian
popularity law over a large keyspace (10^5 keys at scale 1.0), so hot
keys collide across concurrent transactions the way real caches and
counters do; requests carry open-loop arrival timestamps from
:class:`~repro.svc.traffic.BurstyArrivals`, delivered to the scheduler
through the :class:`~repro.cpu.isa.Arrive` op, so workers experience
*queueing* under bursts rather than closed-loop lockstep.

Every transaction's plan (arrival, kind, keys, operands) is precomputed
at construction from the seed; ``expected_result`` replays the plans in
iteration order against a plain dict, which is exactly the sequential
semantics the in-order DOALL commit protocol must preserve — the sweep
engine's correctness check compares it against committed memory.

Registered factories (``repro.workloads`` registry):

* ``svc-kv``       — 60/25/15 read/write/RMW point operations
* ``svc-kv-read``  — 90/5/5 read-heavy cache-style traffic
* ``svc-oltp``     — transfer-heavy multi-key transactions
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from ..cpu.isa import Arrive, Branch, Load, Store, Work
from ..workloads.base import Fragment, Workload
from ..workloads.common import LINE, Lcg
from .traffic import BurstyArrivals, ZipfianSampler

_MASK = 0xFFFFFFFF
#: One cache line per key (no intra-line false sharing between keys).
_KEY_REGION = 0x1000_0000
_OUT_REGION = 0x0800_0000

#: Transaction kinds, in mix order: (read%, write%, rmw%, transfer%).
_KINDS = ("read", "write", "rmw", "transfer")


@dataclass(frozen=True)
class TxPlan:
    """One precomputed request: when it arrives and what it touches."""

    arrival: int
    kind: str
    #: ``(op, key, operand)`` triples; op is "read", "write" (store
    #: ``operand``) or "add" (RMW: read, add ``operand`` mod 2^32, store).
    ops: Tuple[Tuple[str, int, int], ...]
    think: int
    taken: bool


def _initial(key: int) -> int:
    """Deterministic pre-loop value of ``key`` (written by setup)."""
    return (key * 2654435761 + 0x9E37) & _MASK


class KVStoreWorkload(Workload):
    """Zipf-skewed transactional KV traffic with open-loop arrivals."""

    paradigm = "DOALL"
    #: Branch misprediction rate for the calibrated executor (service
    #: dispatch loops are branchy but predictable).
    mispredict_rate = 0.02

    def __init__(self, name: str = "svc-kv", requests: int = 96,
                 keys: int = 100_000, theta: float = 0.99, seed: int = 42,
                 mix: Tuple[int, int, int, int] = (60, 25, 15, 0),
                 ops_per_tx: int = 3, think_cycles: int = 6,
                 base_gap: int = 320, burst_gap: int = 16,
                 idle_gap: int = 1600) -> None:
        if sum(mix) != 100:
            raise ValueError(f"tx mix must sum to 100: {mix!r}")
        self.name = name
        self.iterations = requests
        self.keys = keys
        self.theta = theta
        self.seed = seed
        self.mix = tuple(mix)
        self.ops_per_tx = ops_per_tx
        self.think_cycles = think_cycles
        sampler = ZipfianSampler(keys, theta=theta, seed=seed)
        arrivals = BurstyArrivals(seed ^ 0xA771_7A1, base_gap=base_gap,
                                  burst_gap=burst_gap,
                                  idle_gap=idle_gap).schedule(requests)
        rng = Lcg((seed << 1) ^ 0xBEEF)
        self._plans: List[TxPlan] = [
            self._plan(i, arrivals[i], sampler, rng)
            for i in range(requests)]
        self._touched: Set[int] = {key for plan in self._plans
                                   for _, key, _ in plan.ops}

    # ------------------------------------------------------------------
    # Plan generation (construction-time, pure function of the seed)
    # ------------------------------------------------------------------

    def _pick_kind(self, rng: Lcg) -> str:
        draw = rng.next(100)
        running = 0
        for share, kind in zip(self.mix, _KINDS):
            running += share
            if draw < running:
                return kind
        return _KINDS[-1]

    def _plan(self, i: int, arrival: int, sampler: ZipfianSampler,
              rng: Lcg) -> TxPlan:
        kind = self._pick_kind(rng)
        ops: List[Tuple[str, int, int]] = []
        if kind == "transfer":
            src = sampler.sample()
            dst = sampler.sample()
            if dst == src:
                dst = (src + 1) % self.keys
            amount = rng.next(97) + 1
            ops.append(("read", sampler.sample(), 0))
            ops.append(("add", src, (-amount) & _MASK))
            ops.append(("add", dst, amount))
        else:
            for _ in range(self.ops_per_tx):
                key = sampler.sample()
                if kind == "read":
                    ops.append(("read", key, 0))
                elif kind == "write":
                    ops.append(("write", key, rng.next(1 << 30)))
                else:
                    ops.append(("add", key, rng.next(255) + 1))
        return TxPlan(arrival=arrival, kind=kind, ops=tuple(ops),
                      think=self.think_cycles, taken=rng.next(2) == 0)

    # ------------------------------------------------------------------
    # Addressing / memory setup
    # ------------------------------------------------------------------

    def _key_addr(self, key: int) -> int:
        return _KEY_REGION + key * LINE

    def _out_addr(self, i: int) -> int:
        return _OUT_REGION + i * LINE

    def setup(self, system) -> None:
        memory = system.hierarchy.memory
        for key in sorted(self._touched):
            memory.write_word(self._key_addr(key), _initial(key))
        for i in range(self.iterations):
            memory.write_word(self._out_addr(i), 0)

    # ------------------------------------------------------------------
    # Loop-body fragments
    # ------------------------------------------------------------------

    def _body(self, i: int) -> Fragment:
        plan = self._plans[i]
        # Open-loop arrival: wait until the request exists (or collect
        # the queue wait the scheduler already charged us with).
        yield Arrive(plan.arrival)
        acc = i & _MASK
        for op, key, operand in plan.ops:
            addr = self._key_addr(key)
            if op == "read":
                value = yield Load(addr)
            elif op == "write":
                value = operand
                yield Store(addr, value)
            else:  # add (read-modify-write)
                current = yield Load(addr)
                yield Work(1)
                value = (current + operand) & _MASK
                yield Store(addr, value)
            acc = (acc * 31 + value) & _MASK
            if plan.think:
                yield Work(plan.think)
        yield Branch(taken=plan.taken, count=2)
        yield Store(self._out_addr(i), acc)

    def sequential_iteration(self, i: int, carry: Any) -> Fragment:
        yield from self._body(i)
        return None

    def doall_iteration(self, i: int) -> Fragment:
        yield from self._body(i)

    # ------------------------------------------------------------------
    # Validation: sequential replay vs committed memory
    # ------------------------------------------------------------------

    def _fold(self, total: int, value: int) -> int:
        return (total * 131 + value) & _MASK

    def expected_result(self, system) -> int:
        table: Dict[int, int] = {key: _initial(key)
                                 for key in self._touched}
        total = 0
        for i, plan in enumerate(self._plans):
            acc = i & _MASK
            for op, key, operand in plan.ops:
                if op == "read":
                    value = table[key]
                elif op == "write":
                    value = operand
                    table[key] = value
                else:
                    value = (table[key] + operand) & _MASK
                    table[key] = value
                acc = (acc * 31 + value) & _MASK
            total = self._fold(total, acc)
        for key in sorted(self._touched):
            total = self._fold(total, table[key])
        return total

    def observed_result(self, system) -> int:
        read = system.hierarchy.read_committed
        total = 0
        for i in range(self.iterations):
            total = self._fold(total, read(self._out_addr(i)))
        for key in sorted(self._touched):
            total = self._fold(total, read(self._key_addr(key)))
        return total

    # ------------------------------------------------------------------

    def arrival_schedule(self) -> List[int]:
        """The precomputed arrival timestamps (diagnostics/tests)."""
        return [plan.arrival for plan in self._plans]

    def plans(self) -> List[TxPlan]:
        return list(self._plans)


# ----------------------------------------------------------------------
# Registry factories
# ----------------------------------------------------------------------

def _sized(scale: float) -> Tuple[int, int]:
    """(requests, keys) at ``scale``; 1.0 = 96 requests over 10^5 keys."""
    return max(8, round(96 * scale)), max(256, round(100_000 * scale))


def kv_workload(scale: float = 1.0, seed: int = 42,
                **kwargs) -> KVStoreWorkload:
    requests, keys = _sized(scale)
    params: dict = dict(name="svc-kv", requests=requests, keys=keys,
                        seed=seed, mix=(60, 25, 15, 0))
    params.update(kwargs)
    return KVStoreWorkload(**params)


def kv_read_workload(scale: float = 1.0, seed: int = 42,
                     **kwargs) -> KVStoreWorkload:
    requests, keys = _sized(scale)
    params: dict = dict(name="svc-kv-read", requests=requests, keys=keys,
                        seed=seed, mix=(90, 5, 5, 0))
    params.update(kwargs)
    return KVStoreWorkload(**params)


def oltp_workload(scale: float = 1.0, seed: int = 42,
                  **kwargs) -> KVStoreWorkload:
    requests, keys = _sized(scale)
    params: dict = dict(name="svc-oltp", requests=requests, keys=keys,
                        seed=seed, mix=(15, 10, 35, 40), ops_per_tx=4)
    params.update(kwargs)
    return KVStoreWorkload(**params)
