"""``python -m repro svc`` — tail latency, adversarial search, replay.

Three modes, all deterministic for a fixed seed (outputs carry no wall
clock, so equal invocations are byte-identical — the CI svc-smoke job
diffs exactly this):

latency (default)
    Run the open-loop KV workload observed on each backend and print
    per-backend p50/p90/p99/p999 commit-latency and queue-wait tables
    (``--format json`` for the ``hmtx-svc-latency/1`` document).

--search
    Seeded mutate-and-score hill-climb over adversarial genomes;
    optionally serialize the top survivors (``--survivors-dir``).

--replay FILE [FILE ...]
    Re-score committed survivor files; with ``--check``, exit non-zero
    unless every survivor reproduces its recorded abort rate within
    tolerance (the CI regression gate).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from .adversary import replay_survivor, search, write_survivors
from .latency import (
    DEFAULT_SYSTEMS,
    latency_report,
    render_json,
    render_text,
)


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        pathlib.Path(output).write_text(text if text.endswith("\n")
                                        else text + "\n")
        print(f"wrote {output}")
    else:
        print(text)


def _cmd_latency(args) -> int:
    report = latency_report(workload=args.workload, scale=args.scale,
                            systems=tuple(args.systems.split(",")),
                            seed=args.seed, jobs=args.jobs)
    text = render_json(report) if args.format == "json" \
        else render_text(report)
    _emit(text, args.output)
    return 0 if all(row["correct"] for row in report["rows"]) else 1


def _cmd_search(args) -> int:
    report = search(seed=args.seed, rounds=args.rounds,
                    population=args.population)
    if args.survivors_dir:
        paths = write_survivors(report, args.survivors_dir,
                                count=args.survivors,
                                min_score=args.min_score)
        report["survivors"] = paths
    text = json.dumps(report, indent=2, sort_keys=True) + "\n" \
        if args.format == "json" else _render_search(report)
    _emit(text, args.output)
    return 0


def _render_search(report) -> str:
    lines = [f"svc adversarial search: seed {report['seed']}, "
             f"{report['rounds']} rounds x {report['population']}, "
             f"{report['evaluated']} genomes evaluated"]
    for entry in report["leaderboard"][:5]:
        genome = entry["genome"]
        metrics = entry["metrics"]
        genes = " ".join(f"{k}={v}" for k, v in sorted(genome.items()))
        lines.append(f"  score {entry['score']:>9}  "
                     f"aborts/commit {metrics['aborts_per_commit']}  "
                     f"esc {metrics['escalations']}  "
                     f"fallback {metrics['fallback_entries']}  | {genes}")
    for path in report.get("survivors", []):
        lines.append(f"  survivor: {path}")
    return "\n".join(lines)


def _cmd_replay(args) -> int:
    results = [replay_survivor(path, tolerance=args.tolerance)
               for path in args.replay]
    text = json.dumps({"schema": "hmtx-svc-replay/1", "results": results},
                      indent=2, sort_keys=True) + "\n" \
        if args.format == "json" else "\n".join(
            f"{r['name']}: recorded aborts/commit "
            f"{r['recorded_aborts_per_commit']} observed "
            f"{r['observed_aborts_per_commit']} (allowed delta "
            f"{r['allowed_delta']}) -> {'ok' if r['ok'] else 'FAIL'}"
            for r in results)
    _emit(text, args.output)
    if args.check and not all(r["ok"] for r in results):
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro svc",
        description="service-scale KV/OLTP workloads: tail-latency "
                    "artifact, adversarial search, survivor replay")
    parser.add_argument("--seed", type=int, default=42,
                        help="master seed (default 42); equal seeds give "
                             "byte-identical output")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--output", default=None,
                        help="write the artifact to a file instead of "
                             "stdout")
    # latency mode ------------------------------------------------------
    parser.add_argument("--workload", default="svc-kv",
                        help="registered workload name (default svc-kv)")
    parser.add_argument("--systems", default=",".join(DEFAULT_SYSTEMS),
                        help="comma-separated backend list "
                             f"(default {','.join(DEFAULT_SYSTEMS)})")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="sweep-engine worker processes; output is "
                             "byte-identical for every jobs value")
    # search mode -------------------------------------------------------
    parser.add_argument("--search", action="store_true",
                        help="run the adversarial genome search instead "
                             "of the latency artifact")
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--population", type=int, default=4)
    parser.add_argument("--survivors-dir", default=None,
                        help="serialize top genomes as survivor JSON "
                             "files in this directory")
    parser.add_argument("--survivors", type=int, default=2,
                        help="how many survivors to write (default 2)")
    parser.add_argument("--min-score", type=float, default=0.0,
                        help="only genomes scoring at least this survive")
    # replay mode -------------------------------------------------------
    parser.add_argument("--replay", nargs="+", default=None,
                        metavar="FILE",
                        help="re-score survivor files instead of running "
                             "the latency artifact")
    parser.add_argument("--check", action="store_true",
                        help="with --replay: fail unless every survivor "
                             "reproduces its recorded abort rate")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative abort-rate tolerance for --check "
                             "(default 0.25)")
    args = parser.parse_args(argv)
    if args.search and args.replay:
        print("--search and --replay are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.search:
        return _cmd_search(args)
    if args.replay:
        return _cmd_replay(args)
    return _cmd_latency(args)


if __name__ == "__main__":
    raise SystemExit(main())
