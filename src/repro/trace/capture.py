"""Backend-level MTX event capture, uniform across TM implementations.

:class:`~repro.trace.events.ProtocolTracer` records cache-protocol events
and therefore only attaches to a real :class:`~repro.coherence.hierarchy.
MemoryHierarchy` — the HMTX backend.  The race detector
(:mod:`repro.analysis.racecheck`) needs the *architectural* story —
which VID loaded/stored which value at which address, and when commits,
aborts and VID resets happened — for **every** registered backend, so it
can replay MTX semantics against any TM implementation.

:class:`BackendTracer` wraps the executor-facing surface of a
:class:`~repro.backends.TMBackend` (``load``/``store``/``kernel_load``/
``kernel_store``/``commit_mtx``/``abort_mtx``/``vid_reset``) with the same
method-wrapping technique as the protocol tracer: untraced runs pay
nothing, and the recorded stream reuses :class:`TraceEvent` so all of the
existing formatting/query tooling applies.

Event kinds produced:

``load`` / ``store``
    One architectural memory access: ``vid`` is the issuing thread's VID
    *at issue time* (0 for non-speculative and kernel accesses), ``value``
    the data moved.  Accesses that raise a misspeculation are recorded as
    ``misspeculation`` instead.
``commit``
    A successful ``commitMTX(vid)`` — the group-commit point.
``abort``
    All uncommitted state was flushed (explicit ``abortMTX`` or the
    recovery path of a detected misspeculation).
``misspeculation``
    An access or commit detected a violation; always followed by the
    ``abort`` event recording the flush.
``vid_reset``
    The section 4.6 VID-namespace recycle.

Wrong-path (squashed) loads are deliberately *not* recorded: they are
architecturally invisible, and the race detector must not treat them as
real reads.

The event store is a **ring**: past ``capacity`` the *oldest* event is
evicted for each new one, so a long run always keeps its most recent
window (where the interesting endgame usually is) instead of silently
freezing at the start.  ``dropped_events`` counts the evictions;
:func:`~repro.trace.format.format_trace` surfaces it in the header and
the race detector reports any truncated trace as a hard finding (rule
``RC000`` — a racecheck over a partial window proves nothing).
"""

from __future__ import annotations

import functools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..errors import MisspeculationError
from .events import TraceEvent


class BackendTracer:
    """Records the architectural MTX events of one backend run.

    Usage::

        tracer = BackendTracer.attach(system)
        ... run ...
        analyse(tracer.events)
        tracer.detach()
    """

    #: Methods returning an AccessResult, wrapped as value-carrying events.
    _ACCESS_METHODS = ("load", "store", "kernel_load", "kernel_store")

    def __init__(self, system, capacity: int = 1_000_000) -> None:
        self.system = system
        self.capacity = capacity
        #: Ring of the most recent ``capacity`` events (oldest evicted
        #: first).  A deque without ``maxlen`` so ``capacity`` can be
        #: adjusted after construction (tests do).
        self.events: Deque[TraceEvent] = deque()
        self.dropped = 0
        self._seq = 0
        self._originals: Dict[str, Callable] = {}

    @property
    def dropped_events(self) -> int:
        """Events evicted from the ring (0 means the trace is complete)."""
        return self.dropped

    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, system) -> "BackendTracer":
        tracer = cls(system)
        tracer._wrap_all()
        return tracer

    def detach(self) -> None:
        """Restore the system's unwrapped methods (reverse wrap order, so
        stacked wrappers peel off like a stack)."""
        for name in reversed(list(self._originals)):
            setattr(self.system, name, self._originals[name])
        self._originals.clear()

    # ------------------------------------------------------------------

    def record(self, kind: str, core: Optional[int] = None,
               vid: Optional[int] = None, addr: Optional[int] = None,
               detail: str = "", value: Optional[int] = None) -> None:
        while len(self.events) >= self.capacity:
            self.events.popleft()
            self.dropped += 1
        self._seq += 1
        self.events.append(TraceEvent(self._seq, kind, core, vid, addr,
                                      detail, value))

    def _context_vid(self, tid: int) -> int:
        ctx = self.system.contexts.get(tid)
        return ctx.vid if ctx is not None else 0

    def _wrap_all(self) -> None:
        for name in self._ACCESS_METHODS:
            self._wrap_access(name)
        self._wrap_commit()
        self._wrap_abort_mtx()
        self._wrap_vid_reset()

    def _wrap_access(self, name: str) -> None:
        original = getattr(self.system, name)
        self._originals[name] = original
        tracer = self
        kind = "store" if name.endswith("store") else "load"
        is_store = kind == "store"
        # Kernel accesses always run at VID 0 regardless of the thread's
        # VID register (section 5.2).
        kernel = name.startswith("kernel")

        @functools.wraps(original)
        def wrapped(tid, addr, *args, **kwargs):
            vid = 0 if kernel else tracer._context_vid(tid)
            try:
                result = original(tid, addr, *args, **kwargs)
            except MisspeculationError as err:
                tracer.record("misspeculation", vid=err.vid, addr=addr,
                              detail=err.reason)
                tracer.record("abort",
                              detail="uncommitted state flushed "
                                     f"({name} misspeculated)")
                raise
            value = args[0] if is_store and args \
                else kwargs.get("value", result.value) if is_store \
                else result.value
            tracer.record(kind, vid=vid, addr=addr, value=value,
                          detail="kernel" if kernel else "")
            return result

        setattr(self.system, name, wrapped)

    def _wrap_commit(self) -> None:
        original = self.system.commit_mtx
        self._originals["commit_mtx"] = original
        tracer = self

        @functools.wraps(original)
        def wrapped(tid, vid, *args, **kwargs):
            try:
                result = original(tid, vid, *args, **kwargs)
            except MisspeculationError as err:
                # SMTX-style commit-time validation failure: the abort
                # already flushed all uncommitted state.
                tracer.record("misspeculation", vid=vid,
                              addr=getattr(err, "addr", None),
                              detail=err.reason)
                tracer.record("abort",
                              detail="uncommitted state flushed "
                                     "(commit validation failed)")
                raise
            tracer.record("commit", vid=vid, detail=f"VID {vid}")
            return result

        setattr(self.system, "commit_mtx", wrapped)

    def _wrap_abort_mtx(self) -> None:
        original = self.system.abort_mtx
        self._originals["abort_mtx"] = original
        tracer = self

        @functools.wraps(original)
        def wrapped(tid, vid, *args, **kwargs):
            try:
                return original(tid, vid, *args, **kwargs)
            except MisspeculationError:
                tracer.record("abort", vid=vid,
                              detail=f"explicit abortMTX({vid})")
                raise

        setattr(self.system, "abort_mtx", wrapped)

    def _wrap_vid_reset(self) -> None:
        original = self.system.vid_reset
        self._originals["vid_reset"] = original
        tracer = self

        @functools.wraps(original)
        def wrapped(*args, **kwargs):
            result = original(*args, **kwargs)
            tracer.record("vid_reset", detail="VID namespace recycled")
            return result

        setattr(self.system, "vid_reset", wrapped)

    # ------------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
