"""Rendering protocol traces as text timelines."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .events import TraceEvent


def format_trace(events: Iterable[TraceEvent],
                 limit: Optional[int] = None,
                 dropped: int = 0) -> str:
    """One line per event, in sequence order.

    ``dropped`` (a ring tracer's ``dropped_events``) is surfaced in the
    header so a truncated window is never mistaken for a full trace.
    """
    events = list(events)
    shown = events if limit is None else events[:limit]
    lines = ["   seq kind           details",
             "------ -------------- ----------------------------------"]
    if dropped:
        lines.insert(
            0, f"!! ring overflow: {dropped} oldest events dropped "
               f"(showing the most recent {len(events)})")
    lines += [event.render() for event in shown]
    if limit is not None and len(events) > limit:
        lines.append(f"... ({len(events) - limit} more events)")
    return "\n".join(lines)


def format_address_history(events: Iterable[TraceEvent], addr: int,
                           line_size: int = 64) -> str:
    """The Figure 5 view: everything that happened to one line."""
    base = addr - (addr % line_size)
    relevant = [e for e in events
                if e.addr is not None and e.addr - (e.addr % line_size) == base]
    header = f"history of line 0x{base:x} ({len(relevant)} events)"
    return "\n".join([header] + ["  " + e.render() for e in relevant])


def format_summary(summary: Dict[str, int]) -> str:
    width = max((len(k) for k in summary), default=4)
    lines = ["event counts:"]
    for kind in sorted(summary):
        lines.append(f"  {kind.ljust(width)}  {summary[kind]}")
    return "\n".join(lines)
