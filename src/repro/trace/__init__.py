"""Protocol tracing and trace rendering (debugging/teaching tooling)."""

from .events import ProtocolTracer, TraceEvent
from .format import format_address_history, format_summary, format_trace

__all__ = [
    "ProtocolTracer",
    "TraceEvent",
    "format_address_history",
    "format_summary",
    "format_trace",
]
