"""Protocol tracing and trace rendering (debugging/teaching tooling)."""

from .capture import BackendTracer
from .events import ProtocolTracer, TraceEvent
from .format import format_address_history, format_summary, format_trace

__all__ = [
    "BackendTracer",
    "ProtocolTracer",
    "TraceEvent",
    "format_address_history",
    "format_summary",
    "format_trace",
]
