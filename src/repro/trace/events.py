"""Protocol event tracing.

A :class:`ProtocolTracer` attaches to a :class:`~repro.coherence.hierarchy.
MemoryHierarchy` and records the protocol-level story of an execution:
accesses with the version they hit, version creations (the Figure 4 copy
arcs), commits, aborts, overflow spills, and misspeculations.  The trace is
what Figure 5 is for one address, for a whole run — invaluable both for
debugging workloads and for teaching the protocol.

Tracing is implemented with method wrapping rather than hooks baked into
the hierarchy's hot paths, so untraced runs pay nothing.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..coherence.hierarchy import MemoryHierarchy
from ..errors import MisspeculationError


@dataclass(frozen=True)
class TraceEvent:
    """One protocol-level event."""

    seq: int
    kind: str          # load/store/commit/abort/misspeculation/...
    core: Optional[int] = None
    vid: Optional[int] = None
    addr: Optional[int] = None
    detail: str = ""
    #: Data value moved by a load/store (None for non-access events).
    #: The race detector replays value flow from this field.
    value: Optional[int] = None

    def render(self) -> str:
        parts = [f"{self.seq:>6}", self.kind.ljust(14)]
        if self.core is not None:
            parts.append(f"core{self.core}")
        if self.vid is not None:
            parts.append(f"vid={self.vid}")
        if self.addr is not None:
            parts.append(f"addr=0x{self.addr:x}")
        if self.value is not None:
            parts.append(f"val={self.value}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


class ProtocolTracer:
    """Records the protocol events of one hierarchy.

    Usage::

        tracer = ProtocolTracer.attach(system.hierarchy)
        ... run ...
        print(format_trace(tracer.events))
        tracer.detach()

    Filters: pass ``addresses={...}`` to trace only specific lines (line
    addresses), or leave None to trace everything.
    """

    def __init__(self, hierarchy: MemoryHierarchy,
                 addresses: Optional[set] = None,
                 capacity: int = 100_000) -> None:
        self.hierarchy = hierarchy
        self.addresses = addresses
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._seq = 0
        self._originals: Dict[str, Callable] = {}

    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, hierarchy: MemoryHierarchy,
               addresses: Optional[set] = None) -> "ProtocolTracer":
        tracer = cls(hierarchy, addresses=addresses)
        tracer._wrap_all()
        return tracer

    def detach(self) -> None:
        """Restore the hierarchy's unwrapped methods.

        Unwinds in reverse wrap order so stacked tracers (or any other
        wrapper applied after this one) peel off like a stack: restoring
        in insertion order would resurrect the innermost function over an
        outer tracer's wrapper and silently stop recording its events.
        """
        for name in reversed(list(self._originals)):
            setattr(self.hierarchy, name, self._originals[name])
        self._originals.clear()

    # ------------------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr - (addr % self.hierarchy.config.line_size)

    def _interesting(self, addr: Optional[int]) -> bool:
        if addr is None or self.addresses is None:
            return True
        return self._line(addr) in self.addresses

    def record(self, kind: str, core: Optional[int] = None,
               vid: Optional[int] = None, addr: Optional[int] = None,
               detail: str = "", value: Optional[int] = None) -> None:
        if not self._interesting(addr):
            return
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self._seq += 1
        self.events.append(TraceEvent(self._seq, kind, core, vid, addr,
                                      detail, value))

    # ------------------------------------------------------------------

    def _wrap_all(self) -> None:
        self._wrap_access("load")
        self._wrap_access("store")
        self._wrap_broadcast("commit", lambda vid: f"VID {vid}")
        self._wrap_broadcast("abort", lambda: "all uncommitted state flushed")
        self._wrap_broadcast("vid_reset", lambda: "VID namespace recycled")

    def _wrap_access(self, name: str) -> None:
        original = getattr(self.hierarchy, name)
        self._originals[name] = original
        tracer = self

        @functools.wraps(original)
        def wrapped(core, addr, vid, *args, **kwargs):
            versions_before = len(tracer.hierarchy.versions_everywhere(addr)) \
                if tracer._interesting(addr) else 0
            try:
                result = original(core, addr, vid, *args, **kwargs)
            except MisspeculationError as err:
                tracer.record("misspeculation", core, vid, addr,
                              detail=err.reason)
                raise
            detail = f"hit={result.served_by}"
            if result.created_version:
                detail += " +version"
            if result.sla_required:
                detail += " sla"
            tracer.record(name, core, vid, addr, detail=detail,
                          value=result.value)
            if tracer._interesting(addr):
                after = len(tracer.hierarchy.versions_everywhere(addr))
                if after != versions_before:
                    tracer.record("versions", core, vid, addr,
                                  detail=f"{versions_before} -> {after} cached")
            return result

        setattr(self.hierarchy, name, wrapped)

    def _wrap_broadcast(self, name: str, describe: Callable[..., str]) -> None:
        original = getattr(self.hierarchy, name)
        self._originals[name] = original
        tracer = self

        @functools.wraps(original)
        def wrapped(*args, **kwargs):
            result = original(*args, **kwargs)
            vid = args[0] if name == "commit" and args else None
            tracer.record(name, vid=vid, detail=describe(*args, **kwargs))
            return result

        setattr(self.hierarchy, name, wrapped)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_address(self, addr: int) -> List[TraceEvent]:
        line = self._line(addr)
        return [e for e in self.events
                if e.addr is not None and self._line(e.addr) == line]

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
