"""Low-overhead metrics registry: counters, gauges, labeled histograms.

Prometheus-flavoured naming (``aborts_total{cause="conflict"}``) over the
simulated machine: every series is identified by a metric name plus a
sorted tuple of ``(label, value)`` pairs, instruments are cached so the
hot-path cost of a repeat lookup is one dict probe, and
:meth:`MetricsRegistry.collect` renders everything in sorted order so two
identical runs produce byte-identical output (the same determinism
contract the sweep engine pins for reports).

The registry is passive — it never hooks anything itself.  The
:class:`~repro.obs.session.ObsSession` publishes into it from its method
wraps, and end-of-run totals (SystemStats, HierarchyStats, txctl
ContentionStats) are snapshotted in at finalize time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default cycle-latency buckets (powers of four up the commit range).
DEFAULT_CYCLE_BUCKETS: Tuple[int, ...] = (
    4, 16, 64, 256, 1024, 4096, 16384, 65536)

#: Finer-grained buckets for the svc tail-latency artifact: powers of
#: two give ~2x quantile resolution across the commit-latency and
#: queue-wait ranges the KV workloads produce (tens to tens of
#: thousands of cycles).
SVC_LATENCY_BUCKETS: Tuple[int, ...] = (
    8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
    16384, 32768, 65536, 131072, 262144)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Counter:
    """Monotone event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written (or peak-tracked) instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def set_max(self, value: int) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket cumulative histogram (``le`` semantics + sum/count)."""

    __slots__ = ("buckets", "counts", "overflow", "total", "count",
                 "max_value")

    def __init__(self, buckets: Sequence[int] = DEFAULT_CYCLE_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.total = 0
        self.count = 0
        self.max_value = 0

    def observe(self, value: int) -> None:
        self.total += value
        self.count += 1
        if value > self.max_value:
            self.max_value = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, count)`` pairs with counts accumulated, +Inf last."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((str(bound), running))
        out.append(("+Inf", running + self.overflow))
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile, linearly interpolated within its bucket.

        Bucketed estimate in the Prometheus ``histogram_quantile``
        style: find the bucket holding the ``q * count``-th observation
        and interpolate between its lower and upper bound.  The
        overflow bucket (values above the last bound) interpolates up
        to the tracked maximum, so tail quantiles stay finite and never
        exceed an actually-observed value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1]: {q!r}")
        if self.count == 0:
            return 0.0
        if self.max_value == 0:
            # Every observation was zero (or the snapshot predates max
            # tracking and is all-zero anyway).
            return 0.0
        target = q * self.count
        running = 0
        lower = 0
        for bound, count in zip(self.buckets, self.counts):
            if count and running + count >= target:
                fraction = (target - running) / count
                value = lower + (bound - lower) * fraction
                return min(float(value), float(self.max_value))
            running += count
            lower = bound
        # Target lands in the overflow bucket: interpolate from the last
        # bound toward the observed maximum.
        if self.overflow:
            fraction = (target - running) / self.overflow
            fraction = min(max(fraction, 0.0), 1.0)
            top = max(self.max_value, lower)
            return float(lower + (top - lower) * fraction)
        return min(float(lower), float(self.max_value))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state (the per-series dict ``collect`` renders)."""
        return {
            "buckets": {le: count for le, count in self.cumulative()},
            "sum": self.total,
            "count": self.count,
            "max": self.max_value,
        }

    @classmethod
    def from_cumulative(cls, snapshot: Dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from a :meth:`snapshot`-shaped dict.

        Lets report consumers (the svc tail-latency artifact) compute
        quantiles from digests that crossed a process boundary as plain
        data.
        """
        bounds = sorted(int(le) for le in snapshot["buckets"]
                        if le != "+Inf")
        hist = cls(buckets=tuple(bounds))
        running = 0
        for i, bound in enumerate(bounds):
            cum = snapshot["buckets"][str(bound)]
            hist.counts[i] = cum - running
            running = cum
        hist.overflow = snapshot["buckets"].get("+Inf", running) - running
        hist.count = snapshot["count"]
        hist.total = snapshot["sum"]
        hist.max_value = snapshot.get("max", 0)
        return hist


class MetricsRegistry:
    """Caches instruments by ``(name, labels)``; renders deterministically."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instrument accessors ------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str,
                  buckets: Optional[Sequence[int]] = None,
                  **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                buckets or DEFAULT_CYCLE_BUCKETS)
        return inst

    # -- output --------------------------------------------------------

    def collect(self) -> Dict[str, Any]:
        """JSON-ready snapshot, sorted for diffability."""
        counters = {f"{name}{_render_labels(labels)}": inst.value
                    for (name, labels), inst in self._counters.items()}
        gauges = {f"{name}{_render_labels(labels)}": inst.value
                  for (name, labels), inst in self._gauges.items()}
        histograms = {}
        for (name, labels), inst in self._histograms.items():
            histograms[f"{name}{_render_labels(labels)}"] = inst.snapshot()
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def format_text(self) -> str:
        """Exposition-style text dump, one series per line, sorted."""
        snap = self.collect()
        lines: List[str] = []
        for series, value in snap["counters"].items():
            lines.append(f"{series} {value}")
        for series, value in snap["gauges"].items():
            lines.append(f"{series} {value}")
        for series, hist in snap["histograms"].items():
            for le, count in hist["buckets"].items():
                lines.append(f'{series}_bucket{{le="{le}"}} {count}')
            lines.append(f"{series}_sum {hist['sum']}")
            lines.append(f"{series}_count {hist['count']}")
        return "\n".join(lines)
