"""The one nullable hook point the hot path checks.

Observability attaches to a run through exactly one module-level name:
``active``.  It is ``None`` by default, and every instrumentation site in
the runtime guards on that *before* doing anything else::

    from ..obs import hooks as _obs
    ...
    if _obs.active is not None:
        _obs.active.attach_system(system)

With ``active is None`` the guard is a single attribute load and identity
compare on a code path that runs a handful of times per run (system and
scheduler construction, spin-loop entry) — never inside the scheduler's
fused per-op loop — so instrumentation-off runs execute the exact same op
stream and produce bit-identical results (pinned by
``tests/obs/test_noop_guard.py`` and the fastpath goldens).

This module deliberately imports nothing from the rest of the package:
``runtime.paradigms.base`` imports it at module load, and any repro import
here would cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

#: The currently active :class:`~repro.obs.session.ObsSession`, or None.
#: Only :func:`activate` / :func:`deactivate` should write this.
active: Optional[object] = None


def deactivate() -> None:
    """Clear the active session (idempotent)."""
    global active
    active = None


@contextmanager
def activate(session) -> Iterator[object]:
    """Install ``session`` as the active observer for the dynamic extent.

    Nesting is rejected rather than silently shadowed: a run observed by
    two sessions would double-wrap every backend method.
    """
    global active
    if active is not None:
        raise RuntimeError("an ObsSession is already active")
    active = session
    try:
        yield session
    finally:
        active = None
