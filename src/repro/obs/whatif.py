"""Causal what-if profiler: rank machine knobs by makespan sensitivity.

Cycle attribution says where cycles *went*; it cannot say what would
*help*.  A phase can hold 40% of all cycles yet sit off the critical
path (threads would idle the same cycles anyway), while a 2%-share
serialisation point gates everything downstream.  Coz-style causal
profiling (Curtsinger & Berger, PAPERS.md) resolves this by *experiment*
instead of accounting: perturb one latency at a time, measure the
makespan response, and rank knobs by the measured sensitivity.

Here the machine is simulated, so the experiment is exact rather than
sampled: for each (topology preset × backend × workload) combination the
profiler runs a baseline plus one pair of runs per knob — the knob
scaled to ``1±delta`` — through the shared
:class:`~repro.experiments.engine.SweepEngine` (cached, byte-identical
across ``--jobs``), and fits the central-difference **elasticity**

    sensitivity = (makespan(+delta) - makespan(-delta))
                  / (2 * delta * makespan(baseline))

i.e. percent makespan change per percent knob change.  The committed
``REPORT_whatif.json`` carries, per combination, the ranked knob table
*and* the baseline phase shares — the point of the artifact is exactly
the places where those two orderings disagree.

Knobs (all latency-class parameters of the machine model):

``commit_multicast``   on-die hop of the commit/abort multicast tree
``reset_scrub``        the section 4.6 VID-reset scrub barrier
                       (:attr:`~repro.topology.TopologySpec.scrub_scale`)
``cross_socket_hop``   socket-interconnect hop (QPI/UPI class)
``dir_occupancy``      directory bank service occupancy
``l1_miss``            L1-miss service latency (the LLC slice hit time)
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import MachineConfig
from .profile import load_digest

WHATIF_SCHEMA = "hmtx-obs-whatif/1"

DEFAULT_DELTA = 0.25
DEFAULT_PRESETS = ("2s8c", "4s16c")
DEFAULT_SYSTEMS = ("hmtx", "smtx-minimal")
DEFAULT_WORKLOADS = ("svc-kv", "130.li")
DEFAULT_OUTPUT = "REPORT_whatif.json"


# ----------------------------------------------------------------------
# Knob registry
# ----------------------------------------------------------------------

def _scaled(value: int, factor: float) -> int:
    return max(1, int(round(value * factor)))


def _with_topology(machine: MachineConfig, **changes) -> MachineConfig:
    spec = dataclasses.replace(machine.topology, **changes)
    return dataclasses.replace(machine, topology=spec)


@dataclasses.dataclass(frozen=True)
class Knob:
    """One perturbable machine parameter."""

    name: str
    #: Dotted path of the underlying config field (documentation only).
    param: str
    description: str
    applies: Callable[[MachineConfig], bool]
    value: Callable[[MachineConfig], Any]
    #: ``apply(machine, factor) -> (perturbed machine, applied value)``.
    apply: Callable[[MachineConfig, float], Tuple[MachineConfig, Any]]


def _knob_intra(machine: MachineConfig,
                factor: float) -> Tuple[MachineConfig, int]:
    value = _scaled(machine.topology.intra_hop_latency, factor)
    return _with_topology(machine, intra_hop_latency=value), value


def _knob_scrub(machine: MachineConfig,
                factor: float) -> Tuple[MachineConfig, float]:
    value = round(machine.topology.scrub_scale * factor, 6)
    return _with_topology(machine, scrub_scale=value), value


def _knob_cross(machine: MachineConfig,
                factor: float) -> Tuple[MachineConfig, int]:
    value = _scaled(machine.topology.cross_hop_latency, factor)
    return _with_topology(machine, cross_hop_latency=value), value


def _knob_occupancy(machine: MachineConfig,
                    factor: float) -> Tuple[MachineConfig, int]:
    value = _scaled(machine.bank_occupancy, factor)
    return dataclasses.replace(machine, bank_occupancy=value), value


def _knob_l1_miss(machine: MachineConfig,
                  factor: float) -> Tuple[MachineConfig, int]:
    if machine.topology is not None:
        value = _scaled(machine.topology.llc_slice_latency, factor)
        return _with_topology(machine, llc_slice_latency=value), value
    value = _scaled(machine.l2_latency, factor)
    return dataclasses.replace(machine, l2_latency=value), value


#: Registry order is report order (deterministic).
KNOBS: Tuple[Knob, ...] = (
    Knob("commit_multicast", "topology.intra_hop_latency",
         "on-die hop of the commit/abort multicast tree",
         applies=lambda m: m.topology is not None,
         value=lambda m: m.topology.intra_hop_latency,
         apply=_knob_intra),
    Knob("reset_scrub", "topology.scrub_scale",
         "section 4.6 VID-reset scrub-barrier stall",
         applies=lambda m: m.topology is not None,
         value=lambda m: m.topology.scrub_scale,
         apply=_knob_scrub),
    Knob("cross_socket_hop", "topology.cross_hop_latency",
         "socket-interconnect hop latency",
         applies=lambda m: m.topology is not None,
         value=lambda m: m.topology.cross_hop_latency,
         apply=_knob_cross),
    Knob("dir_occupancy", "machine.bank_occupancy",
         "directory bank service occupancy",
         applies=lambda m: m.coherence == "directory",
         value=lambda m: m.bank_occupancy,
         apply=_knob_occupancy),
    Knob("l1_miss", "topology.llc_slice_latency",
         "L1-miss service latency (LLC slice hit time)",
         applies=lambda m: True,
         value=lambda m: (m.topology.llc_slice_latency
                          if m.topology is not None else m.l2_latency),
         apply=_knob_l1_miss),
)

KNOB_NAMES = tuple(knob.name for knob in KNOBS)


def knobs_by_name(names: Sequence[str]) -> Tuple[Knob, ...]:
    table = {knob.name: knob for knob in KNOBS}
    missing = [name for name in names if name not in table]
    if missing:
        raise KeyError(f"unknown knob(s) {missing}; choose from "
                       f"{list(KNOB_NAMES)}")
    return tuple(table[name] for name in names)


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------

def run_whatif(presets: Sequence[str] = DEFAULT_PRESETS,
               systems: Sequence[str] = DEFAULT_SYSTEMS,
               workloads: Sequence[str] = DEFAULT_WORKLOADS,
               knobs: Sequence[str] = KNOB_NAMES,
               delta: float = DEFAULT_DELTA,
               scale: float = 1.0,
               jobs: int = 1,
               engine=None) -> Dict[str, Any]:
    """Run the full perturbation matrix; returns the report dict.

    One observed baseline per (preset × workload × system), plus an
    unobserved ``1±delta`` run pair per applicable knob — all dispatched
    as a single engine batch so ``--jobs`` parallelises across the whole
    matrix.
    """
    from ..experiments.engine import RunRequest, SweepEngine  # lint-ok: RL005 (keeps repro.obs import-light; the sweep stack loads only when a what-if actually runs)
    from ..experiments.scaling_sweep import resolve_preset, scaling_machine  # lint-ok: RL005 (same lazy sweep-stack boundary as the engine import above)
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    engine = engine or SweepEngine(jobs=jobs)
    selected = knobs_by_name(knobs)

    # Build the whole request matrix first (one batch = full parallelism),
    # remembering for each combo which slice of it is whose.
    requests: List[Any] = []
    plan = []
    for preset in presets:
        machine = scaling_machine(preset)
        for workload in workloads:
            for system in systems:
                baseline_at = len(requests)
                requests.append(RunRequest(
                    workload=workload, system=system, scale=scale,
                    machine=machine, observe=True))
                knob_slots = []
                for knob in selected:
                    if not knob.applies(machine):
                        continue
                    up_machine, up_value = knob.apply(machine, 1.0 + delta)
                    down_machine, down_value = knob.apply(machine,
                                                          1.0 - delta)
                    knob_slots.append((knob, up_value, down_value,
                                       len(requests), len(requests) + 1))
                    requests.append(RunRequest(
                        workload=workload, system=system, scale=scale,
                        machine=up_machine))
                    requests.append(RunRequest(
                        workload=workload, system=system, scale=scale,
                        machine=down_machine))
                plan.append((preset, workload, system, machine,
                             baseline_at, knob_slots))
    records = engine.run(requests)

    combos = []
    for preset, workload, system, machine, baseline_at, knob_slots in plan:
        baseline = records[baseline_at]
        base_makespan = max(1, baseline.cycles)
        digest = load_digest(baseline.obs_digest)
        total = max(1, digest["total_thread_cycles"])
        rows = []
        for knob, up_value, down_value, up_at, down_at in knob_slots:
            up = records[up_at].cycles
            down = records[down_at].cycles
            sensitivity = (up - down) / (2.0 * delta * base_makespan)
            rows.append({
                "knob": knob.name,
                "param": knob.param,
                "base": knob.value(machine),
                "up": up_value,
                "down": down_value,
                "makespan": {"base": baseline.cycles, "up": up,
                             "down": down},
                "elasticity": {
                    "up": round((up - base_makespan)
                                / (delta * base_makespan), 4),
                    "down": round((down - base_makespan)
                                  / (-delta * base_makespan), 4),
                },
                "sensitivity": round(sensitivity, 4),
            })
        rows.sort(key=lambda row: (-abs(row["sensitivity"]), row["knob"]))
        combos.append({
            "preset": preset,
            "workload": workload,
            "system": system,
            "baseline": {
                "makespan": baseline.cycles,
                "vid_resets": digest["vid_resets"],
                "phases": digest["categories"],
                "phase_shares": {
                    category: round(cycles / total, 4)
                    for category, cycles in digest["categories"].items()},
            },
            "knobs": rows,
            "ranking": [row["knob"] for row in rows],
        })
    return {
        "schema": WHATIF_SCHEMA,
        "scale": scale,
        "delta": delta,
        "presets": {name: resolve_preset(name).describe()
                    for name in presets},
        "knobs": {knob.name: {"param": knob.param,
                              "description": knob.description}
                  for knob in selected},
        "combos": combos,
    }


# ----------------------------------------------------------------------
# Report output (clock-free: the artifact is a function of its runs)
# ----------------------------------------------------------------------

def write_report(report: Dict[str, Any], path) -> pathlib.Path:
    output = pathlib.Path(path)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    return output


def format_whatif(report: Dict[str, Any]) -> str:
    """Terminal view: ranked knob table per combination."""
    lines = [f"what-if sensitivity (delta ±{report['delta']:.0%}, "
             f"scale {report['scale']}) — "
             f"% makespan change per % knob change"]
    for combo in report["combos"]:
        base = combo["baseline"]
        lines.append(f"\n{combo['workload']}/{combo['system']} on "
                     f"{combo['preset']}: makespan "
                     f"{base['makespan']:,} cycles, "
                     f"{base['vid_resets']} vid reset(s)")
        for rank, row in enumerate(combo["knobs"], 1):
            makespan = row["makespan"]
            swing = makespan["up"] - makespan["down"]
            lines.append(
                f"  {rank}. {row['knob']:<18} sensitivity "
                f"{row['sensitivity']:+8.4f}  "
                f"(makespan {makespan['down']:,} .. {makespan['up']:,}, "
                f"swing {swing:+,})")
        shares = sorted(base["phase_shares"].items(),
                        key=lambda kv: -kv[1])[:3]
        lines.append("     cycle shares for contrast: "
                     + ", ".join(f"{category} {share:.0%}"
                                 for category, share in shares))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI (``python -m repro obs whatif``)
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    import argparse  # lint-ok: RL005 (CLI-only dependency; library users of run_whatif never pay for it)
    parser = argparse.ArgumentParser(
        prog="python -m repro obs whatif",
        description="causal what-if profiler: perturb one machine knob "
                    "at a time, rank knobs by makespan sensitivity")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: one preset, one backend, one "
                             "workload, reset_scrub knob only")
    parser.add_argument("--presets", default=None,
                        help="comma-separated topology presets (default "
                             f"{','.join(DEFAULT_PRESETS)})")
    parser.add_argument("--systems", default=None,
                        help="comma-separated backends (default "
                             f"{','.join(DEFAULT_SYSTEMS)})")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workloads (default "
                             f"{','.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--knobs", default=None,
                        help="comma-separated knob names (default all: "
                             f"{','.join(KNOB_NAMES)})")
    parser.add_argument("--delta", type=float, default=DEFAULT_DELTA,
                        help=f"perturbation fraction "
                             f"(default {DEFAULT_DELTA})")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="sweep-engine worker processes; the report "
                             "is byte-identical for every value")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"report file (default {DEFAULT_OUTPUT}; "
                             f"'-' to skip writing)")
    args = parser.parse_args(argv)

    presets: Sequence[str] = DEFAULT_PRESETS
    systems: Sequence[str] = DEFAULT_SYSTEMS
    workloads: Sequence[str] = DEFAULT_WORKLOADS
    knobs: Sequence[str] = KNOB_NAMES
    scale = args.scale
    if args.quick:
        presets = ("2s8c",)
        systems = ("hmtx",)
        workloads = ("svc-kv",)
        knobs = ("reset_scrub",)
        if args.scale == 1.0:
            scale = 0.5
    if args.presets:
        presets = tuple(args.presets.split(","))
    if args.systems:
        systems = tuple(args.systems.split(","))
    if args.workloads:
        workloads = tuple(args.workloads.split(","))
    if args.knobs:
        knobs = tuple(args.knobs.split(","))

    report = run_whatif(presets=presets, systems=systems,
                        workloads=workloads, knobs=knobs,
                        delta=args.delta, scale=scale, jobs=args.jobs)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_whatif(report))
    if args.output != "-":
        output = write_report(report, args.output)
        print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
