"""The live observer: wraps one run's backend + scheduler, records streams.

An :class:`ObsSession` is installed via :func:`repro.obs.hooks.activate`;
while active, :func:`~repro.runtime.paradigms.base.fresh_system` and
:func:`~repro.runtime.paradigms.base.make_scheduler` hand it every system
and scheduler they build, and it instruments them with the repo's
method-wrapping idiom (the ProtocolTracer/BackendTracer technique):
original methods are stashed, ``functools.wraps``-preserving closures
installed as instance attributes, and :meth:`detach` restores everything.
Unobserved runs never see any of this — the hook point is ``None`` and
the simulator executes its unmodified methods.

Recorded streams (all stamped in *simulated* cycles, ordered by one
shared monotone ``seq``):

* **op samples** — one ``[seq, tid, start, latency, vid, pretag]`` row
  per executed core op, from the wrapped ``CoreExecutor.execute`` (which
  receives the op's start time).  ``pretag`` is an optional category
  assigned at record time (spin retags, overflow flags); final
  attribution happens in :mod:`repro.obs.profile`.
* **events** — transaction lifecycle points (allocate/begin/commit/
  conflict/abort/vid_reset/stall) as small dicts.
* **spans** — :class:`~repro.obs.timeline.TxSpan` per transaction
  attempt.
* **metrics** — published into a :class:`~repro.obs.registry.
  MetricsRegistry` live (commits, aborts by cause, commit latency,
  footprint peaks) plus an end-of-run snapshot of SystemStats /
  HierarchyStats / ContentionStats totals.

The wraps are observation-only: they never change latencies, values, or
the op stream, so an instrumented run is simulation-identical to an
uninstrumented one (asserted by ``tests/obs/test_noop_guard.py``).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cpu.isa import Arrive
from ..errors import MisspeculationError
from ..txctl.causes import classify
from . import hooks
from .registry import SVC_LATENCY_BUCKETS, MetricsRegistry
from .timeline import TxSpan

#: How often (scheduler steps) the runnable-thread counter is sampled.
RUNNABLE_SAMPLE_EVERY = 64

#: Cycle-attribution categories (see profile.py / DESIGN.md §11).
CATEGORIES = ("useful", "commit_stall", "vid_reset", "abort_replay",
              "queue_wait", "overflow", "idle")


class ObsSession:
    """One observed run: recorded streams plus the metrics registry."""

    def __init__(self,
                 runnable_sample_every: int = RUNNABLE_SAMPLE_EVERY) -> None:
        self.registry = MetricsRegistry()
        #: ``[seq, tid, start, latency, vid, pretag]`` per executed op.
        self.samples: List[list] = []
        self.events: List[Dict[str, Any]] = []
        self.spans: List[TxSpan] = []
        self.line_access_counts: Dict[int, int] = {}
        self.line_conflict_counts: Dict[int, int] = {}
        self.footprint_track: List[Tuple[int, int]] = []
        self.runnable_track: List[Tuple[int, int]] = []
        self.live_vid_track: List[Tuple[int, int]] = []
        self.thread_cores: Dict[int, int] = {}
        #: tid -> socket (0 for every thread on a flat machine), filled at
        #: finalize from the scheduler's core map + the machine topology.
        self.thread_sockets: Dict[int, int] = {}
        self.stall_cycles_total = 0
        self.quiesce_cycles_total = 0
        self.makespan = 0
        self.runnable_sample_every = runnable_sample_every
        self._seq = 0
        self._steps = 0
        self._open_spans: Dict[int, TxSpan] = {}
        self._attempts: Dict[int, int] = {}
        self._systems: List[Any] = []
        self._schedulers: List[Any] = []
        self._line_size = 64
        #: Machine topology of the attached system (None when flat).
        self.topology = None
        self._current_tid: Optional[int] = None
        self._current_thread: Optional[Any] = None
        self._in_op = False
        self._op_now = 0
        self._op_overflow = False
        self._tid_sample_idx: Dict[int, List[int]] = {}
        #: vid -> (arrival_ts, queue_wait) of the latest open-loop
        #: request attempt; flushed into the svc histograms at commit so
        #: aborted attempts never double-count (committed-attempt
        #: semantics).
        self._svc_pending: Dict[int, Tuple[int, int]] = {}
        self._svc_hists = None
        self._originals: List[Tuple[Any, str, Callable]] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def activate(self):
        """Context manager installing this session as the run observer."""
        return hooks.activate(self)

    def detach(self) -> None:
        """Restore every wrapped method (reverse order, stack-style)."""
        for obj, name, original in reversed(self._originals):
            setattr(obj, name, original)
        self._originals.clear()

    def finalize(self, result=None) -> None:
        """Freeze end-of-run state: thread map, makespan, stats snapshot."""
        if self._finalized:
            return
        self._finalized = True
        for scheduler in self._schedulers:
            socket_of = getattr(scheduler, "socket_of", None)
            for thread in scheduler.threads:
                self.thread_cores[thread.tid] = thread.core
                self.thread_sockets[thread.tid] = (
                    socket_of(thread.core) if socket_of is not None else 0)
                if thread.clock > self.makespan:
                    self.makespan = thread.clock
        if result is not None and result.cycles > self.makespan:
            self.makespan = result.cycles
        for system in self._systems:
            self._snapshot_stats(system)

    def all_spans(self) -> List[TxSpan]:
        """Closed spans plus any still-open ones (outcome ``open``)."""
        tail = []
        for vid in sorted(self._open_spans):
            span = self._open_spans[vid]
            if span.end_ts is None:
                span.end_ts = self.makespan
            tail.append(span)
        return self.spans + tail

    # ------------------------------------------------------------------
    # Attach points (called by runtime.paradigms.base when active)
    # ------------------------------------------------------------------

    def attach_system(self, system) -> None:
        self._systems.append(system)
        stats = getattr(system, "stats", None)
        self._line_size = getattr(stats, "line_size", 64)
        config = getattr(system, "config", None)
        if config is not None:
            self.topology = getattr(config, "topology", None)
        for name in ("load", "store", "kernel_load", "kernel_store"):
            if hasattr(system, name):
                self._wrap_access(system, name)
        self._wrap_begin(system)
        self._wrap_commit(system)
        self._wrap_abort(system)
        self._wrap_allocate(system)
        self._wrap_vid_reset(system)

    def attach_scheduler(self, scheduler) -> None:
        self._schedulers.append(scheduler)
        self._wrap_step(scheduler)
        self._wrap_stall(scheduler)
        self._wrap_quiesce(scheduler)
        self._wrap_execute(scheduler)

    def record_spin(self, category: str, vid: int, count: int) -> None:
        """Retag the current thread's last ``count`` op samples as a stall.

        Called by the spin helpers in ``runtime.paradigms.base`` when a
        polling loop (commit ordering, VID-reset quiesce) exits: the
        trailing samples of the spinning thread are exactly its spin ops,
        executed while this hook's caller was the running generator.
        """
        indices = self._tid_sample_idx.get(self._current_tid)
        if not indices:
            return
        cycles = 0
        for idx in indices[-count:]:
            row = self.samples[idx]
            if row[5] is None:
                row[5] = category
            if vid:
                row[4] = vid
            cycles += row[3]
        self.registry.counter("spin_cycles_total", category=category) \
            .inc(cycles)

    def _svc_histograms(self):
        """The open-loop latency instruments, created on first arrival.

        Lazy so observed runs of non-service workloads keep their metric
        snapshots free of empty svc series.
        """
        if self._svc_hists is None:
            self._svc_hists = (
                self.registry.histogram("svc_queue_wait_cycles",
                                        buckets=SVC_LATENCY_BUCKETS),
                self.registry.histogram("svc_commit_latency_cycles",
                                        buckets=SVC_LATENCY_BUCKETS))
        return self._svc_hists

    # ------------------------------------------------------------------
    # Clock resolution
    # ------------------------------------------------------------------

    def _now(self) -> int:
        if self._in_op:
            return self._op_now
        thread = self._current_thread
        return thread.clock if thread is not None else 0

    def _event(self, kind: str, ts: Optional[int] = None,
               **fields) -> Dict[str, Any]:
        self._seq += 1
        event: Dict[str, Any] = {
            "seq": self._seq, "ts": self._now() if ts is None else ts,
            "kind": kind}
        event.update(fields)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Span bookkeeping
    # ------------------------------------------------------------------

    def _open_span(self, vid: int, ts: int,
                   begin_ts: Optional[int] = None) -> TxSpan:
        stale = self._open_spans.pop(vid, None)
        if stale is not None:
            stale.end_ts = ts
            stale.outcome = "orphaned"
            self.spans.append(stale)
        attempt = self._attempts.get(vid, 0)
        self._attempts[vid] = attempt + 1
        span = TxSpan(vid=vid, attempt=attempt, allocate_ts=ts,
                      tid=self._current_tid, begin_ts=begin_ts)
        self._open_spans[vid] = span
        self.live_vid_track.append((ts, len(self._open_spans)))
        return span

    def _close_span(self, vid: int, ts: int, outcome: str,
                    cause: Optional[str] = None) -> None:
        span = self._open_spans.pop(vid, None)
        if span is None:
            # Commit of a VID whose begin predates our attach — synthesize
            # a degenerate span so counts still reconcile.
            attempt = self._attempts.get(vid, 0)
            self._attempts[vid] = attempt + 1
            span = TxSpan(vid=vid, attempt=attempt, allocate_ts=ts,
                          tid=self._current_tid, begin_ts=ts)
        span.end_ts = ts
        span.outcome = outcome
        span.cause = cause
        self.spans.append(span)
        self.live_vid_track.append((ts, len(self._open_spans)))

    def _on_misspeculation(self, err: MisspeculationError, addr=None,
                           op: str = "") -> None:
        """Record conflict + abort once per exception, however many wrapped
        frames it unwinds through."""
        if getattr(err, "_obs_seen", False):
            return
        err._obs_seen = True
        cause = classify(err).value
        ts = self._now()
        bad_addr = getattr(err, "addr", -1)
        if bad_addr in (None, -1):
            bad_addr = addr
        if bad_addr is not None:
            line = bad_addr - (bad_addr % self._line_size)
            self.line_conflict_counts[line] = \
                self.line_conflict_counts.get(line, 0) + 1
        self._event("conflict", ts=ts, vid=err.vid, addr=bad_addr,
                    cause=cause, op=op)
        self._event("abort", ts=ts, vid=err.vid, cause=cause)
        self.registry.counter("aborts_total", cause=cause).inc()
        for vid in list(self._open_spans):
            if vid == err.vid:
                self._close_span(vid, ts, "abort", cause)
            else:
                self._close_span(vid, ts, "squashed")

    # ------------------------------------------------------------------
    # System wraps
    # ------------------------------------------------------------------

    def _install(self, obj, name: str, wrapped: Callable) -> None:
        self._originals.append((obj, name, getattr(obj, name)))
        setattr(obj, name, wrapped)

    def _wrap_access(self, system, name: str) -> None:
        original = getattr(system, name)
        session = self
        kernel = name.startswith("kernel")
        is_store = name.endswith("store")
        hierarchy = getattr(system, "hierarchy", None)
        hstats = getattr(hierarchy, "stats", None)
        track_overflow = hasattr(hstats, "spec_overflow_spills")
        track_footprint = hasattr(hierarchy, "speculative_footprint_bytes")
        line_size = self._line_size
        kind = "store" if is_store else "load"
        space = "kernel" if kernel else "user"
        access_counter = self.registry.counter(
            "mem_accesses_total", kind=kind, space=space)
        footprint_peak = self.registry.gauge("spec_footprint_bytes_peak")

        @functools.wraps(original)
        def wrapped(tid, addr, *args, **kwargs):
            if track_overflow:
                overflow_before = (hstats.spec_overflow_spills
                                   + hstats.overflow_retrievals)
            try:
                result = original(tid, addr, *args, **kwargs)
            except MisspeculationError as err:
                session._on_misspeculation(err, addr=addr, op=name)
                raise
            line = addr - (addr % line_size)
            counts = session.line_access_counts
            counts[line] = counts.get(line, 0) + 1
            access_counter.inc()
            if not kernel:
                ctx = system.contexts.get(tid)
                vid = ctx.vid if ctx is not None else 0
                if vid:
                    span = session._open_spans.get(vid)
                    if span is not None:
                        if is_store:
                            span.stores += 1
                        else:
                            span.loads += 1
            if track_overflow and (hstats.spec_overflow_spills
                                   + hstats.overflow_retrievals) \
                    != overflow_before:
                session._op_overflow = True
            if track_footprint and getattr(result, "created_version", False):
                footprint = hierarchy.speculative_footprint_bytes()
                footprint_peak.set_max(footprint)
                session.footprint_track.append((session._now(), footprint))
            return result

        self._install(system, name, wrapped)

    def _wrap_begin(self, system) -> None:
        original = system.begin_mtx
        session = self

        @functools.wraps(original)
        def wrapped(tid, vid, *args, **kwargs):
            ctx = system.contexts.get(tid)
            previous = ctx.vid if ctx is not None else 0
            latency = original(tid, vid, *args, **kwargs)
            ts = session._now()
            if vid == 0:
                if previous:
                    span = session._open_spans.get(previous)
                    if span is not None and span.exec_end_ts is None:
                        span.exec_end_ts = ts
            else:
                span = session._open_spans.get(vid)
                if span is None:
                    span = session._open_span(vid, ts, begin_ts=ts)
                elif span.begin_ts is None:
                    span.begin_ts = ts
                    span.tid = tid
                session._event("begin", ts=ts, tid=tid, vid=vid)
            return latency

        self._install(system, "begin_mtx", wrapped)

    def _wrap_commit(self, system) -> None:
        original = system.commit_mtx
        session = self
        commits = self.registry.counter("tx_commits_total")
        latency_hist = self.registry.histogram("commit_latency_cycles")

        @functools.wraps(original)
        def wrapped(tid, vid, *args, **kwargs):
            try:
                latency = original(tid, vid, *args, **kwargs)
            except MisspeculationError as err:
                session._on_misspeculation(err, op="commit_mtx")
                raise
            ts = session._now()
            session._event("commit", ts=ts, tid=tid, vid=vid)
            commits.inc()
            if isinstance(latency, int):
                latency_hist.observe(latency)
            pending = session._svc_pending.pop(vid, None)
            if pending is not None:
                arrival_ts, queue_wait = pending
                queue_hist, sojourn_hist = session._svc_histograms()
                queue_hist.observe(queue_wait)
                sojourn_hist.observe(max(0, ts - arrival_ts))
            session._close_span(vid, ts, "commit")
            return latency

        self._install(system, "commit_mtx", wrapped)

    def _wrap_abort(self, system) -> None:
        original = system.abort_mtx
        session = self

        @functools.wraps(original)
        def wrapped(tid, vid, *args, **kwargs):
            try:
                return original(tid, vid, *args, **kwargs)
            except MisspeculationError as err:
                session._on_misspeculation(err, op="abort_mtx")
                raise

        self._install(system, "abort_mtx", wrapped)

    def _wrap_allocate(self, system) -> None:
        original = system.allocate_vid
        session = self

        @functools.wraps(original)
        def wrapped(*args, **kwargs):
            vid = original(*args, **kwargs)
            ts = session._now()
            session._open_span(vid, ts)
            session._event("allocate", ts=ts, vid=vid,
                           tid=session._current_tid)
            return vid

        self._install(system, "allocate_vid", wrapped)

    def _wrap_vid_reset(self, system) -> None:
        original = system.vid_reset
        session = self
        resets = self.registry.counter("vid_resets_total")

        @functools.wraps(original)
        def wrapped(*args, **kwargs):
            result = original(*args, **kwargs)
            session._event("vid_reset")
            resets.inc()
            return result

        self._install(system, "vid_reset", wrapped)

    # ------------------------------------------------------------------
    # Scheduler wraps
    # ------------------------------------------------------------------

    def _wrap_step(self, scheduler) -> None:
        original = scheduler._step
        session = self
        every = self.runnable_sample_every

        @functools.wraps(original)
        def wrapped(thread):
            session._current_tid = thread.tid
            session._current_thread = thread
            session._steps += 1
            if session._steps % every == 0:
                runnable = sum(1 for t in scheduler.threads
                               if not t.done and t.blocked_on is None
                               and t.blocked_produce is None)
                session.runnable_track.append((thread.clock, runnable))
            return original(thread)

        self._install(scheduler, "_step", wrapped)

    def _wrap_stall(self, scheduler) -> None:
        original = scheduler.stall_all
        session = self
        stall_counter = self.registry.counter("backoff_stall_cycles_total")

        @functools.wraps(original)
        def wrapped(cycles):
            if cycles > 0:
                session.stall_cycles_total += cycles
                session._event("stall", ts=scheduler.now(), cycles=cycles)
                stall_counter.inc(cycles)
            return original(cycles)

        self._install(scheduler, "stall_all", wrapped)

    def _wrap_quiesce(self, scheduler) -> None:
        original = scheduler.quiesce_all
        session = self
        quiesce_counter = self.registry.counter(
            "vid_reset_quiesce_cycles_total")

        @functools.wraps(original)
        def wrapped(cycles):
            if cycles > 0:
                session.quiesce_cycles_total += cycles
                session._event("quiesce", ts=scheduler.now(), cycles=cycles)
                quiesce_counter.inc(cycles)
            return original(cycles)

        self._install(scheduler, "quiesce_all", wrapped)

    def _wrap_execute(self, scheduler) -> None:
        executor = scheduler.executor
        original = executor.execute
        session = self
        system = scheduler.system

        @functools.wraps(original)
        def wrapped(tid, op, now=0):
            session._in_op = True
            session._op_now = now
            session._op_overflow = False
            try:
                value, latency = original(tid, op, now=now)
            finally:
                session._in_op = False
            ctx = system.contexts.get(tid)
            vid = ctx.vid if ctx is not None else 0
            session._seq += 1
            pretag = "overflow" if session._op_overflow else None
            index = len(session.samples)
            session.samples.append(
                [session._seq, tid, now, latency, vid, pretag])
            session._tid_sample_idx.setdefault(tid, []).append(index)
            if type(op) is Arrive:
                # The executor hands back the accumulated queue wait (0
                # when the core idled until the arrival).  Speculative
                # requests settle at commit; VID-0 (serial-fallback)
                # requests have no commit, so record them here.
                queue_wait = value if isinstance(value, int) else 0
                if vid:
                    session._svc_pending[vid] = (op.ts, queue_wait)
                else:
                    queue_hist, _ = session._svc_histograms()
                    queue_hist.observe(queue_wait)
            return value, latency

        self._install(executor, "execute", wrapped)

    # ------------------------------------------------------------------
    # End-of-run metric snapshot + reconciliation
    # ------------------------------------------------------------------

    def _snapshot_stats(self, system) -> None:
        registry = self.registry
        stats = getattr(system, "stats", None)
        if stats is not None:
            registry.counter("spec_accesses_total", kind="load") \
                .inc(stats.spec_loads)
            registry.counter("spec_accesses_total", kind="store") \
                .inc(stats.spec_stores)
            registry.counter("slas_sent_total").inc(stats.slas_sent)
            registry.counter("wrong_path_loads_total") \
                .inc(stats.wrong_path_loads)
            contention = stats.contention
            registry.counter("txctl_retries_total").inc(contention.retries)
            registry.counter("txctl_backoff_cycles_total") \
                .inc(contention.backoff_cycles)
            registry.counter("txctl_serialized_recoveries_total") \
                .inc(contention.serialized_recoveries)
            registry.counter("txctl_fallback_entries_total") \
                .inc(contention.fallback_entries)
            registry.counter("txctl_fallback_iterations_total") \
                .inc(contention.fallback_iterations)
            for level, count in sorted(contention.escalations.items()):
                registry.counter("txctl_escalations_total",
                                 level=level).inc(count)
        hierarchy = getattr(system, "hierarchy", None)
        hstats = getattr(hierarchy, "stats", None)
        if hasattr(hstats, "bus_snoops"):
            for name in ("loads", "stores", "bus_snoops", "peer_transfers",
                         "memory_fetches", "ss_invalidations",
                         "bus_wait_cycles", "nonspec_overflows",
                         "overflow_retrievals", "spec_overflow_spills"):
                registry.counter(f"coherence_{name}_total") \
                    .inc(getattr(hstats, name))
            for cache in (list(hierarchy.l1s)
                          + list(getattr(hierarchy, "llc_slices",
                                         (hierarchy.l2,)))):
                registry.counter("cache_hits_total",
                                 cache=cache.name).inc(cache.stats.hits)
                registry.counter("cache_misses_total",
                                 cache=cache.name).inc(cache.stats.misses)
                registry.counter("cache_version_copies_total",
                                 cache=cache.name) \
                    .inc(cache.stats.version_copies)

    def reconcile(self, stats) -> Dict[str, Any]:
        """Check observed lifecycle events against SystemStats totals.

        The acceptance contract: per-VID commit spans and abort-cause
        counters must match the system's own accounting *exactly* — the
        session wraps sit outside the backend, so every commit and every
        classified abort passes through them exactly once.
        """
        commits_observed = sum(1 for s in self.all_spans()
                               if s.outcome == "commit")
        aborts_observed = sum(1 for e in self.events if e["kind"] == "abort")
        by_cause_observed: Dict[str, int] = {}
        for event in self.events:
            if event["kind"] == "abort":
                cause = event["cause"]
                by_cause_observed[cause] = by_cause_observed.get(cause, 0) + 1
        by_cause_stats = {k: v for k, v in stats.contention.by_cause.items()
                          if v}
        checks = {
            "commits": {"observed": commits_observed,
                        "stats": stats.committed},
            "aborts": {"observed": aborts_observed, "stats": stats.aborted},
            "aborts_by_cause": {"observed": by_cause_observed,
                                "stats": by_cause_stats},
        }
        ok = all(c["observed"] == c["stats"] for c in checks.values())
        return {"ok": ok, "checks": checks}
