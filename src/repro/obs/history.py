"""Cross-run obs-digest history: a content-addressed JSONL store.

Every artifact the repo emits is a *snapshot* — ``BENCH_hotpath.json``
and ``REPORT_scaling.json`` are overwritten in place, and the obs digest
riding in a :class:`~repro.experiments.engine.RunRecord` dies with the
process.  This module gives digests a durable timeline so
``python -m repro obs diff`` can explain *why* a number moved between
two runs, two commits, or two machine shapes.

Layout (``.obs-history/`` by default, git-ignored)::

    digests.jsonl   one line per *unique* digest payload, keyed by the
                    sha1 of its canonical JSON — content-addressed, so a
                    bench rerun that reproduces bit-identical digests
                    appends nothing here;
    runs.jsonl      one line per observed run (schema
                    ``hmtx-obs-history/1``): the run's identity
                    (workload/system/scale/paradigm/policy/options +
                    machine digest), the git-describe label of the
                    working tree, the makespan, and the ``digest_id``
                    pointing into ``digests.jsonl``.

Runs are grouped into **generations**: one append call (one CLI
invocation) is one generation, so history refs work like git —
``HEAD`` is the latest generation, ``HEAD~1`` the one before,
``gen:7`` an absolute index, ``git:<label>`` the newest generation
recorded under that git-describe label.

Writers: ``python -m repro bench --history``, ``python -m repro
scaling --history``, ``python -m repro obs <workload> --history`` and
anything driving :class:`~repro.experiments.engine.SweepEngine` with
``observe=True`` (the engine collects executed ``(request, record)``
pairs in ``observed_pairs`` for exactly this hand-off).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
import subprocess
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

HISTORY_SCHEMA = "hmtx-obs-history/1"
BUNDLE_SCHEMA = "hmtx-obs-digests/1"
DEFAULT_ROOT = ".obs-history"

_REF = re.compile(r"^(?:HEAD(?:~(?P<back>\d+))?|gen:(?P<gen>\d+)"
                  r"|git:(?P<git>.+))$")


def canonical_json(data: Any) -> str:
    """The one serialization content addresses are computed over."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def digest_id(digest: Dict[str, Any]) -> str:
    """Content address of one obs digest (sha1 of canonical JSON)."""
    return hashlib.sha1(canonical_json(digest).encode()).hexdigest()


def git_describe(cwd: Optional[str] = None) -> str:
    """``git describe --always --dirty`` of the working tree.

    A label, not an input to any simulation: history records carry it so
    ``obs diff git:A git:B`` can compare commits, but every digest is a
    pure function of (workload, machine, code).  Outside a git checkout
    (or without git) the label degrades to ``"unknown"``.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=cwd, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    label = out.stdout.strip()
    return label if out.returncode == 0 and label else "unknown"


def run_entry(request, record, generation: int, seq: int,
              source: str, git: str) -> Dict[str, Any]:
    """One ``runs.jsonl`` line for an observed (request, record) pair."""
    from ..experiments.engine import config_digest  # lint-ok: RL005 (engine imports obs lazily for observed runs; importing it back at module load would cycle)
    return {
        "schema": HISTORY_SCHEMA,
        "generation": generation,
        "seq": seq,
        "source": source,
        "git": git,
        "workload": request.workload,
        "system": request.system,
        "scale": request.scale,
        "paradigm": request.paradigm,
        "policy": request.policy,
        "options": [list(pair) for pair in request.options],
        "machine": config_digest(request.machine),
        "cycles": record.cycles,
        "makespan": record.obs_digest["makespan"],
        "digest_id": digest_id(record.obs_digest),
    }


class HistoryStore:
    """Append-only digest history rooted at one directory."""

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = pathlib.Path(root)
        self.runs_path = self.root / "runs.jsonl"
        self.digests_path = self.root / "digests.jsonl"

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _read_jsonl(self, path: pathlib.Path) -> List[Dict[str, Any]]:
        if not path.exists():
            return []
        entries = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line:
                entries.append(json.loads(line))
        return entries

    def runs(self) -> List[Dict[str, Any]]:
        return self._read_jsonl(self.runs_path)

    def digests(self) -> Dict[str, Dict[str, Any]]:
        """``digest_id -> digest`` for every stored payload."""
        return {entry["id"]: entry["digest"]
                for entry in self._read_jsonl(self.digests_path)}

    def generations(self) -> List[Dict[str, Any]]:
        """Generation summaries, oldest first."""
        by_gen: Dict[int, Dict[str, Any]] = {}
        for run in self.runs():
            summary = by_gen.setdefault(run["generation"], {
                "generation": run["generation"],
                "source": run["source"],
                "git": run["git"],
                "runs": 0,
            })
            summary["runs"] += 1
        return [by_gen[gen] for gen in sorted(by_gen)]

    def resolve(self, ref: str) -> List[Dict[str, Any]]:
        """Runs of the generation named by ``ref`` (with digests inline).

        Refs: ``HEAD``, ``HEAD~N``, ``gen:N``, ``git:<label>``.  Raises
        ``KeyError`` when the ref does not name a stored generation.
        """
        match = _REF.match(ref)
        if match is None:
            raise KeyError(f"unrecognized history ref {ref!r} (expected "
                           f"HEAD, HEAD~N, gen:N or git:LABEL)")
        runs = self.runs()
        gens = sorted({run["generation"] for run in runs})
        if not gens:
            raise KeyError(f"history at {self.root} is empty; run e.g. "
                           f"'python -m repro bench --quick --history'")
        if match.group("gen") is not None:
            generation = int(match.group("gen"))
            if generation not in gens:
                raise KeyError(f"no generation {generation} in {self.root} "
                               f"(have {gens[0]}..{gens[-1]})")
        elif match.group("git") is not None:
            label = match.group("git")
            matching = [run["generation"] for run in runs
                        if run["git"] == label]
            if not matching:
                raise KeyError(f"no generation recorded under git label "
                               f"{label!r} in {self.root}")
            generation = max(matching)
        else:
            back = int(match.group("back") or 0)
            if back >= len(gens):
                raise KeyError(f"HEAD~{back} is older than history "
                               f"({len(gens)} generation(s) stored)")
            generation = gens[-1 - back]
        payloads = self.digests()
        selected = [dict(run, digest=payloads[run["digest_id"]])
                    for run in runs if run["generation"] == generation]
        selected.sort(key=lambda run: run["seq"])
        return selected

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append_runs(self, pairs: Sequence[Tuple[Any, Any]],
                    source: str, git: Optional[str] = None) -> Dict[str, Any]:
        """Record one generation of observed ``(request, record)`` pairs.

        Pairs without an obs digest are skipped; digest payloads are
        stored content-addressed (an identical rerun adds run lines but
        zero new payload bytes).  Returns a summary dict; appends
        nothing (and allocates no generation) when no pair is observed.
        """
        observed = [(request, record) for request, record in pairs
                    if record.obs_digest is not None]
        if not observed:
            return {"generation": None, "runs": 0, "new_digests": 0}
        self.root.mkdir(parents=True, exist_ok=True)
        known = set(self.digests())
        generation = max((run["generation"] for run in self.runs()),
                         default=0) + 1
        git = git if git is not None else git_describe()
        new_payloads: List[str] = []
        run_lines: List[str] = []
        for seq, (request, record) in enumerate(observed):
            entry = run_entry(request, record, generation, seq, source, git)
            if entry["digest_id"] not in known:
                known.add(entry["digest_id"])
                new_payloads.append(canonical_json(
                    {"id": entry["digest_id"],
                     "digest": record.obs_digest}))
            run_lines.append(canonical_json(entry))
        if new_payloads:
            with self.digests_path.open("a", encoding="utf-8") as fh:
                fh.write("\n".join(new_payloads) + "\n")
        with self.runs_path.open("a", encoding="utf-8") as fh:
            fh.write("\n".join(run_lines) + "\n")
        return {"generation": generation, "runs": len(run_lines),
                "new_digests": len(new_payloads)}

    # ------------------------------------------------------------------
    # Export (digest bundles — the committed-baseline interchange format)
    # ------------------------------------------------------------------

    def export_bundle(self, ref: str = "HEAD") -> Dict[str, Any]:
        """A self-contained ``hmtx-obs-digests/1`` bundle of one ref."""
        return bundle([(run, run["digest"]) for run in self.resolve(ref)])


def bundle(runs_with_digests: Iterable[Tuple[Dict[str, Any],
                                             Dict[str, Any]]]) -> Dict[str, Any]:
    """Build a digest bundle from ``(run-entry, digest)`` pairs."""
    entries = []
    for run, payload in runs_with_digests:
        entries.append({
            "workload": run["workload"],
            "system": run["system"],
            "scale": run["scale"],
            "machine": run.get("machine", "default"),
            "git": run.get("git", "unknown"),
            "cycles": run.get("cycles"),
            "digest": payload,
        })
    return {"schema": BUNDLE_SCHEMA, "entries": entries}


def format_history(store: HistoryStore, limit: int = 10) -> str:
    """Terminal listing: newest generations first."""
    gens = store.generations()
    if not gens:
        return (f"history at {store.root}: empty "
                f"(append with --history on bench/scaling/obs runs)")
    lines = [f"history at {store.root}: {len(gens)} generation(s)"]
    head = gens[-1]["generation"]
    for summary in reversed(gens[-limit:]):
        back = head - summary["generation"]
        ref = "HEAD" if back == 0 else f"HEAD~{back}"
        lines.append(f"  {ref:<8} gen:{summary['generation']:<4} "
                     f"{summary['source']:<8} {summary['git']:<24} "
                     f"{summary['runs']} run(s)")
    return "\n".join(lines)
