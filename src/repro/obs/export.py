"""Exporters: Chrome trace-event JSON (Perfetto-loadable) + terminal Gantt.

The JSON follows the Trace Event Format, with one simulated cycle mapped
to one microsecond (``ts``/``dur`` are µs in the format; Perfetto and
``about://tracing`` both render the cycle counts directly):

* ``M`` metadata names the process and one track per simulated thread
  (``core C / tid T``);
* ``X`` complete events are the per-thread cycle-attribution slices
  (name = category) from :mod:`repro.obs.profile`;
* ``b``/``e`` async pairs are transaction attempts — one per
  :class:`~repro.obs.timeline.TxSpan`, named ``VID n``, carrying
  allocate/begin/exec-end stamps, the outcome and abort cause in
  ``args``;
* ``i`` instants mark conflicts, aborts and VID resets;
* ``C`` counters track speculative footprint bytes, runnable threads and
  live VIDs.

:func:`validate_trace` is the exporter's own schema check — structural
validity plus the span-nesting invariant (every stamp ordered within its
VID's allocate→end bounds, every conflict instant inside an open span of
its VID).  The CLI validates before writing; CI re-validates the
artifact; the golden test pins the exact bytes for contended-list.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .timeline import Timeline

#: Category -> glyph for the terminal Gantt.
GANTT_GLYPHS = {
    "useful": "█",
    "commit_stall": "c",
    "vid_reset": "v",
    "abort_replay": "x",
    "queue_wait": ".",
    "overflow": "o",
    "idle": " ",
}

_PID = 1


def to_chrome_trace(timeline: Timeline,
                    label: str = "hmtx-sim") -> Dict[str, Any]:
    """Render a :class:`Timeline` as a Chrome trace-event dict."""
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": _PID, "name": "process_name",
        "args": {"name": label},
    }]
    for tid in sorted(timeline.thread_cores):
        core = timeline.thread_cores[tid]
        events.append({"ph": "M", "pid": _PID, "tid": tid,
                       "name": "thread_name",
                       "args": {"name": f"core {core} / tid {tid}"}})
        events.append({"ph": "M", "pid": _PID, "tid": tid,
                       "name": "thread_sort_index",
                       "args": {"sort_index": tid}})
    for piece in timeline.slices:
        events.append({
            "ph": "X", "pid": _PID, "tid": piece.tid, "cat": "cycles",
            "name": piece.category, "ts": piece.start,
            "dur": piece.duration,
            "args": {"vid": piece.vid},
        })
    for index, span in enumerate(timeline.spans):
        args = span.to_dict()
        tid = span.tid if span.tid is not None else 0
        events.append({
            "ph": "b", "pid": _PID, "tid": tid, "cat": "tx",
            "id": index, "name": f"VID {span.vid}",
            "ts": span.allocate_ts, "args": args,
        })
        events.append({
            "ph": "e", "pid": _PID, "tid": tid, "cat": "tx",
            "id": index, "name": f"VID {span.vid}",
            "ts": span.end_ts, "args": {},
        })
    for kind, instants in sorted(timeline.instants.items()):
        for instant in instants:
            args = {key: value for key, value in instant.items()
                    if key not in ("seq", "ts", "kind") and value is not None}
            events.append({
                "ph": "i", "pid": _PID,
                "tid": instant.get("tid") or 0, "s": "g",
                "name": kind, "ts": instant["ts"], "args": args,
            })
    for name, track in sorted(timeline.counters.items()):
        for ts, value in track:
            events.append({
                "ph": "C", "pid": _PID, "name": name, "ts": ts,
                "args": {name: value},
            })
    return {
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated cycles (1 cycle = 1us)",
                      "makespan_cycles": timeline.makespan},
        "traceEvents": events,
    }


def write_chrome_trace(timeline: Timeline, path: str,
                       label: str = "hmtx-sim") -> Dict[str, Any]:
    data = to_chrome_trace(timeline, label=label)
    validate_trace(data)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return data


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------

def validate_trace(data: Any) -> Dict[str, int]:
    """Validate structure + span nesting; raises ``ValueError``.

    Returns per-phase event counts on success (handy for smoke output).
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("not a trace: missing traceEvents")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    counts: Dict[str, int] = {}
    opens: Dict[Any, Dict[str, Any]] = {}
    span_windows: Dict[int, List[tuple]] = {}
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"event without ph: {event!r}")
        ph = event["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        if ph in ("X", "b", "e", "i", "C") and "ts" not in event:
            raise ValueError(f"{ph} event without ts: {event!r}")
        if ph == "X":
            if event.get("dur", -1) < 0 or event["ts"] < 0:
                raise ValueError(f"X event with bad ts/dur: {event!r}")
        elif ph == "b":
            key = (event.get("cat"), event["id"])
            if key in opens:
                raise ValueError(f"async span {key} opened twice")
            opens[key] = event
            _check_span_args(event)
        elif ph == "e":
            key = (event.get("cat"), event["id"])
            begin = opens.pop(key, None)
            if begin is None:
                raise ValueError(f"async end without begin: {key}")
            if event["ts"] < begin["ts"]:
                raise ValueError(
                    f"async span {key} ends at {event['ts']} before its "
                    f"begin at {begin['ts']}")
            vid = begin.get("args", {}).get("vid")
            if vid is not None:
                span_windows.setdefault(vid, []).append(
                    (begin["ts"], event["ts"]))
    if opens:
        raise ValueError(f"unterminated async spans: {sorted(opens)}")
    for event in events:
        if event["ph"] != "i" or event["name"] != "conflict":
            continue
        vid = event.get("args", {}).get("vid")
        if not vid:
            continue
        ts = event["ts"]
        windows = span_windows.get(vid, [])
        if not any(start <= ts <= end for start, end in windows):
            raise ValueError(
                f"conflict instant at ts={ts} for VID {vid} falls outside "
                f"every span of that VID ({windows})")
    return counts


def _check_span_args(event: Dict[str, Any]) -> None:
    """The nesting invariant: allocate ≤ begin ≤ exec_end ≤ end, and the
    async pair's open stamp equals the span's allocate stamp."""
    args = event.get("args", {})
    stamps = [args.get("allocate_ts"), args.get("begin_ts"),
              args.get("exec_end_ts"), args.get("end_ts")]
    if any(s is None for s in stamps):
        return
    allocate, begin, exec_end, end = stamps
    if not allocate <= begin <= exec_end <= end:
        raise ValueError(
            f"span VID {args.get('vid')} attempt {args.get('attempt')} "
            f"stamps not nested: allocate={allocate} begin={begin} "
            f"exec_end={exec_end} end={end}")
    if event["ts"] != allocate:
        raise ValueError(
            f"async open ts {event['ts']} != allocate_ts {allocate} "
            f"for VID {args.get('vid')}")


# ----------------------------------------------------------------------
# Terminal Gantt
# ----------------------------------------------------------------------

def render_gantt(timeline: Timeline, width: int = 72) -> str:
    """Quick-look per-thread lanes, one glyph per time bucket.

    Each bucket shows the category that occupied the most cycles in it;
    the legend is printed underneath.
    """
    makespan = max(1, timeline.makespan)
    width = max(8, width)
    scale = makespan / width
    lanes: Dict[int, List[Dict[str, int]]] = {
        tid: [dict() for _ in range(width)]
        for tid in sorted(timeline.thread_cores)}
    for piece in timeline.slices:
        lane = lanes.setdefault(piece.tid,
                                [dict() for _ in range(width)])
        first = min(width - 1, int(piece.start / scale))
        last = min(width - 1, int((piece.start + piece.duration - 1) / scale))
        for bucket in range(first, last + 1):
            bucket_start = bucket * scale
            bucket_end = bucket_start + scale
            overlap = min(piece.start + piece.duration, bucket_end) \
                - max(piece.start, bucket_start)
            if overlap > 0:
                cell = lane[bucket]
                cell[piece.category] = cell.get(piece.category, 0) + overlap
    lines = [f"gantt: {makespan:,} cycles, "
             f"{scale:.0f} cycles/char"]
    for tid in sorted(lanes):
        row = []
        for cell in lanes[tid]:
            if not cell:
                row.append(GANTT_GLYPHS["idle"])
                continue
            category = max(sorted(cell), key=lambda c: cell[c])
            row.append(GANTT_GLYPHS.get(category, "?"))
        core = timeline.thread_cores.get(tid, "?")
        lines.append(f"  t{tid}/c{core} |{''.join(row)}|")
    legend = "  ".join(f"{glyph or ' '}={name}"
                       for name, glyph in GANTT_GLYPHS.items())
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)
