"""Simulated-cycle profiler: attribute every cycle to a category.

Input is a finalized :class:`~repro.obs.session.ObsSession`; output is an
:class:`Attribution` that accounts for **all** ``threads × makespan``
simulated cycles, split across:

``useful``
    Ops of transactions that went on to commit, plus all
    non-speculative (VID 0) execution.
``commit_stall``
    In-order commit spinning (``wait_commit_turn`` polls).
``vid_reset``
    Section 4.6 VID-exhaustion quiesce (allocation polls, epoch waits,
    the reset broadcast itself).
``abort_replay``
    Ops of transactions that were flushed (their cycles were re-executed
    later), plus contention-manager backoff stalls.
``queue_wait``
    Gaps in a thread's op stream: blocked Produce/Consume, queue
    latency, core contention.
``overflow``
    Accesses that triggered overflow-table spill/retrieval traffic
    (section 5.4 pressure).
``idle``
    Trailing cycles after a thread's last op until the run's makespan.

Attribution is retrospective: op samples are held against their VID until
the transaction's outcome event (commit → ``useful``; any flush →
``abort_replay``), exactly the paper's notion that a squashed cycle was
wasted work however useful it looked at the time.  Samples pre-tagged by
the session (spin retags, overflow flags) keep their tags.

The per-thread identity ``sum(categories) == makespan`` is exact and
asserted by the tests — nothing is silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Categories a *sample* can carry (``idle``/``queue_wait`` are derived).
_FLUSH_SURVIVING_TAGS = ("commit_stall", "vid_reset", "overflow")


@dataclass
class Attribution:
    """Every simulated cycle of one run, attributed."""

    makespan: int
    #: Final category per op sample, parallel to ``session.samples``.
    categories: List[str]
    #: tid -> category -> cycles (includes derived queue_wait/idle).
    per_thread: Dict[int, Dict[str, int]]
    #: Sum of per-thread cycles by category.
    totals: Dict[str, int] = field(default_factory=dict)
    #: socket -> category -> cycles; ``{0: totals}`` on a flat machine.
    #: This is where the topology's reset-storm story shows up: a remote
    #: socket's threads burning ``vid_reset``/``commit_stall`` cycles
    #: while the home socket commits.
    per_socket: Dict[int, Dict[str, int]] = field(default_factory=dict)
    identity_ok: bool = True

    @property
    def total_thread_cycles(self) -> int:
        return sum(sum(cats.values()) for cats in self.per_thread.values())


def attribute(session) -> Attribution:
    """Run the retrospective attribution over a finalized session."""
    samples = session.samples
    events = session.events
    final: List[Optional[str]] = [None] * len(samples)
    open_by_vid: Dict[int, List[int]] = {}

    def finish(index: int, default: str) -> None:
        pretag = samples[index][5]
        final[index] = pretag if pretag is not None else default

    def finish_flushed(index: int) -> None:
        pretag = samples[index][5]
        final[index] = pretag if pretag in _FLUSH_SURVIVING_TAGS \
            else "abort_replay"

    # Merge the two seq-ordered streams (shared monotone counter).
    si = ei = 0
    while si < len(samples) or ei < len(events):
        if ei >= len(events) or (si < len(samples)
                                 and samples[si][0] < events[ei]["seq"]):
            vid = samples[si][4]
            if vid > 0:
                open_by_vid.setdefault(vid, []).append(si)
            else:
                finish(si, "useful")
            si += 1
            continue
        event = events[ei]
        ei += 1
        if event["kind"] == "commit":
            for index in open_by_vid.pop(event["vid"], []):
                finish(index, "useful")
        elif event["kind"] == "abort":
            for indices in open_by_vid.values():
                for index in indices:
                    finish_flushed(index)
            open_by_vid.clear()
    for indices in open_by_vid.values():
        for index in indices:
            finish(index, "useful")

    makespan = session.makespan
    per_thread: Dict[int, Dict[str, int]] = {}
    identity_ok = True
    stall_total = session.stall_cycles_total
    quiesce_total = getattr(session, "quiesce_cycles_total", 0)
    for tid, indices in sorted(session._tid_sample_idx.items()):
        cats: Dict[str, int] = {}
        cursor = 0
        gap_total = 0
        for index in indices:
            _, _, start, latency, _, _ = samples[index]
            if start > cursor:
                gap_total += start - cursor
            cursor = max(cursor, start + latency)
            category = final[index] or "useful"
            cats[category] = cats.get(category, 0) + latency
        # Machine-wide stalls show up as gaps in every thread's op stream.
        # Reattribute them in causal order: reset-scrub quiesce barriers
        # first (vid_reset), then contention-manager backoff
        # (abort_replay); whatever remains is genuine queue/core wait.
        quiesce = min(quiesce_total, gap_total)
        if quiesce:
            cats["vid_reset"] = cats.get("vid_reset", 0) + quiesce
        backoff = min(stall_total, gap_total - quiesce)
        if backoff:
            cats["abort_replay"] = cats.get("abort_replay", 0) + backoff
        queue_wait = gap_total - quiesce - backoff
        if queue_wait:
            cats["queue_wait"] = cats.get("queue_wait", 0) + queue_wait
        idle = makespan - cursor
        if idle > 0:
            cats["idle"] = cats.get("idle", 0) + idle
        per_thread[tid] = cats
        if sum(cats.values()) != makespan:
            identity_ok = False
    for tid in session.thread_cores:
        if tid not in per_thread:
            per_thread[tid] = {"idle": makespan} if makespan else {}
    totals: Dict[str, int] = {}
    for cats in per_thread.values():
        for category, cycles in cats.items():
            totals[category] = totals.get(category, 0) + cycles
    thread_sockets = getattr(session, "thread_sockets", {})
    per_socket: Dict[int, Dict[str, int]] = {}
    for tid, cats in per_thread.items():
        socket = thread_sockets.get(tid, 0)
        bucket = per_socket.setdefault(socket, {})
        for category, cycles in cats.items():
            bucket[category] = bucket.get(category, 0) + cycles
    return Attribution(makespan=makespan,
                       categories=[c or "useful" for c in final],
                       per_thread=per_thread,
                       totals=dict(sorted(totals.items())),
                       per_socket={s: dict(sorted(cats.items()))
                                   for s, cats in sorted(per_socket.items())},
                       identity_ok=identity_ok)


# ----------------------------------------------------------------------
# Hot lines + digest
# ----------------------------------------------------------------------

def hot_lines(counts: Dict[int, int], top: int = 5) -> List[Tuple[str, int]]:
    """Top-N ``(hex line, count)``, count-descending then address."""
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(f"0x{line:x}", count) for line, count in ranked[:top]]


def hot_lines_by_socket(session, counts: Dict[int, int],
                        top: int = 5) -> Dict[str, List[Tuple[str, int]]]:
    """Top-N hot lines grouped by the line's *home socket*.

    On a flat machine everything homes at socket 0, so this degenerates
    to ``{"0": hot_lines(counts)}``; on a sliced-LLC machine it shows
    which socket's slice (and directory banks) each hot line pressures.
    """
    topology = getattr(session, "topology", None)
    line_size = getattr(session, "_line_size", 64)
    grouped: Dict[int, Dict[int, int]] = {}
    for line, count in counts.items():
        home = (topology.home_socket(line, line_size)
                if topology is not None else 0)
        grouped.setdefault(home, {})[line] = count
    return {str(socket): hot_lines(socket_counts, top)
            for socket, socket_counts in sorted(grouped.items())}


def digest(session, attribution: Attribution,
           top: int = 5) -> Dict[str, Any]:
    """Picklable per-run attribution summary (rides in RunRecords)."""
    spans = session.all_spans()
    aborts_by_cause: Dict[str, int] = {}
    for event in session.events:
        if event["kind"] == "abort":
            cause = event["cause"]
            aborts_by_cause[cause] = aborts_by_cause.get(cause, 0) + 1
    return {
        "schema": "hmtx-obs-digest/1",
        "makespan": attribution.makespan,
        "categories": attribution.totals,
        # Keyed by str(socket) so the digest survives a JSON round-trip
        # unchanged (byte-identity across --jobs relies on it).
        "per_socket": {str(s): cats
                       for s, cats in attribution.per_socket.items()},
        "total_thread_cycles": attribution.total_thread_cycles,
        "identity_ok": attribution.identity_ok,
        "commits": sum(1 for s in spans if s.outcome == "commit"),
        "aborts": sum(1 for e in session.events if e["kind"] == "abort"),
        "aborts_by_cause": dict(sorted(aborts_by_cause.items())),
        "vid_resets": sum(1 for e in session.events
                          if e["kind"] == "vid_reset"),
        "spans": len(spans),
        "hot_conflict_lines": hot_lines(session.line_conflict_counts, top),
        "hot_access_lines": hot_lines(session.line_access_counts, top),
        "hot_conflict_lines_by_socket":
            hot_lines_by_socket(session, session.line_conflict_counts, top),
        # Latency distributions (commit latency, svc queue wait/sojourn)
        # as plain cumulative-bucket snapshots, so tail-quantile
        # consumers can rebuild Histograms on the far side of a pool
        # boundary (Histogram.from_cumulative).
        "histograms": session.registry.collect()["histograms"],
    }


DIGEST_SCHEMA = "hmtx-obs-digest/1"


def load_digest(data: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a (possibly JSON-round-tripped) obs digest for readers.

    :func:`digest` keys ``per_socket`` (and the per-socket hot-line
    table) by ``str(socket)`` so the artifact survives a JSON round-trip
    byte-identically.  Every in-tree *reader* wants integer sockets and
    ``(line, count)`` tuples back; this is the one place that converts,
    so readers stop carrying ad-hoc casts.  Accepts both freshly-built
    digests and ones loaded from JSON; raises ``ValueError`` on a
    schema mismatch so stale artifacts fail loudly.
    """
    schema = data.get("schema")
    if schema != DIGEST_SCHEMA:
        raise ValueError(f"not an obs digest: schema {schema!r} "
                         f"(expected {DIGEST_SCHEMA!r})")
    out = dict(data)
    out["per_socket"] = {int(socket): dict(cats)
                         for socket, cats
                         in data.get("per_socket", {}).items()}
    out["hot_conflict_lines_by_socket"] = {
        int(socket): [(line, count) for line, count in ranked]
        for socket, ranked
        in data.get("hot_conflict_lines_by_socket", {}).items()}
    for key in ("hot_conflict_lines", "hot_access_lines"):
        out[key] = [(line, count) for line, count in data.get(key, [])]
    return out


def format_breakdown(attribution: Attribution,
                     label: str = "") -> str:
    """Terminal table: cycles and share per category, then per thread."""
    total = max(1, attribution.total_thread_cycles)
    lines = [f"cycle attribution{' — ' + label if label else ''} "
             f"(makespan {attribution.makespan:,} cycles, "
             f"{len(attribution.per_thread)} threads)"]
    width = max((len(c) for c in attribution.totals), default=6)
    for category, cycles in sorted(attribution.totals.items(),
                                   key=lambda kv: -kv[1]):
        share = 100.0 * cycles / total
        lines.append(f"  {category.ljust(width)}  {cycles:>12,}  "
                     f"{share:5.1f}%")
    if len(attribution.per_socket) > 1:
        for socket, cats in sorted(attribution.per_socket.items()):
            socket_total = sum(cats.values())
            interesting = {c: cats.get(c, 0)
                           for c in ("vid_reset", "commit_stall")}
            detail = ", ".join(f"{c} {v:,}" for c, v in interesting.items())
            lines.append(f"  socket {socket}: {socket_total:>12,} cycles "
                         f"({detail})")
    if not attribution.identity_ok:
        lines.append("  !! identity violated: categories do not sum to "
                     "makespan on every thread")
    return "\n".join(lines)


def format_hot_lines(session, top: int = 5) -> str:
    lines = ["hottest lines by conflict count:"]
    ranked = hot_lines(session.line_conflict_counts, top)
    if not ranked:
        lines.append("  (no conflicts)")
    for line, count in ranked:
        accesses = session.line_access_counts.get(int(line, 16), 0)
        lines.append(f"  {line}  {count} conflicts, {accesses} accesses")
    return "\n".join(lines)
