"""``python -m repro obs`` — observe one run end to end.

Runs one workload with the full observability stack attached (metrics
registry, lifecycle timeline, cycle profiler), prints the attribution
breakdown, reconciles the observed lifecycle against ``SystemStats``
totals (non-zero exit on mismatch — the acceptance contract), and
optionally writes a validated Chrome trace-event JSON for Perfetto.

``--overhead-check`` instead times the same request with and without
instrumentation (best of N wall-clock) and fails when the instrumented
run's simulated-ops-per-second falls below ``1/limit`` of baseline —
the CI perf-smoke gate invokes this with the default 2x limit
(``--format json`` emits the measured ratio + threshold for archiving).

Subcommands of the regression observatory:

``obs diff A B``      differential attribution between two digest
                      sources (files or history refs like ``HEAD~1``)
``obs whatif``        causal what-if profiler (:mod:`repro.obs.whatif`)
``obs history``       list/export the cross-run digest history store
"""

from __future__ import annotations

# lint-file-ok: RL005 (sweep-engine and exporter stacks load lazily so obs --help stays fast, like the bench/analyze CLIs)

import argparse
import json
import sys
import time

from .profile import attribute, digest, format_breakdown, format_hot_lines
from .session import ObsSession
from .timeline import build_timeline


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="run one workload fully instrumented: metrics, "
                    "transaction timeline, simulated-cycle profile")
    parser.add_argument("workload",
                        help="suite benchmark or adversarial workload "
                             "(e.g. contended-list)")
    parser.add_argument("--backend", "--system", dest="system",
                        default="hmtx",
                        help="system label or registered backend "
                             "(default hmtx)")
    parser.add_argument("--paradigm", default=None,
                        help="force a parallelisation paradigm")
    parser.add_argument("--policy", default=None,
                        help="txctl retry policy name")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    parser.add_argument("--timeline", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON "
                             "(Perfetto-loadable)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--gantt", action="store_true",
                        help="render the terminal Gantt view")
    parser.add_argument("--gantt-width", type=int, default=72)
    parser.add_argument("--top", type=int, default=5,
                        help="hot-line table size (default 5)")
    parser.add_argument("--metrics", action="store_true",
                        help="also dump the full metrics registry")
    parser.add_argument("--overhead-check", action="store_true",
                        help="time instrumented vs uninstrumented and "
                             "assert the overhead bound")
    parser.add_argument("--overhead-limit", type=float, default=2.0,
                        help="max allowed wall-clock slowdown factor "
                             "(default 2.0)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of-N runs for --overhead-check")
    parser.add_argument("--history", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="append this run's obs digest to the "
                             "cross-run history store (default dir "
                             ".obs-history when no DIR given)")
    return parser


def _observed_run(request):
    """Execute ``request`` with a fresh session attached; returns
    ``(session, workload, result)`` with the session finalized."""
    from ..experiments.engine import _run
    session = ObsSession()
    with session.activate():
        workload, result = _run(request)
    session.detach()
    session.finalize(result)
    return session, workload, result


def _overhead_check(request, repeat: int, limit: float,
                    fmt: str = "text") -> int:
    from ..experiments.engine import _run
    baseline = instrumented = float("inf")
    ops = 0
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        _, result = _run(request)
        baseline = min(baseline, time.perf_counter() - start)
        ops = result.run.ops_executed
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        session, _, _ = _observed_run(request)
        instrumented = min(instrumented, time.perf_counter() - start)
    slowdown = instrumented / baseline if baseline > 0 else 1.0
    base_rate = ops / baseline if baseline > 0 else 0.0
    inst_rate = ops / instrumented if instrumented > 0 else 0.0
    ok = slowdown <= limit
    if fmt == "json":
        # The one legitimately wall-clock artifact: it *measures* the
        # profiler's wall overhead, so the CI gate can archive the ratio
        # it enforced alongside the pass/fail threshold.
        print(json.dumps({
            "schema": "hmtx-obs-overhead/1",
            "workload": request.workload,
            "system": request.system,
            "repeat": max(1, repeat),
            "ops_executed": ops,
            "uninstrumented_ops_per_sec": round(base_rate),
            "instrumented_ops_per_sec": round(inst_rate),
            "slowdown": round(slowdown, 3),
            "limit": limit,
            "ok": ok,
        }, indent=2, sort_keys=True))
    else:
        print(f"overhead-check {request.workload}/{request.system}: "
              f"uninstrumented {base_rate:,.0f} ops/s, "
              f"instrumented {inst_rate:,.0f} ops/s, "
              f"slowdown {slowdown:.2f}x (limit {limit:.1f}x) "
              f"{'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def diff_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs diff",
        description="differential digest attribution between two runs: "
                    "paths (digest/report/bundle/sweep JSON) or history "
                    "refs (HEAD, HEAD~N, gen:N, git:LABEL)")
    parser.add_argument("a", help="before: path or history ref")
    parser.add_argument("b", help="after: path or history ref")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="history store for ref sources "
                             "(default .obs-history)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the hmtx-obs-diff/1 artifact")
    parser.add_argument("--top", type=int, default=3,
                        help="phases per pair in the text report "
                             "(default 3)")
    parser.add_argument("--check-zero", action="store_true",
                        help="exit non-zero unless the diff is exactly "
                             "zero (CI determinism gate)")
    args = parser.parse_args(argv)
    from .diff import diff_bundles, format_diff, load_entries, render_json
    from .history import DEFAULT_ROOT, HistoryStore
    store = HistoryStore(args.store or DEFAULT_ROOT)
    try:
        bundle_a = load_entries(args.a, store)
        bundle_b = load_entries(args.b, store)
    except (KeyError, ValueError, OSError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"obs diff: {message}", file=sys.stderr)
        return 2
    artifact = diff_bundles(bundle_a, bundle_b)
    if args.format == "json":
        print(render_json(artifact), end="")
    else:
        print(format_diff(artifact, top=args.top))
    if args.output:
        import pathlib
        pathlib.Path(args.output).write_text(render_json(artifact),
                                             encoding="utf-8")
    if args.check_zero and not artifact["zero"]:
        return 1
    return 0


def history_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs history",
        description="list or export the cross-run obs-digest history")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="history store (default .obs-history)")
    parser.add_argument("--limit", type=int, default=10,
                        help="generations to list (default 10)")
    parser.add_argument("--ref", default="HEAD",
                        help="generation to export (default HEAD)")
    parser.add_argument("--export", default=None, metavar="FILE",
                        help="write --ref as a hmtx-obs-digests/1 bundle")
    args = parser.parse_args(argv)
    from .history import DEFAULT_ROOT, HistoryStore, format_history
    store = HistoryStore(args.store or DEFAULT_ROOT)
    if args.export:
        import pathlib
        try:
            bundle = store.export_bundle(args.ref)
        except KeyError as exc:
            print(f"obs history: {exc.args[0]}", file=sys.stderr)
            return 2
        pathlib.Path(args.export).write_text(
            json.dumps(bundle, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"wrote {args.export} ({len(bundle['entries'])} digest(s) "
              f"from {args.ref})")
        return 0
    print(format_history(store, limit=args.limit))
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["diff"]:
        return diff_main(argv[1:])
    if argv[:1] == ["whatif"]:
        from .whatif import main as whatif_main
        return whatif_main(argv[1:])
    if argv[:1] == ["history"]:
        return history_main(argv[1:])
    args = _parser().parse_args(argv)
    from ..experiments.engine import RunRequest
    request = RunRequest(workload=args.workload, system=args.system,
                         scale=args.scale, paradigm=args.paradigm,
                         policy=args.policy)
    if args.overhead_check:
        return _overhead_check(request, args.repeat, args.overhead_limit,
                               fmt=args.format)

    session, workload, result = _observed_run(request)
    attribution = attribute(session)
    reconciliation = session.reconcile(result.system.stats)
    timeline = build_timeline(session, attribution)
    correct = (workload.observed_result(result.system)
               == workload.expected_result(result.system))

    if args.history is not None:
        from ..experiments.engine import snapshot
        from .history import DEFAULT_ROOT, HistoryStore
        record = snapshot(request, workload, result, 0.0,
                          obs_digest=digest(session, attribution))
        store = HistoryStore(args.history or DEFAULT_ROOT)
        appended = store.append_runs([(request, record)], source="obs")
        print(f"history: generation {appended['generation']} at "
              f"{store.root} ({appended['new_digests']} new digest(s))")

    if args.timeline:
        from .export import write_chrome_trace
        data = write_chrome_trace(
            timeline, args.timeline,
            label=f"{args.workload}/{args.system}")
        trace_note = (f"wrote {args.timeline} "
                      f"({len(data['traceEvents'])} trace events, "
                      f"validated)")
    else:
        trace_note = None

    if args.format == "json":
        report = {
            "schema": "hmtx-obs-report/1",
            "workload": args.workload,
            "system": args.system,
            "scale": args.scale,
            "paradigm": result.paradigm,
            "cycles": result.cycles,
            "correct": correct,
            "digest": digest(session, attribution, top=args.top),
            "reconcile": reconciliation,
            "metrics": session.registry.collect(),
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        stats = result.system.stats
        print(f"{args.workload} on {args.system}: {result.cycles:,} cycles "
              f"({result.paradigm}); {stats.committed} commits, "
              f"{stats.aborted} aborts; result "
              f"{'correct' if correct else '*** WRONG ***'}")
        print()
        print(format_breakdown(attribution,
                               label=f"{args.workload}/{args.system}"))
        print()
        print(format_hot_lines(session, top=args.top))
        checks = reconciliation["checks"]
        print()
        print("reconciliation vs SystemStats: "
              + ("exact" if reconciliation["ok"] else "MISMATCH"))
        for name, pair in checks.items():
            marker = "==" if pair["observed"] == pair["stats"] else "!="
            print(f"  {name}: observed {pair['observed']} {marker} "
                  f"stats {pair['stats']}")
        if args.gantt:
            from .export import render_gantt
            print()
            print(render_gantt(timeline, width=args.gantt_width))
        if args.metrics:
            print()
            print(session.registry.format_text())
        if trace_note:
            print()
            print(trace_note)

    ok = reconciliation["ok"] and attribution.identity_ok and correct
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - python -m repro obs is the entry
    raise SystemExit(main())
