"""Transaction-lifecycle timeline: per-VID spans and per-thread slices.

A :class:`TxSpan` is one *attempt* of one multithreaded transaction,
stamped in simulated cycles: allocate (``allocateVID``) → begin
(``beginMTX``) → end of the speculative execution window
(``beginMTX(0)``) → outcome (group commit, abort, or squash — an abort of
a *different* VID flushes this one too, the paper's all-or-nothing flush).
The :class:`~repro.obs.session.ObsSession` opens and closes spans as the
wrapped backend methods fire; this module turns the finished session plus
a cycle :class:`~repro.obs.profile.Attribution` into a render-ready
:class:`Timeline` (per-thread category slices, counter tracks) consumed
by both the Chrome exporter and the terminal Gantt view in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class TxSpan:
    """One attempt of one transaction (VID), in simulated cycles."""

    vid: int
    attempt: int
    allocate_ts: int
    tid: Optional[int] = None
    begin_ts: Optional[int] = None
    #: When the thread left the speculative window (``beginMTX(0)``).
    exec_end_ts: Optional[int] = None
    end_ts: Optional[int] = None
    #: ``commit`` | ``abort`` (this VID misspeculated) | ``squashed``
    #: (flushed by another VID's abort) | ``open`` (run ended first).
    outcome: str = "open"
    #: Abort-cause value for ``abort`` outcomes.
    cause: Optional[str] = None
    loads: int = 0
    stores: int = 0

    def normalized(self) -> "TxSpan":
        """Fill holes and clamp stamps monotone (allocate ≤ begin ≤
        exec_end ≤ end) — the invariant the exporter schema check and the
        golden test assert."""
        begin = self.begin_ts if self.begin_ts is not None else self.allocate_ts
        begin = max(begin, self.allocate_ts)
        end = self.end_ts if self.end_ts is not None else begin
        end = max(end, begin)
        exec_end = self.exec_end_ts if self.exec_end_ts is not None else end
        exec_end = min(max(exec_end, begin), end)
        return TxSpan(vid=self.vid, attempt=self.attempt,
                      allocate_ts=self.allocate_ts, tid=self.tid,
                      begin_ts=begin, exec_end_ts=exec_end, end_ts=end,
                      outcome=self.outcome, cause=self.cause,
                      loads=self.loads, stores=self.stores)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vid": self.vid, "attempt": self.attempt, "tid": self.tid,
            "allocate_ts": self.allocate_ts, "begin_ts": self.begin_ts,
            "exec_end_ts": self.exec_end_ts, "end_ts": self.end_ts,
            "outcome": self.outcome, "cause": self.cause,
            "loads": self.loads, "stores": self.stores,
        }


@dataclass
class Slice:
    """A maximal run of same-category cycles on one thread."""

    tid: int
    start: int
    duration: int
    category: str
    vid: int = 0


@dataclass
class Timeline:
    """Everything the exporters need, detached from live objects."""

    makespan: int
    spans: List[TxSpan]
    slices: List[Slice]
    thread_cores: Dict[int, int]
    #: kind -> list of instant events (``ts``/``vid``/``cause``/``addr``).
    instants: Dict[str, List[Dict[str, Any]]]
    #: name -> [(ts, value)] counter tracks.
    counters: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)


def _merge_slices(samples: List[list], categories: List[str]) -> List[Slice]:
    """Coalesce per-op samples into maximal same-category slices per tid.

    ``samples`` rows are ``[seq, tid, start, latency, vid, pretag]``;
    ``categories`` carries the final attribution, parallel to it.
    """
    per_tid: Dict[int, List[Tuple[int, int, str, int]]] = {}
    for row, category in zip(samples, categories):
        _, tid, start, latency, vid, _ = row
        if latency <= 0:
            continue
        per_tid.setdefault(tid, []).append((start, latency, category, vid))
    slices: List[Slice] = []
    for tid in sorted(per_tid):
        current: Optional[Slice] = None
        for start, latency, category, vid in per_tid[tid]:
            if (current is not None and current.category == category
                    and current.vid == vid
                    and start <= current.start + current.duration):
                current.duration = max(current.duration,
                                       start + latency - current.start)
            else:
                if current is not None:
                    slices.append(current)
                current = Slice(tid, start, latency, category, vid)
        if current is not None:
            slices.append(current)
    return slices


def build_timeline(session, attribution) -> Timeline:
    """Assemble the render-ready timeline from a finalized session."""
    spans = [span.normalized() for span in session.all_spans()]
    slices = _merge_slices(session.samples, attribution.categories)
    instants: Dict[str, List[Dict[str, Any]]] = {}
    for event in session.events:
        if event["kind"] in ("conflict", "abort", "vid_reset", "stall"):
            instants.setdefault(event["kind"], []).append(event)
    counters = {
        "spec_footprint_bytes": list(session.footprint_track),
        "runnable_threads": list(session.runnable_track),
        "live_vids": list(session.live_vid_track),
    }
    return Timeline(makespan=session.makespan, spans=spans, slices=slices,
                    thread_cores=dict(session.thread_cores),
                    instants=instants, counters=counters)
