"""Differential digest attribution: *why* did the number move?

``python -m repro obs diff A B`` takes two digest sources — committed
JSON artifacts, digest bundles, or :mod:`repro.obs.history` refs like
``HEAD~1`` — pairs their runs by (workload, system, scale), and explains
each pair's makespan delta hierarchically:

1. **phase** — which cycle categories (useful / commit_stall /
   vid_reset / abort_replay / queue_wait / overflow / idle) absorbed the
   delta, each with its share of the total moved cycles;
2. **socket** — where a moved phase landed on a multi-socket machine
   (the reset-storm fingerprint: ``vid_reset`` growing on the sockets
   far from the committing one);
3. **cause and churn** — abort-cause count deltas, VID-reset count
   deltas, and hot-conflict-line churn (lines entering/leaving the
   top-N table).

The artifact (schema ``hmtx-obs-diff/1``) is a pure function of its two
inputs: keys sorted, no wall clock, byte-identical however the inputs
were produced (``--jobs 1`` vs ``--jobs N`` digests are already
identical by the sweep-engine contract).  ``diff_digest(d, d)`` is
exactly zero in every field — the CI ``obsdiff-smoke`` job asserts it.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .history import BUNDLE_SCHEMA, HistoryStore, bundle
from .profile import DIGEST_SCHEMA, load_digest

DIFF_SCHEMA = "hmtx-obs-diff/1"

#: Source-file schemas the loader understands, besides history refs.
_REPORT_SCHEMA = "hmtx-obs-report/1"
_SWEEP_SCHEMA = "hmtx-sweep-report/1"


# ----------------------------------------------------------------------
# One-pair diff
# ----------------------------------------------------------------------

def _delta(before: int, after: int) -> Dict[str, int]:
    return {"before": before, "after": after, "delta": after - before}


def diff_digest(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Hierarchical delta between two ``hmtx-obs-digest/1`` payloads."""
    a = load_digest(a)
    b = load_digest(b)
    phases = {}
    for category in sorted(set(a["categories"]) | set(b["categories"])):
        phases[category] = _delta(a["categories"].get(category, 0),
                                  b["categories"].get(category, 0))
    moved = sum(entry["delta"] for entry in phases.values())
    per_socket: Dict[int, Dict[str, int]] = {}
    for socket in sorted(set(a["per_socket"]) | set(b["per_socket"])):
        before = a["per_socket"].get(socket, {})
        after = b["per_socket"].get(socket, {})
        deltas = {category: after.get(category, 0) - before.get(category, 0)
                  for category in sorted(set(before) | set(after))}
        per_socket[socket] = {category: delta
                              for category, delta in deltas.items() if delta}
    attribution = []
    for category, entry in sorted(phases.items(),
                                  key=lambda kv: (-abs(kv[1]["delta"]),
                                                  kv[0])):
        if entry["delta"] == 0:
            continue
        item: Dict[str, Any] = {
            "phase": category,
            "delta": entry["delta"],
            # Share of the total moved thread-cycles; shares sum to 1.0
            # (phases moving against the total read as negative shares).
            "share": round(entry["delta"] / moved, 4) if moved else None,
        }
        split = {socket: cats[category]
                 for socket, cats in per_socket.items() if category in cats}
        if split:
            item["per_socket"] = {str(s): d for s, d in sorted(split.items())}
        attribution.append(item)
    causes = {}
    for cause in sorted(set(a["aborts_by_cause"]) | set(b["aborts_by_cause"])):
        entry = _delta(a["aborts_by_cause"].get(cause, 0),
                       b["aborts_by_cause"].get(cause, 0))
        if entry["delta"] or entry["before"] or entry["after"]:
            causes[cause] = entry
    result = {
        "makespan": _delta(a["makespan"], b["makespan"]),
        "thread_cycles": _delta(a["total_thread_cycles"],
                                b["total_thread_cycles"]),
        "phases": phases,
        "attribution": attribution,
        "per_socket": {str(s): cats for s, cats in per_socket.items()},
        "commits": _delta(a["commits"], b["commits"]),
        "aborts": _delta(a["aborts"], b["aborts"]),
        "vid_resets": _delta(a["vid_resets"], b["vid_resets"]),
        "aborts_by_cause": causes,
        "hot_lines": _line_churn(a["hot_conflict_lines"],
                                 b["hot_conflict_lines"]),
    }
    result["zero"] = (
        result["makespan"]["delta"] == 0
        and result["thread_cycles"]["delta"] == 0
        and not attribution
        and all(entry["delta"] == 0 for entry in causes.values())
        and result["commits"]["delta"] == 0
        and result["aborts"]["delta"] == 0
        and result["vid_resets"]["delta"] == 0
        and not result["hot_lines"]["entered"]
        and not result["hot_lines"]["left"]
        and not result["hot_lines"]["changed"])
    return result


def _line_churn(before: Sequence[Tuple[str, int]],
                after: Sequence[Tuple[str, int]]) -> Dict[str, Any]:
    """Hot-conflict-line churn between two top-N tables."""
    before_map = dict(before)
    after_map = dict(after)
    return {
        "entered": [[line, count] for line, count in after
                    if line not in before_map],
        "left": [[line, count] for line, count in before
                 if line not in after_map],
        "changed": [{"line": line, "before": before_map[line],
                     "after": after_map[line]}
                    for line in sorted(before_map)
                    if line in after_map
                    and after_map[line] != before_map[line]],
    }


# ----------------------------------------------------------------------
# Source loading and pairing
# ----------------------------------------------------------------------

def _is_ref(spec: str) -> bool:
    return spec == "HEAD" or spec.startswith(("HEAD~", "gen:", "git:"))


def load_entries(spec: str,
                 store: Optional[HistoryStore] = None) -> Dict[str, Any]:
    """Resolve one CLI source into a digest bundle.

    ``spec`` is a history ref (``HEAD``, ``HEAD~N``, ``gen:N``,
    ``git:LABEL``) or a path to a JSON artifact: a bare digest, an
    ``obs --format json`` report, a sweep report with observed records,
    or an exported digest bundle.
    """
    if _is_ref(spec):
        store = store or HistoryStore()
        out = store.export_bundle(spec)
        out["source"] = f"{spec} @ {store.root}"
        return out
    path = pathlib.Path(spec)
    data = json.loads(path.read_text(encoding="utf-8"))
    schema = data.get("schema")
    if schema == BUNDLE_SCHEMA:
        data.setdefault("source", str(path))
        return data
    if schema == DIGEST_SCHEMA:
        # A bare digest has no run identity; the constant key lets two
        # bare-digest files pair with each other regardless of filename.
        out = bundle([({"workload": "digest", "system": "", "scale": None},
                       data)])
    elif schema == _REPORT_SCHEMA:
        out = bundle([({"workload": data["workload"],
                        "system": data["system"],
                        "scale": data["scale"]}, data["digest"])])
    elif schema == _SWEEP_SCHEMA:
        out = bundle([(record, record["obs_digest"])
                      for record in data.get("records", [])
                      if record.get("obs_digest") is not None])
    else:
        raise ValueError(f"{path}: unrecognized schema {schema!r} (expected "
                         f"{BUNDLE_SCHEMA}, {DIGEST_SCHEMA}, "
                         f"{_REPORT_SCHEMA} or {_SWEEP_SCHEMA})")
    out["source"] = str(path)
    return out


def _pair_key(entry: Dict[str, Any], machine: bool) -> Tuple:
    key = (entry["workload"], entry["system"], str(entry.get("scale")))
    if machine:
        key += (entry.get("machine", "default"),)
    return key


def _keyed(entries: List[Dict[str, Any]],
           machine: bool) -> Dict[Tuple, Dict[str, Any]]:
    keyed: Dict[Tuple, Dict[str, Any]] = {}
    for entry in entries:
        keyed[_pair_key(entry, machine)] = entry
    return keyed


def diff_bundles(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """The full ``hmtx-obs-diff/1`` artifact over two digest bundles.

    Runs pair on (workload, system, scale); when either side holds
    several machines for the same triple (a multi-preset sweep), the
    machine digest joins the key so only like shapes compare.
    """
    need_machine = any(
        len(entries) != len({_pair_key(e, False) for e in entries})
        for entries in (a["entries"], b["entries"]))
    a_keyed = _keyed(a["entries"], need_machine)
    b_keyed = _keyed(b["entries"], need_machine)
    pairs = []
    for key in sorted(set(a_keyed) & set(b_keyed)):
        entry_a, entry_b = a_keyed[key], b_keyed[key]
        pairs.append({
            "workload": entry_a["workload"],
            "system": entry_a["system"],
            "scale": entry_a.get("scale"),
            "machine": [entry_a.get("machine", "default"),
                        entry_b.get("machine", "default")],
            "diff": diff_digest(entry_a["digest"], entry_b["digest"]),
        })
    only_a = sorted("/".join(str(part) for part in key)
                    for key in set(a_keyed) - set(b_keyed))
    only_b = sorted("/".join(str(part) for part in key)
                    for key in set(b_keyed) - set(a_keyed))
    return {
        "schema": DIFF_SCHEMA,
        "a": {"source": a.get("source", "a")},
        "b": {"source": b.get("source", "b")},
        "pairs": pairs,
        "only_in_a": only_a,
        "only_in_b": only_b,
        "zero": (not only_a and not only_b and bool(pairs)
                 and all(pair["diff"]["zero"] for pair in pairs)),
    }


# ----------------------------------------------------------------------
# Text report
# ----------------------------------------------------------------------

def _signed(value: int) -> str:
    return f"{value:+,}"


def format_diff(artifact: Dict[str, Any], top: int = 3) -> str:
    """The pre-explained regression report, one block per pair."""
    lines = [f"obs diff: {artifact['a']['source']}  ->  "
             f"{artifact['b']['source']}"]
    if not artifact["pairs"]:
        lines.append("  (no common runs to compare)")
    for pair in artifact["pairs"]:
        diff = pair["diff"]
        label = pair["workload"] + (f"/{pair['system']}"
                                    if pair["system"] else "")
        if diff["zero"]:
            lines.append(f"  {label}: identical "
                         f"(makespan {diff['makespan']['after']:,} cycles)")
            continue
        makespan = diff["makespan"]
        head = (f"  {label}: makespan {_signed(makespan['delta'])} cycles "
                f"({makespan['before']:,} -> {makespan['after']:,})")
        reasons = []
        for item in diff["attribution"][:top]:
            share = (f"{item['share']:.0%}" if item["share"] is not None
                     else _signed(item["delta"]))
            reason = f"{share} {item['phase']}"
            split = item.get("per_socket")
            if split and len(split) > 1:
                worst = max(split.items(), key=lambda kv: (abs(kv[1]),
                                                           kv[0]))
                reason += f" (socket {worst[0]} {_signed(worst[1])})"
            reasons.append(reason)
        if reasons:
            head += ": " + ", ".join(reasons)
        lines.append(head)
        resets = diff["vid_resets"]
        if resets["delta"]:
            lines.append(f"    vid resets {resets['before']} -> "
                         f"{resets['after']}")
        for cause, entry in diff["aborts_by_cause"].items():
            if entry["delta"]:
                lines.append(f"    aborts[{cause}] {entry['before']} -> "
                             f"{entry['after']}")
        churn = diff["hot_lines"]
        moved = [f"+{line}" for line, _ in churn["entered"]] \
            + [f"-{line}" for line, _ in churn["left"]]
        if moved:
            lines.append(f"    hot-line churn: {', '.join(moved)}")
    for key in artifact["only_in_a"]:
        lines.append(f"  only in A: {key}")
    for key in artifact["only_in_b"]:
        lines.append(f"  only in B: {key}")
    lines.append("  ZERO DELTA" if artifact["zero"]
                 else "  (deltas present)")
    return "\n".join(lines)


def render_json(artifact: Dict[str, Any]) -> str:
    return json.dumps(artifact, indent=2, sort_keys=True) + "\n"
