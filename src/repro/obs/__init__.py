"""repro.obs — observability: metrics, timelines, cycle attribution.

Three coordinated layers over one recorded run:

* :mod:`repro.obs.registry` — labeled counters/gauges/histograms,
* :mod:`repro.obs.session` + :mod:`repro.obs.timeline` — per-VID
  transaction-lifecycle spans in simulated cycles,
* :mod:`repro.obs.profile` — every simulated cycle attributed to a
  category (useful / commit_stall / vid_reset / abort_replay /
  queue_wait / overflow / idle),

exported via :mod:`repro.obs.export` as Chrome trace-event JSON or a
terminal Gantt, and surfaced as ``python -m repro obs``.

On top of the per-run digest sits the **regression observatory**:
:mod:`repro.obs.history` (cross-run content-addressed digest store),
:mod:`repro.obs.diff` (differential attribution — ``obs diff A B``),
and :mod:`repro.obs.whatif` (causal knob-sensitivity profiling).

This ``__init__`` stays import-light (PEP 562 lazy attributes): the hot
path (``runtime.paradigms.base``) imports ``repro.obs.hooks`` at module
load, and pulling the whole stack in with it would tax every
uninstrumented run's startup for nothing.
"""

from __future__ import annotations

from . import hooks  # noqa: F401  (the one eagerly-needed submodule)

_LAZY = {
    "ObsSession": ("session", "ObsSession"),
    "MetricsRegistry": ("registry", "MetricsRegistry"),
    "attribute": ("profile", "attribute"),
    "digest": ("profile", "digest"),
    "load_digest": ("profile", "load_digest"),
    "HistoryStore": ("history", "HistoryStore"),
    "git_describe": ("history", "git_describe"),
    "diff_digest": ("diff", "diff_digest"),
    "diff_bundles": ("diff", "diff_bundles"),
    "format_diff": ("diff", "format_diff"),
    "run_whatif": ("whatif", "run_whatif"),
    "build_timeline": ("timeline", "build_timeline"),
    "TxSpan": ("timeline", "TxSpan"),
    "Timeline": ("timeline", "Timeline"),
    "to_chrome_trace": ("export", "to_chrome_trace"),
    "write_chrome_trace": ("export", "write_chrome_trace"),
    "validate_trace": ("export", "validate_trace"),
    "render_gantt": ("export", "render_gantt"),
}

__all__ = ["hooks"] + sorted(_LAZY)


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}") from None
    import importlib  # lint-ok: RL005 (PEP 562 lazy loader — the whole point is not importing the stack at package-import time)
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value
