"""Shared helpers for the experiment drivers: runs, tables, geomeans."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.config import MachineConfig
from ..runtime.paradigms import ParadigmResult, run_sequential, run_workload
from ..smtx import ValidationMode, run_smtx
from ..workloads import Workload, executor_factory_for, make_benchmark


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Plain-text table (all experiment drivers print through this)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class BenchmarkRunner:
    """Runs benchmark models under each system, caching per-config results.

    One Figure 8 sweep needs sequential + HMTX + SMTX runs of the same
    benchmark; Table 1, Figure 9 and Table 3 reuse those runs, so the
    drivers share a runner.
    """

    def __init__(self, scale: float = 1.0,
                 config: Optional[MachineConfig] = None) -> None:
        self.scale = scale
        self.config = config
        self._cache: Dict[tuple, ParadigmResult] = {}
        self._workloads: Dict[tuple, Workload] = {}

    def _fresh(self, name: str) -> Workload:
        return make_benchmark(name, self.scale)

    def workload(self, name: str, system: str) -> Workload:
        """The workload instance used for the cached (name, system) run."""
        return self._workloads[(name, system)]

    def sequential(self, name: str) -> ParadigmResult:
        return self._run(name, "sequential")

    def hmtx(self, name: str, sla_enabled: bool = True) -> ParadigmResult:
        key = "hmtx" if sla_enabled else "hmtx-nosla"
        return self._run(name, key, sla_enabled=sla_enabled)

    def smtx(self, name: str, mode: ValidationMode) -> ParadigmResult:
        return self._run(name, f"smtx-{mode.value}", smtx_mode=mode)

    def _run(self, name: str, system: str,
             sla_enabled: bool = True,
             smtx_mode: Optional[ValidationMode] = None) -> ParadigmResult:
        key = (name, system)
        if key in self._cache:
            return self._cache[key]
        workload = self._fresh(name)
        executor_factory = executor_factory_for(workload)
        if system == "sequential":
            result = run_sequential(workload, self.config,
                                    executor_factory=executor_factory)
        elif smtx_mode is not None:
            result = run_smtx(workload, self.config, mode=smtx_mode,
                              executor_factory=executor_factory)
        else:
            result = run_workload(workload, self.config,
                                  sla_enabled=sla_enabled,
                                  executor_factory=executor_factory)
        self._workloads[key] = workload
        self._cache[key] = result
        return result

    def speedup(self, name: str, system: str,
                smtx_mode: Optional[ValidationMode] = None) -> float:
        """Hot-loop speedup of ``system`` over sequential for ``name``."""
        seq = self.sequential(name)
        if system == "hmtx":
            other = self.hmtx(name)
        elif system == "hmtx-nosla":
            other = self.hmtx(name, sla_enabled=False)
        elif system == "smtx":
            other = self.smtx(name, smtx_mode or ValidationMode.MINIMAL)
        else:
            raise ValueError(f"unknown system {system!r}")
        return seq.cycles / other.cycles

    def verify(self, name: str, system: str) -> bool:
        """Did the (name, system) run preserve sequential semantics?"""
        workload = self._workloads[(name, system)]
        result = self._cache[(name, system)]
        expected = workload.expected_result(result.system)
        observed = workload.observed_result(result.system)
        return expected == observed
