"""Shared helpers for the experiment drivers: runs, tables, geomeans.

:class:`BenchmarkRunner` is the drivers' facade over the sweep engine
(:mod:`repro.experiments.engine`): it names runs the way the figures do
("the HMTX run of 130.li", "SMTX with minimal validation") and returns
plain :class:`~repro.experiments.engine.RunRecord` snapshots, cached so
the figures share baselines.  Parallelism is the engine's business —
construct the runner with ``jobs=N`` and batch work via
:meth:`BenchmarkRunner.prefetch`.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from ..core.config import MachineConfig
from ..smtx import ValidationMode
from .engine import RunRecord, RunRequest, SweepEngine


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic).

    Raises ``ValueError`` on an empty or non-positive input: every caller
    is summarising a benchmark set, and an empty set means the sweep lost
    rows — returning 0.0 here used to let that bug masquerade as a
    plausible "no speedup" figure.
    """
    values = [v for v in values]
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Plain-text table (all experiment drivers print through this)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class BenchmarkRunner:
    """Runs benchmark models under each system, caching per-config results.

    One Figure 8 sweep needs sequential + HMTX + SMTX runs of the same
    benchmark; Table 1, Figure 9 and Table 3 reuse those runs, so the
    drivers share a runner.  Execution happens in the underlying
    :class:`~repro.experiments.engine.SweepEngine`; the cache key covers
    workload name, system label, scale, *and* the machine-config digest,
    so two runners sharing one engine at different scales or configs
    never collide (the old (name, system) key did).
    """

    def __init__(self, scale: float = 1.0,
                 config: Optional[MachineConfig] = None,
                 jobs: int = 1,
                 engine: Optional[SweepEngine] = None,
                 observe: bool = False) -> None:
        self.scale = scale
        self.config = config
        self.engine = engine or SweepEngine(jobs=jobs, observe=observe)

    def request(self, name: str, system: str) -> RunRequest:
        """The engine request for the (benchmark, system-label) pair."""
        return RunRequest(workload=name, system=system, scale=self.scale,
                          machine=self.config)

    def prefetch(self, requests: Sequence[RunRequest]) -> None:
        """Execute a batch up front (in parallel when the engine has
        ``jobs > 1``); later per-name accessors hit the cache."""
        self.engine.run(requests)

    def run(self, name: str, system: str) -> RunRecord:
        return self.engine.run_one(self.request(name, system))

    def sequential(self, name: str) -> RunRecord:
        return self.run(name, "sequential")

    def hmtx(self, name: str, sla_enabled: bool = True) -> RunRecord:
        return self.run(name, "hmtx" if sla_enabled else "hmtx-nosla")

    def smtx(self, name: str, mode: ValidationMode) -> RunRecord:
        return self.run(name, f"smtx-{mode.value}")

    def speedup(self, name: str, system: str,
                smtx_mode: Optional[ValidationMode] = None) -> float:
        """Hot-loop speedup of ``system`` over sequential for ``name``."""
        seq = self.sequential(name)
        if system == "hmtx":
            other = self.hmtx(name)
        elif system == "hmtx-nosla":
            other = self.hmtx(name, sla_enabled=False)
        elif system == "smtx":
            other = self.smtx(name, smtx_mode or ValidationMode.MINIMAL)
        else:
            other = self.run(name, system)
        return seq.cycles / other.cycles

    def verify(self, name: str, system: str) -> bool:
        """Did the (name, system) run preserve sequential semantics?"""
        return self.run(name, system).correct

    def records(self) -> List[RunRecord]:
        """Every cached record, in execution order (for reports)."""
        return list(self.engine._cache.values())
