"""Contention-management sweep: retry policies under hostile workloads.

The evaluation's Table 1 benchmarks abort rarely, so the choice of
contention-management policy barely shows there.  This driver stresses
the :mod:`repro.txctl` subsystem where it matters, running two
adversarial loops (:mod:`repro.workloads.contended`) under every
registered retry policy:

* **contended-list** — the Figure 3 linked list with a shared
  read-modify-write per iteration: conflict aborts, curable by
  backoff/serialisation.
* **capacity-hog** — write sets that overflow a deliberately tiny cache
  hierarchy: deterministic capacity aborts, curable *only* by the
  non-speculative serial fallback.

For each (workload, policy) cell the table reports cycles, recoveries,
the abort breakdown by cause, how far the escalation ladder was climbed
(retried / serialised / fell back) and whether the committed result
matched sequential semantics — the subsystem's progress guarantee made
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import MachineConfig
from ..runtime.paradigms import ParadigmResult, run_ps_dswp
from ..txctl import POLICIES, ContentionManager, make_policy
from ..workloads.contended import CapacityHogWorkload, HighContentionListWorkload
from .reporting import format_table


@dataclass
class SweepCell:
    """One (workload, policy) run of the sweep."""

    workload: str
    policy: str
    cycles: int
    recoveries: int
    aborts_by_cause: Dict[str, int]
    backoff_cycles: int
    serialized: bool
    fallback: bool
    fallback_iterations: int
    correct: bool

    @property
    def cause_summary(self) -> str:
        if not self.aborts_by_cause:
            return "-"
        return " ".join(f"{cause}={count}"
                        for cause, count in sorted(self.aborts_by_cause.items()))

    @property
    def outcome(self) -> str:
        if self.fallback:
            return "fallback"
        if self.serialized:
            return "serialized"
        if self.recoveries:
            return "retried"
        return "clean"


@dataclass
class ContentionSweepResult:
    cells: List[SweepCell]

    def cell(self, workload: str, policy: str) -> SweepCell:
        for c in self.cells:
            if c.workload == workload and c.policy == policy:
                return c
        raise KeyError((workload, policy))


def _scenarios(scale: float) -> List[Tuple[str, object, Optional[MachineConfig]]]:
    nodes = max(8, int(24 * scale))
    hog_iters = max(2, int(4 * scale))
    return [
        ("contended-list",
         lambda: HighContentionListWorkload(nodes=nodes, rmw_per_iteration=2),
         None),
        ("capacity-hog",
         lambda: CapacityHogWorkload(iterations=hog_iters),
         CapacityHogWorkload.tiny_config()),
    ]


def run_contention_sweep(scale: float = 1.0,
                         policies: Optional[List[str]] = None,
                         ) -> ContentionSweepResult:
    """Run every scenario under every retry policy."""
    policies = policies or sorted(POLICIES)
    cells: List[SweepCell] = []
    for workload_name, make_workload, config in _scenarios(scale):
        for policy_name in policies:
            workload = make_workload()
            manager = ContentionManager(policy=make_policy(policy_name))
            result: ParadigmResult = run_ps_dswp(
                workload, config=config, manager=manager)
            contention = result.system.stats.contention
            cells.append(SweepCell(
                workload=workload_name,
                policy=policy_name,
                cycles=result.cycles,
                recoveries=result.recoveries,
                aborts_by_cause=dict(contention.by_cause),
                backoff_cycles=contention.backoff_cycles,
                serialized=result.extra["degraded_serial"],
                fallback=result.extra["serial_fallback"],
                fallback_iterations=contention.fallback_iterations,
                correct=(workload.observed_result(result.system)
                         == workload.expected_result(result.system)),
            ))
    return ContentionSweepResult(cells=cells)


def format_contention_sweep(result: ContentionSweepResult) -> str:
    rows = []
    for c in result.cells:
        rows.append([
            c.workload,
            c.policy,
            f"{c.cycles:,}",
            c.recoveries,
            c.cause_summary,
            c.backoff_cycles,
            c.outcome,
            "ok" if c.correct else "*** WRONG ***",
        ])
    return format_table(
        ["workload", "policy", "cycles", "recoveries", "aborts by cause",
         "backoff cyc", "outcome", "result"],
        rows,
        title="Contention sweep: retry policies on adversarial workloads")
