"""Contention-management sweep: retry policies under hostile workloads.

The evaluation's Table 1 benchmarks abort rarely, so the choice of
contention-management policy barely shows there.  This driver stresses
the :mod:`repro.txctl` subsystem where it matters, running two
adversarial loops (:mod:`repro.workloads.contended`) under every
registered retry policy:

* **contended-list** — the Figure 3 linked list with a shared
  read-modify-write per iteration: conflict aborts, curable by
  backoff/serialisation.
* **capacity-hog** — write sets that overflow a deliberately tiny cache
  hierarchy: deterministic capacity aborts, curable *only* by the
  non-speculative serial fallback.

For each (workload, policy) cell the table reports cycles, recoveries,
the abort breakdown by cause, how far the escalation ladder was climbed
(retried / serialised / fell back) and whether the committed result
matched sequential semantics — the subsystem's progress guarantee made
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..txctl import POLICIES
from ..workloads.contended import CapacityHogWorkload
from .engine import RunRequest, SweepEngine, SweepSpec
from .reporting import format_table


@dataclass
class SweepCell:
    """One (workload, policy) run of the sweep."""

    workload: str
    policy: str
    cycles: int
    recoveries: int
    aborts_by_cause: Dict[str, int]
    backoff_cycles: int
    serialized: bool
    fallback: bool
    fallback_iterations: int
    correct: bool

    @property
    def cause_summary(self) -> str:
        if not self.aborts_by_cause:
            return "-"
        return " ".join(f"{cause}={count}"
                        for cause, count in sorted(self.aborts_by_cause.items()))

    @property
    def outcome(self) -> str:
        if self.fallback:
            return "fallback"
        if self.serialized:
            return "serialized"
        if self.recoveries:
            return "retried"
        return "clean"


@dataclass
class ContentionSweepResult:
    cells: List[SweepCell]

    def cell(self, workload: str, policy: str) -> SweepCell:
        for c in self.cells:
            if c.workload == workload and c.policy == policy:
                return c
        raise KeyError((workload, policy))


def contention_spec(scale: float = 1.0,
                    policies: Optional[List[str]] = None) -> SweepSpec:
    """Every (workload, policy) cell of the sweep, in report order.

    The adversarial workloads are engine-native (``build_workload`` sizes
    them by ``scale``); the capacity hog pins the deliberately tiny
    machine config through the request.
    """
    policies = policies or sorted(POLICIES)
    requests: List[RunRequest] = []
    for workload_name, machine in (("contended-list", None),
                                   ("capacity-hog",
                                    CapacityHogWorkload.tiny_config())):
        for policy_name in policies:
            requests.append(RunRequest(
                workload=workload_name, system="hmtx", scale=scale,
                paradigm="PS-DSWP", policy=policy_name, machine=machine))
    return SweepSpec("contention", tuple(requests))


def run_contention_sweep(scale: float = 1.0,
                         policies: Optional[List[str]] = None,
                         engine: Optional[SweepEngine] = None,
                         ) -> ContentionSweepResult:
    """Run every scenario under every retry policy."""
    engine = engine or SweepEngine()
    spec = contention_spec(scale, policies)
    cells: List[SweepCell] = []
    for request, record in zip(spec.requests, engine.run_spec(spec)):
        cells.append(SweepCell(
            workload=record.workload,
            policy=request.policy,
            cycles=record.cycles,
            recoveries=record.recoveries,
            aborts_by_cause=dict(record.aborts_by_cause),
            backoff_cycles=record.backoff_cycles,
            serialized=record.degraded_serial,
            fallback=record.serial_fallback,
            fallback_iterations=record.fallback_iterations,
            correct=record.correct,
        ))
    return ContentionSweepResult(cells=cells)


def format_contention_sweep(result: ContentionSweepResult) -> str:
    rows = []
    for c in result.cells:
        rows.append([
            c.workload,
            c.policy,
            f"{c.cycles:,}",
            c.recoveries,
            c.cause_summary,
            c.backoff_cycles,
            c.outcome,
            "ok" if c.correct else "*** WRONG ***",
        ])
    return format_table(
        ["workload", "policy", "cycles", "recoveries", "aborts by cause",
         "backoff cyc", "outcome", "result"],
        rows,
        title="Contention sweep: retry policies on adversarial workloads")
