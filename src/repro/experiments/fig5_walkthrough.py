"""Figure 5: the worked example — two threads, one address, three versions.

Replays the paper's instruction sequence against the real protocol and
records the cache state of the traced address after every instruction,
exactly as Figure 5's right-hand column does:

====  =======================  ==========================================
step  instruction              expected versions (state, modVID, highVID)
====  =======================  ==========================================
0     initial                  (none cached)
1     T1: beginMTX(1); load    S-E(0,1)
2     T1: store (VID 1)        S-O(0,1), S-M(1,1)
3     T1: beginMTX(2); store   S-O(0,1), S-O(1,2), S-M(2,2)
4     T2: beginMTX(1); load    ... + shared copy of the (1,2) version
5     T2: commitMTX(1)         (1,2)-version's data becomes architectural
====  =======================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.config import MachineConfig
from ..core.system import HMTXSystem

#: The traced address ("0xa" in the paper's figure).
ADDR = 0xA000
NEXT_PTR = 0xB000


@dataclass
class WalkStep:
    step: int
    description: str
    loaded_value: int
    #: (cache, state, modVID, highVID) for every cached version of ADDR.
    versions: List[Tuple[str, str, int, int]] = field(default_factory=list)


def _snapshot(system: HMTXSystem) -> List[Tuple[str, str, int, int]]:
    out = []
    for cache_name, line in system.hierarchy.versions_everywhere(ADDR):
        out.append((cache_name, str(line.state), line.mod_vid, line.high_vid))
    return sorted(out)


def run_fig5() -> List[WalkStep]:
    """Execute the Figure 5 sequence; returns the per-step cache states."""
    system = HMTXSystem(MachineConfig(num_cores=2))
    system.thread(1, core=0)   # "Thread 1" of the figure
    system.thread(2, core=1)   # "Thread 2"
    memory = system.hierarchy.memory
    memory.write_word(ADDR, NEXT_PTR)
    memory.write_word(NEXT_PTR, 0xC000)
    steps: List[WalkStep] = []

    def record(step: int, description: str, value: int = 0) -> None:
        steps.append(WalkStep(step, description, value, _snapshot(system)))

    record(0, "initial state")
    # next-iteration thread, VID 1: r1 = M[0xa]
    system.vid_space.allocate()
    system.begin_mtx(1, 1)
    value = system.load(1, ADDR).value
    record(1, "T1 beginMTX(1); r1 = M[0xa]", value)
    # M[0xa] = M[r1]: advance the list head (speculative store, VID 1).
    system.store(1, ADDR, system.load(1, value).value)
    record(2, "T1 M[0xa] = M[r1] (VID 1)")
    # Same thread moves on to VID 2 and repeats.
    system.vid_space.allocate()
    system.begin_mtx(1, 2)
    head = system.load(1, ADDR).value
    system.store(1, ADDR, system.load(1, head).value)
    record(3, "T1 beginMTX(2); M[0xa] = M[r1] (VID 2)")
    system.begin_mtx(1, 0)
    # Work thread continues transaction 1 on the other core.
    system.begin_mtx(2, 1)
    value = system.load(2, ADDR).value
    record(4, "T2 beginMTX(1); r1 = M[0xa]", value)
    system.commit_mtx(2, 1)
    record(5, "T2 commitMTX(1)")
    return steps


def format_fig5(steps: List[WalkStep]) -> str:
    lines = ["Figure 5 walkthrough: versions of 0x%x per step" % ADDR]
    for step in steps:
        versions = ", ".join(
            f"{cache}:{state}({mod},{high})"
            for cache, state, mod, high in step.versions) or "(none)"
        lines.append(f"  {step.step}: {step.description:38s} -> {versions}")
    return "\n".join(lines)
