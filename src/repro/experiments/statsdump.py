"""gem5-style statistics dump for a finished run.

Collects every counter the simulator keeps — hierarchy traffic, per-cache
behaviour, VID comparator activity, transaction statistics, SLA activity,
branch prediction, directory/overflow extension counters — into one
structured report.  ``python -m repro run <bench> --stats`` prints it.
"""

from __future__ import annotations

from typing import List, Tuple

from ..txctl.causes import AbortCause
from ..txctl.livelock import EscalationLevel

Section = Tuple[str, List[Tuple[str, object]]]


def _stable_causes(by_cause) -> str:
    """Every taxonomy cause, zeros included — downstream diffing needs a
    run with no aborts and a run with aborts to expose the same keys."""
    return " ".join(f"{cause.value}={by_cause.get(cause.value, 0)}"
                    for cause in AbortCause)


def _stable_escalations(escalations) -> str:
    """Every livelock ladder rung above NORMAL, zeros included."""
    levels = [level for level in EscalationLevel
              if level is not EscalationLevel.NORMAL]
    return " ".join(f"{level}={escalations.get(str(level), 0)}"
                    for level in levels)


def collect_stats(result) -> List[Section]:
    """Structured statistics from a ParadigmResult."""
    system = result.system
    sections: List[Section] = []

    sections.append(("run", [
        ("workload", result.workload),
        ("paradigm", result.paradigm),
        ("cycles", result.cycles),
        ("recoveries", result.recoveries),
        ("degraded_serial", result.extra.get("degraded_serial", False)),
        ("ops_executed", result.run.ops_executed),
    ]))

    stats = system.stats
    sections.append(("transactions", [
        ("committed", stats.committed),
        ("aborted", stats.aborted),
        ("explicit_aborts", stats.explicit_aborts),
        ("spec_loads", stats.spec_loads),
        ("spec_stores", stats.spec_stores),
        ("avg_spec_accesses_per_tx", round(stats.avg_spec_accesses_per_tx, 1)),
        ("avg_read_set_kb", round(stats.avg_read_set_kb, 2)),
        ("avg_write_set_kb", round(stats.avg_write_set_kb, 2)),
        ("avg_combined_set_kb", round(stats.avg_combined_set_kb, 2)),
        ("vid_resets", stats.vid_resets),
    ]))

    # Emitted unconditionally, with every taxonomy/ladder key zero-filled:
    # the dump of a clean run and of an abort storm must diff line-by-line.
    contention = stats.contention
    sections.append(("contention (txctl)", [
        ("aborts", contention.aborts),
        ("by_cause", _stable_causes(contention.by_cause)),
        ("retries", contention.retries),
        ("backoff_cycles", contention.backoff_cycles),
        ("serialized_recoveries", contention.serialized_recoveries),
        ("escalations", _stable_escalations(contention.escalations)),
        ("fallback_entries", contention.fallback_entries),
        ("fallback_iterations", contention.fallback_iterations),
        ("serial_fallback", result.extra.get("serial_fallback", False)),
    ]))

    sections.append(("sla", [
        ("slas_sent", stats.slas_sent),
        ("pct_of_spec_loads",
         round(100 * stats.sla_fraction_of_spec_loads, 2)),
        ("wrong_path_loads", stats.wrong_path_loads),
        ("false_aborts_avoided", stats.false_aborts_avoided),
        ("false_aborts_triggered", stats.false_aborts_triggered),
    ]))

    exec_stats = result.extra.get("exec_stats")
    if exec_stats is not None:
        sections.append(("instruction mix", [
            ("instructions", exec_stats.instructions),
            ("loads", exec_stats.loads),
            ("stores", exec_stats.stores),
            ("branches", exec_stats.branches),
            ("branch_pct", round(100 * exec_stats.branch_fraction, 2)),
            ("mispredict_pct", round(100 * exec_stats.mispredict_rate, 3)),
        ]))

    hierarchy = getattr(system, "hierarchy", None)
    hstats = getattr(hierarchy, "stats", None)
    if hstats is not None and hasattr(hstats, "bus_snoops"):
        sections.append(("memory system", [
            ("loads", hstats.loads),
            ("stores", hstats.stores),
            ("coherence_transactions", hstats.bus_snoops),
            ("peer_transfers", hstats.peer_transfers),
            ("memory_fetches", hstats.memory_fetches),
            ("ss_invalidations", hstats.ss_invalidations),
            ("bus_wait_cycles", hstats.bus_wait_cycles),
            ("nonspec_overflows", hstats.nonspec_overflows),
            ("overflow_retrievals", hstats.overflow_retrievals),
            ("spec_overflow_spills", hstats.spec_overflow_spills),
            ("commit_broadcasts", hstats.commits),
            ("abort_broadcasts", hstats.aborts),
        ]))
        caches = []
        for cache in hierarchy.l1s + [hierarchy.l2]:
            total = cache.stats.hits + cache.stats.misses
            rate = 100 * cache.stats.hits / total if total else 0.0
            caches.append((cache.name,
                           f"hits={cache.stats.hits} misses={cache.stats.misses} "
                           f"({rate:.1f}% hit) versions+={cache.stats.version_copies} "
                           f"evictions={cache.stats.evictions}"))
        sections.append(("caches", caches))
        comparator = hierarchy.l1s[0].comparator
        sections.append(("vid comparators (L1[0])", [
            ("comparisons", comparator.total_comparisons),
            ("cascaded_pct", round(100 * comparator.cascade_fraction, 2)),
        ]))

    dir_stats = getattr(hierarchy, "dir_stats", None)
    if dir_stats is not None:
        sections.append(("directory", [
            ("lookups", dir_stats.lookups),
            ("probes_sent", dir_stats.probes_sent),
            ("stale_probes", dir_stats.stale_probes),
            ("invalidations_sent", dir_stats.invalidations_sent),
            ("bank_wait_cycles", dir_stats.bank_wait_cycles),
        ]))

    table = getattr(hierarchy, "overflow_table", None)
    if table is not None:
        sections.append(("overflow table", [
            ("spills", table.spills),
            ("refills", table.refills),
            ("resident_versions", table.resident_versions()),
        ]))
    return sections


def format_stats(sections: List[Section]) -> str:
    lines = []
    for title, rows in sections:
        lines.append(f"[{title}]")
        width = max((len(str(k)) for k, _ in rows), default=1)
        for key, value in rows:
            lines.append(f"  {str(key).ljust(width)}  {value}")
    return "\n".join(lines)


def stats_report(result) -> str:
    """One-call convenience: collect + format."""
    return format_stats(collect_stats(result))
