"""Figure 8: hot-loop speedup over sequential on 4 cores.

SMTX runs with *minimal* read/write sets (the expert-manual configuration);
HMTX validates **every** load and store inside each transaction (the
maximum possible validation).  The paper reports geomean 1.99x for HMTX
over all 8 benchmarks, 2.02x over the 6 SMTX-comparable ones, vs. 1.44x
for SMTX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..smtx import ValidationMode
from ..workloads.suite import BENCHMARK_NAMES, SMTX_COMPARABLE
from .engine import SweepSpec
from .reporting import BenchmarkRunner, format_table, geomean

#: Published Figure 8 summary points.
PAPER_GEOMEAN_HMTX_ALL = 1.99
PAPER_GEOMEAN_HMTX_COMPARABLE = 2.02
PAPER_GEOMEAN_SMTX_COMPARABLE = 1.44


@dataclass
class Fig8Row:
    benchmark: str
    paradigm: str
    hmtx_speedup: float
    smtx_speedup: Optional[float]  # None for the two without SMTX versions
    correct: bool


@dataclass
class Fig8Result:
    rows: Dict[str, Fig8Row]
    geomean_hmtx_all: float
    geomean_hmtx_comparable: float
    geomean_smtx_comparable: float


def fig8_spec(runner: BenchmarkRunner) -> SweepSpec:
    """Every run Figure 8 needs, in report order."""
    requests: list = []
    for name in BENCHMARK_NAMES:
        requests.append(runner.request(name, "sequential"))
        requests.append(runner.request(name, "hmtx"))
        if name in SMTX_COMPARABLE:
            requests.append(runner.request(name, "smtx-minimal"))
    return SweepSpec("fig8", tuple(requests))


def run_fig8(scale: float = 1.0,
             runner: Optional[BenchmarkRunner] = None) -> Fig8Result:
    """Regenerate Figure 8's bars."""
    runner = runner or BenchmarkRunner(scale=scale)
    runner.engine.run_spec(fig8_spec(runner))
    rows: Dict[str, Fig8Row] = {}
    for name in BENCHMARK_NAMES:
        hmtx = runner.speedup(name, "hmtx")
        smtx = None
        if name in SMTX_COMPARABLE:
            smtx = runner.speedup(name, "smtx", ValidationMode.MINIMAL)
        rows[name] = Fig8Row(
            benchmark=name,
            paradigm=runner.hmtx(name).paradigm,
            hmtx_speedup=hmtx,
            smtx_speedup=smtx,
            correct=runner.verify(name, "hmtx"),
        )
    comparable = [rows[n] for n in SMTX_COMPARABLE]
    return Fig8Result(
        rows=rows,
        geomean_hmtx_all=geomean(r.hmtx_speedup for r in rows.values()),
        geomean_hmtx_comparable=geomean(r.hmtx_speedup for r in comparable),
        geomean_smtx_comparable=geomean(r.smtx_speedup for r in comparable),
    )


def format_fig8(result: Fig8Result) -> str:
    table_rows = []
    for name, row in result.rows.items():
        table_rows.append([
            name,
            row.paradigm,
            f"{row.hmtx_speedup:.2f}x",
            f"{row.smtx_speedup:.2f}x" if row.smtx_speedup else "-",
            "ok" if row.correct else "WRONG RESULT",
        ])
    table_rows.append(["geomean (All)", "",
                       f"{result.geomean_hmtx_all:.2f}x", "-", ""])
    table_rows.append(["geomean (Comp.)", "",
                       f"{result.geomean_hmtx_comparable:.2f}x",
                       f"{result.geomean_smtx_comparable:.2f}x", ""])
    table = format_table(
        ["benchmark", "paradigm", "HMTX max R/W", "SMTX min R/W", "semantics"],
        table_rows,
        title="Figure 8: hot-loop speedup over sequential (4 cores)")
    paper = (f"paper: HMTX geomean {PAPER_GEOMEAN_HMTX_ALL:.2f}x (All), "
             f"{PAPER_GEOMEAN_HMTX_COMPARABLE:.2f}x (Comp.), "
             f"SMTX {PAPER_GEOMEAN_SMTX_COMPARABLE:.2f}x")
    return f"{table}\n{paper}"
