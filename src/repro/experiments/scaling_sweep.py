"""Big-iron scaling sweep: topology presets × backends × workloads.

ROADMAP item 1, built on the :mod:`repro.topology` machine model: how do
HMTX, SMTX, and the zero-cost oracle behave when the Table 2 machine
grows to 64–256 cores across sockets?  The cost-of-concurrency result in
PAPERS.md predicts the knee comes from the protocol's serialisation
points, not the core count — and for HMTX the sharpest one is the
section 4.6 VID reset: with 6-bit VIDs, 64 allocations force a
machine-wide quiesce + scrub whose stall grows with the socket count
(:meth:`~repro.topology.TopologySpec.reset_scrub_latency`).  Every run
here is observed (:mod:`repro.obs`), so the report carries per-socket
``vid_reset``/``commit_stall`` cycle attribution — the **reset-storm
curve**: remote sockets burning cycles in quiesce while the home socket
commits.

Runs go through the shared :class:`~repro.experiments.engine.SweepEngine`
and inherit its determinism contract: the report is a function of
(scale, code) only, byte-identical for every ``--jobs`` value (the CI
``scaling-smoke`` job diffs exactly this).

CLI: ``python -m repro scaling [--quick] [--jobs N] [--output FILE]``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.config import MachineConfig
from ..obs.profile import load_digest
from ..topology import TOPOLOGY_PRESETS, TopologySpec
from .engine import RunRecord, RunRequest, SweepEngine, SweepSpec
from .reporting import format_table

#: Default sweep axes.  ``table2`` anchors the curve at the paper's flat
#: 4-core machine; the big-iron presets climb to 256 cores.
SCALING_PRESETS = ("table2", "2s64c", "4s128c", "4s256c")
SCALING_SYSTEMS = ("hmtx", "smtx-minimal", "oracle")
SCALING_WORKLOADS = ("130.li", "164.gzip", "svc-kv")

#: The CI smoke machine: 2 sockets × 4 cores, small enough for a
#: per-push job but multi-socket enough to exercise slices, NUMA links,
#: per-socket banks, and the placement policies.
QUICK_PRESETS: Dict[str, TopologySpec] = {
    "2s8c": TopologySpec(sockets=2, cores_per_socket=4),
    # A 4-socket sibling at the same per-job cost class, so the what-if
    # profiler can contrast knob sensitivities across socket counts
    # without paying for the 128-core presets.
    "4s16c": TopologySpec(sockets=4, cores_per_socket=4),
}

QUICK_WORKLOADS = ("130.li", "svc-kv")

_DEFAULT_OUTPUT = "REPORT_scaling.json"


def resolve_preset(name: str) -> TopologySpec:
    """A preset by name, including the quick CI-only shapes."""
    if name in QUICK_PRESETS:
        return QUICK_PRESETS[name]
    try:
        return TOPOLOGY_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown topology preset {name!r}; choose from "
            f"{sorted(TOPOLOGY_PRESETS) + sorted(QUICK_PRESETS)}") from None


def scaling_machine(preset: str, placement: str = "pack") -> MachineConfig:
    """The machine a preset sweeps on (directory coherence when sliced)."""
    return MachineConfig.for_topology(resolve_preset(preset),
                                      placement=placement)


def scaling_spec(scale: float = 1.0,
                 presets: Sequence[str] = SCALING_PRESETS,
                 systems: Sequence[str] = SCALING_SYSTEMS,
                 workloads: Sequence[str] = SCALING_WORKLOADS,
                 placement: str = "pack") -> SweepSpec:
    """Every run of the sweep, preset-major (merge order = report order).

    Requests carry ``observe=True``: the per-socket attribution is the
    artifact, not an optional extra.
    """
    requests: List[RunRequest] = []
    for preset in presets:
        machine = scaling_machine(preset, placement)
        for workload in workloads:
            for system in systems:
                requests.append(RunRequest(
                    workload=workload, system=system, scale=scale,
                    machine=machine, observe=True))
    return SweepSpec("scaling", tuple(requests))


@dataclass
class ScalingRow:
    """One (preset, workload, system) cell of the sweep."""

    preset: str
    sockets: int
    num_cores: int
    workload: str
    system: str
    cycles: int
    committed: int
    aborted: int
    correct: bool
    vid_resets: int
    #: Cycles every thread spent in the VID-reset quiesce, by socket —
    #: str-keyed like the obs digest so JSON round-trips are identity.
    vid_reset_cycles: Dict[str, int] = field(default_factory=dict)
    commit_stall_cycles: Dict[str, int] = field(default_factory=dict)


@dataclass
class ScalingResult:
    scale: float
    placement: str
    presets: Tuple[str, ...]
    rows: List[ScalingRow]
    records: List[RunRecord]


def _socket_cycles(record: RunRecord, category: str) -> Dict[str, int]:
    if record.obs_digest is None:
        return {}
    per_socket = load_digest(record.obs_digest)["per_socket"]
    return {str(socket): cats.get(category, 0)
            for socket, cats in sorted(per_socket.items())}


def run_scaling(scale: float = 1.0,
                presets: Sequence[str] = SCALING_PRESETS,
                systems: Sequence[str] = SCALING_SYSTEMS,
                workloads: Sequence[str] = SCALING_WORKLOADS,
                placement: str = "pack",
                jobs: int = 1,
                engine: Optional[SweepEngine] = None) -> ScalingResult:
    """Execute the sweep and distil the per-cell rows."""
    engine = engine or SweepEngine(jobs=jobs)
    spec = scaling_spec(scale, presets, systems, workloads, placement)
    records = engine.run_spec(spec)
    rows: List[ScalingRow] = []
    per_preset = len(workloads) * len(systems)
    for index, (request, record) in enumerate(zip(spec.requests, records)):
        preset = presets[index // per_preset]
        shape = request.machine.topology or resolve_preset(preset)
        digest = record.obs_digest or {}
        rows.append(ScalingRow(
            preset=preset,
            sockets=shape.sockets,
            num_cores=request.machine.num_cores,
            workload=record.workload,
            system=record.system,
            cycles=record.cycles,
            committed=record.committed,
            aborted=record.aborted,
            correct=record.correct,
            vid_resets=digest.get("vid_resets", 0),
            vid_reset_cycles=_socket_cycles(record, "vid_reset"),
            commit_stall_cycles=_socket_cycles(record, "commit_stall"),
        ))
    return ScalingResult(scale=scale, placement=placement,
                         presets=tuple(presets), rows=rows, records=records)


def reset_storm_curve(result: ScalingResult) -> Dict[str, List[Dict[str, Any]]]:
    """The hmtx VID-reset cost as core count grows, per workload.

    One point per preset: reset count, total quiesce cycles, and the
    per-socket split showing the storm's shape (sockets far from the
    committing one stall longest).
    """
    curve: Dict[str, List[Dict[str, Any]]] = {}
    for row in result.rows:
        if row.system != "hmtx":
            continue
        curve.setdefault(row.workload, []).append({
            "preset": row.preset,
            "sockets": row.sockets,
            "num_cores": row.num_cores,
            "vid_resets": row.vid_resets,
            "vid_reset_cycles_total": sum(row.vid_reset_cycles.values()),
            "vid_reset_cycles_by_socket": row.vid_reset_cycles,
        })
    return curve


def scaling_report(result: ScalingResult) -> Dict[str, Any]:
    """JSON-ready report (wall-clock free, deterministic across --jobs)."""
    return {
        "schema": "hmtx-scaling-report/1",
        "scale": result.scale,
        "placement": result.placement,
        "presets": {name: resolve_preset(name).describe()
                    for name in result.presets},
        "rows": [{
            "preset": row.preset,
            "sockets": row.sockets,
            "num_cores": row.num_cores,
            "workload": row.workload,
            "system": row.system,
            "cycles": row.cycles,
            "committed": row.committed,
            "aborted": row.aborted,
            "correct": row.correct,
            "vid_resets": row.vid_resets,
            "vid_reset_cycles_by_socket": row.vid_reset_cycles,
            "commit_stall_cycles_by_socket": row.commit_stall_cycles,
        } for row in result.rows],
        "reset_storm": reset_storm_curve(result),
    }


def format_scaling(result: ScalingResult) -> str:
    """Terminal table: one row per sweep cell, then the storm curve."""
    table_rows = []
    for row in result.rows:
        vr_total = sum(row.vid_reset_cycles.values())
        table_rows.append([
            row.preset, f"{row.sockets}x{row.num_cores // row.sockets}",
            row.workload, row.system, f"{row.cycles:,}",
            row.committed, row.aborted, row.vid_resets,
            f"{vr_total:,}", "ok" if row.correct else "WRONG",
        ])
    table = format_table(
        ["preset", "shape", "workload", "system", "cycles", "commits",
         "aborts", "resets", "reset cycles", "semantics"],
        table_rows,
        title=f"Topology scaling sweep (scale {result.scale}, "
              f"placement {result.placement})")
    lines = [table, "", "VID-reset storm (hmtx):"]
    for workload, points in sorted(reset_storm_curve(result).items()):
        for point in points:
            per_socket = ", ".join(
                f"s{socket}={cycles:,}" for socket, cycles
                in point["vid_reset_cycles_by_socket"].items())
            lines.append(
                f"  {workload:<12} {point['preset']:<7} "
                f"{point['num_cores']:>4} cores: "
                f"{point['vid_resets']} resets, "
                f"{point['vid_reset_cycles_total']:,} quiesce cycles"
                + (f" ({per_socket})" if per_socket else ""))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI (dispatched from repro.__main__ as ``python -m repro scaling``)
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scaling",
        description="Sweep topology presets x backends x workloads; "
                    "emit the VID-reset-storm scaling report")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="sweep-engine worker processes; the report "
                             "is byte-identical for every value")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 2-socket x 8-core machine, "
                             "reduced workload set, scale 0.25")
    parser.add_argument("--presets", default=None,
                        help="comma-separated preset names (default "
                             f"{','.join(SCALING_PRESETS)})")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names (default "
                             f"{','.join(SCALING_WORKLOADS)})")
    parser.add_argument("--systems", default=None,
                        help="comma-separated system labels (default "
                             f"{','.join(SCALING_SYSTEMS)})")
    parser.add_argument("--placement", default="pack",
                        choices=["pack", "spread"],
                        help="thread placement policy (default pack)")
    parser.add_argument("--survivor", default=None,
                        help="also replay one svc survivor JSON "
                             "(svc-survivor:<path>) on the first "
                             "multi-socket preset under hmtx")
    parser.add_argument("--output", default=_DEFAULT_OUTPUT,
                        help=f"report file (default {_DEFAULT_OUTPUT})")
    parser.add_argument("--history", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="append the sweep's obs digests to the "
                             "cross-run history store (default dir "
                             ".obs-history when no DIR given)")
    args = parser.parse_args(argv)

    if args.quick:
        presets = ("table2", "2s8c")
        workloads = QUICK_WORKLOADS
        scale = 0.25 if args.scale == 1.0 else args.scale
    else:
        presets = SCALING_PRESETS
        workloads = SCALING_WORKLOADS
        scale = args.scale
    if args.presets:
        presets = tuple(args.presets.split(","))
    if args.workloads:
        workloads = tuple(args.workloads.split(","))
    systems = tuple(args.systems.split(",")) if args.systems \
        else SCALING_SYSTEMS

    engine = SweepEngine(jobs=args.jobs)
    start = time.perf_counter()  # lint-ok: RL008 (terminal progress line only; never enters the report)
    result = run_scaling(scale=scale, presets=presets, systems=systems,
                         workloads=workloads, placement=args.placement,
                         jobs=args.jobs, engine=engine)
    report = scaling_report(result)

    if args.survivor:
        multi = next((p for p in presets if not resolve_preset(p).flat),
                     presets[-1])
        machine = scaling_machine(multi, args.placement)
        record = engine.run_one(RunRequest(
            workload=f"svc-survivor:{args.survivor}", system="hmtx",
            scale=1.0, machine=machine, observe=True))
        report["survivor_replay"] = {
            "workload": record.workload,
            "preset": multi,
            "cycles": record.cycles,
            "committed": record.committed,
            "aborted": record.aborted,
            "correct": record.correct,
            "vid_resets": (record.obs_digest or {}).get("vid_resets", 0),
        }
        if not record.correct:
            print(f"survivor replay on {multi} broke sequential "
                  f"semantics: {args.survivor}", file=sys.stderr)
            return 1

    if args.history is not None:
        from ..obs.history import DEFAULT_ROOT, HistoryStore  # lint-ok: RL005 (history is opt-in; keeps the obs store out of default sweeps)
        store = HistoryStore(args.history or DEFAULT_ROOT)
        appended = store.append_runs(engine.observed_pairs,
                                     source="scaling")
        print(f"history: generation {appended['generation']} at "
              f"{store.root} ({appended['runs']} run(s), "
              f"{appended['new_digests']} new digest(s))")

    wall = time.perf_counter() - start  # lint-ok: RL008 (wall time is printed to the terminal only; the report written below is cycle-pure)
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(format_scaling(result))
    print(f"\nwrote {output} ({wall:.1f}s at scale {scale}, "
          f"jobs {args.jobs})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
