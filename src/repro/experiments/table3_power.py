"""Table 3: area, power, and energy on the simulated 4-core machine.

Rows (as in the paper): {Sequential, SMTX min-R/W} on commodity hardware,
and {Sequential, SMTX, HMTX max-R/W} on hardware with the HMTX extensions.
"All" averages the full suite, "Comp." only the 6 SMTX-comparable
benchmarks.  Energies are reported for the *scaled* simulated runs, so the
meaningful comparisons are the ratios (HMTX uses less energy than SMTX
because it finishes sooner; HMTX hardware adds ~1% to software that never
uses it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..power import McPatModel, PowerReport
from ..smtx import ValidationMode
from ..workloads.suite import BENCHMARK_NAMES, SMTX_COMPARABLE
from .engine import SweepSpec
from .reporting import BenchmarkRunner, format_table, geomean

#: Paper Table 3 reference points.
PAPER_AREA_COMMODITY = 107.1
PAPER_AREA_HMTX = 111.1
PAPER_LEAK_COMMODITY = 5.515
PAPER_LEAK_HMTX = 5.607


@dataclass
class Table3Result:
    area_commodity: float
    area_hmtx: float
    leakage_commodity: float
    leakage_hmtx: float
    #: label -> geomean PowerReport over the row's benchmark set.
    rows: Dict[str, PowerReport]


def _geomean_report(label: str, reports: List[PowerReport]) -> PowerReport:
    return PowerReport(
        label=label,
        area_mm2=reports[0].area_mm2,
        leakage_w=reports[0].leakage_w,
        dynamic_w=geomean(r.dynamic_w for r in reports),
        seconds=geomean(r.seconds for r in reports),
    )


def table3_spec(runner: BenchmarkRunner) -> SweepSpec:
    """Every run Table 3 needs, in report order."""
    requests: list = []
    for name in BENCHMARK_NAMES:
        requests.append(runner.request(name, "sequential"))
        requests.append(runner.request(name, "hmtx"))
        if name in SMTX_COMPARABLE:
            requests.append(runner.request(name, "smtx-minimal"))
    return SweepSpec("table3", tuple(requests))


def run_table3(scale: float = 1.0,
               runner: Optional[BenchmarkRunner] = None) -> Table3Result:
    """Regenerate Table 3 from the Figure 8 runs plus the power model."""
    runner = runner or BenchmarkRunner(scale=scale)
    runner.engine.run_spec(table3_spec(runner))
    commodity = McPatModel(hmtx_extensions=False)
    extended = McPatModel(hmtx_extensions=True)

    def reports(kind: str, names, model: McPatModel) -> List[PowerReport]:
        out = []
        for name in names:
            if kind == "sequential":
                profile = runner.sequential(name).power_profile()
            elif kind == "smtx":
                profile = runner.smtx(name, ValidationMode.MINIMAL) \
                    .power_profile(commit_process=True)
            else:
                profile = runner.hmtx(name).power_profile(hmtx_active=True)
            out.append(model.report(name, profile))
        return out

    rows = {
        "Commodity / Sequential (All)": _geomean_report(
            "Sequential (All)", reports("sequential", BENCHMARK_NAMES, commodity)),
        "Commodity / Sequential (Comp.)": _geomean_report(
            "Sequential (Comp.)", reports("sequential", SMTX_COMPARABLE, commodity)),
        "Commodity / SMTX, Min R/W": _geomean_report(
            "SMTX, Min R/W", reports("smtx", SMTX_COMPARABLE, commodity)),
        "HMTX-hw / Sequential (All)": _geomean_report(
            "Sequential (All)", reports("sequential", BENCHMARK_NAMES, extended)),
        "HMTX-hw / Sequential (Comp.)": _geomean_report(
            "Sequential (Comp.)", reports("sequential", SMTX_COMPARABLE, extended)),
        "HMTX-hw / SMTX, Min R/W": _geomean_report(
            "SMTX, Min R/W", reports("smtx", SMTX_COMPARABLE, extended)),
        "HMTX-hw / HMTX, Max R/W (All)": _geomean_report(
            "HMTX, Max R/W (All)", reports("hmtx", BENCHMARK_NAMES, extended)),
        "HMTX-hw / HMTX, Max R/W (Comp.)": _geomean_report(
            "HMTX, Max R/W (Comp.)", reports("hmtx", SMTX_COMPARABLE, extended)),
    }
    return Table3Result(
        area_commodity=commodity.total_area(),
        area_hmtx=extended.total_area(),
        leakage_commodity=commodity.leakage(),
        leakage_hmtx=extended.leakage(),
        rows=rows,
    )


def format_table3(result: Table3Result) -> str:
    table_rows = []
    for label, report in result.rows.items():
        table_rows.append([
            label,
            f"{report.area_mm2:.1f}",
            f"{report.leakage_w:.3f}",
            f"{report.dynamic_w:.2f}",
            f"{report.energy_j * 1e6:.2f}",
        ])
    table = format_table(
        ["hardware / exec model", "area (mm^2)", "leakage (W)",
         "geomean dynamic (W)", "geomean energy (uJ, scaled runs)"],
        table_rows,
        title="Table 3: area, power, energy (simulated 4-core machine)")
    paper = (f"paper areas: {PAPER_AREA_COMMODITY} -> {PAPER_AREA_HMTX} mm^2; "
             f"leakage {PAPER_LEAK_COMMODITY} -> {PAPER_LEAK_HMTX} W")
    return f"{table}\n{paper}"
