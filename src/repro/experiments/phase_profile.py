"""Phase breakdown of simulator wall time (``python -m repro bench --profile``).

Answers "where do the simulator's wall-clock seconds actually go?" without
guessing from cProfile output: the named protocol phases — bus snoops
(:meth:`MemoryHierarchy._fetch`), S-S scrubs and VID-reset scrubs
(:meth:`MemoryHierarchy._scrub_ss_copies` / :meth:`VersionedCache.vid_reset`),
epoch-gated lazy commit/abort folds (:meth:`VersionedCache._process_bucket`),
the protocol hit path (:meth:`MemoryHierarchy._access`) and the scheduler's
run loop (:meth:`Scheduler.run`) — are wrapped with ``time.perf_counter_ns``
accounting for the duration of one bench pass.

Accounting is **exclusive** per phase: a call stack tracks nesting, so a
nanosecond spent inside a lazy fold reached from ``_access`` is charged to
``lazy-fold``, not double-counted under ``access`` and ``scheduler``.  The
wrappers are installed on the *classes* (and removed afterwards), so the
production fast paths — which only deoptimise on instance-level wrappers —
keep running exactly as benchmarked.

Caveat: the wrappers themselves cost ~0.2µs per wrapped call, which inflates
absolute wall times (most visibly for ``access``, the hottest entry point).
The *shares* are the signal; profiled walls are never written to the
committed bench artifacts.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

from ..coherence.cache import VersionedCache
from ..coherence.hierarchy import MemoryHierarchy
from ..runtime.scheduler import Scheduler

#: Phase display order.  ``scheduler`` is everything inside the run loop
#: not claimed by a protocol phase — including the workload generators it
#: resumes; ``other`` (derived, not measured) is time outside the run
#: loop: workload construction, system setup, result validation.
PHASES = ("scheduler", "access", "snoop", "scrub", "lazy-fold")


class PhaseProfiler:
    """Exclusive-time phase accounting over the simulator's entry points."""

    def __init__(self) -> None:
        self.ns: Dict[str, int] = {phase: 0 for phase in PHASES}
        self.calls: Dict[str, int] = {phase: 0 for phase in PHASES}
        self._stack: List[List] = []
        self._patches: List[Tuple[type, str, Callable]] = []

    def _wrap(self, phase: str, func: Callable) -> Callable:
        ns = self.ns
        calls = self.calls
        stack = self._stack
        perf = time.perf_counter_ns

        def wrapper(*args, **kwargs):
            start = perf()
            frame = [0]  # child time to subtract (exclusive accounting)
            stack.append(frame)
            try:
                return func(*args, **kwargs)
            finally:
                elapsed = perf() - start
                stack.pop()
                ns[phase] += elapsed - frame[0]
                calls[phase] += 1
                if stack:
                    stack[-1][0] += elapsed

        wrapper.__name__ = getattr(func, "__name__", phase)
        return wrapper

    def install(self) -> "PhaseProfiler":
        """Patch the phase entry points at class level (idempotent-safe:
        call :meth:`uninstall` before installing again)."""
        points = [
            (Scheduler, "run", "scheduler"),
            (MemoryHierarchy, "_access", "access"),
            (MemoryHierarchy, "_fetch", "snoop"),
            (MemoryHierarchy, "_scrub_ss_copies", "scrub"),
            (VersionedCache, "vid_reset", "scrub"),
            (VersionedCache, "_process_bucket", "lazy-fold"),
        ]
        for owner, name, phase in points:
            original = owner.__dict__[name]
            self._patches.append((owner, name, original))
            setattr(owner, name, self._wrap(phase, original))
        return self

    def uninstall(self) -> None:
        while self._patches:
            owner, name, original = self._patches.pop()
            setattr(owner, name, original)

    def report(self, wall_seconds: float) -> Dict:
        """JSON-ready breakdown; ``other`` absorbs un-wrapped time."""
        wall_ns = max(1, int(wall_seconds * 1e9))
        phases = {}
        accounted = 0
        for phase in PHASES:
            phase_ns = self.ns[phase]
            accounted += phase_ns
            phases[phase] = {
                "seconds": round(phase_ns / 1e9, 4),
                "share": round(phase_ns / wall_ns, 4),
                "calls": self.calls[phase],
            }
        other = max(0, wall_ns - accounted)
        phases["other"] = {"seconds": round(other / 1e9, 4),
                           "share": round(other / wall_ns, 4),
                           "calls": 0}
        return {"wall_seconds": round(wall_seconds, 4), "phases": phases}


def format_profile(report: Dict) -> str:
    lines = ["phase breakdown (exclusive wall time; wrapper overhead "
             "inflates absolute numbers — read the shares)"]
    lines.append(f"{'phase':<12} {'seconds':>9} {'share':>7} {'calls':>10}")
    for phase, row in report["phases"].items():
        lines.append(f"{phase:<12} {row['seconds']:>9.3f} "
                     f"{row['share']:>6.1%} {row['calls']:>10,}")
    lines.append(f"{'wall':<12} {report['wall_seconds']:>9.3f}")
    return "\n".join(lines)
