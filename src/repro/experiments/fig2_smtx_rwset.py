"""Figure 2: SMTX whole-program speedup, minimal vs. substantial R/W sets.

The motivating figure: with expert-minimal validation sets SMTX ekes out
modest whole-program speedups; adding validation to shared-data accesses
(what realistic automatic parallelisation would need) turns them into
substantial slowdowns.  Whole-program numbers are the hot-loop speedups
Amdahl-projected through Table 1's hot-loop fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..smtx import ValidationMode, smtx_whole_program_speedup
from ..workloads.suite import SMTX_COMPARABLE
from .engine import SweepSpec
from .reporting import BenchmarkRunner, format_table, geomean


@dataclass
class Fig2Row:
    benchmark: str
    minimal_whole_program: float
    substantial_whole_program: float
    minimal_hot_loop: float
    substantial_hot_loop: float


@dataclass
class Fig2Result:
    rows: Dict[str, Fig2Row]
    geomean_minimal: float
    geomean_substantial: float


def fig2_spec(runner: BenchmarkRunner) -> SweepSpec:
    """Every run Figure 2 needs, in report order."""
    requests: list = []
    for name in SMTX_COMPARABLE:
        requests.append(runner.request(name, "sequential"))
        requests.append(runner.request(name, "smtx-minimal"))
        requests.append(runner.request(name, "smtx-substantial"))
    return SweepSpec("fig2", tuple(requests))


def run_fig2(scale: float = 1.0,
             runner: Optional[BenchmarkRunner] = None) -> Fig2Result:
    """Regenerate Figure 2 (the 6 SMTX-evaluated benchmarks)."""
    runner = runner or BenchmarkRunner(scale=scale)
    runner.engine.run_spec(fig2_spec(runner))
    rows: Dict[str, Fig2Row] = {}
    for name in SMTX_COMPARABLE:
        seq = runner.sequential(name)
        minimal = runner.smtx(name, ValidationMode.MINIMAL)
        substantial = runner.smtx(name, ValidationMode.SUBSTANTIAL)
        hot_min = seq.cycles / minimal.cycles
        hot_sub = seq.cycles / substantial.cycles
        # RunRecord carries the workload's hot-loop fraction, which is all
        # the Amdahl projection reads.
        rows[name] = Fig2Row(
            benchmark=name,
            minimal_hot_loop=hot_min,
            substantial_hot_loop=hot_sub,
            minimal_whole_program=smtx_whole_program_speedup(minimal, hot_min),
            substantial_whole_program=smtx_whole_program_speedup(minimal, hot_sub),
        )
    return Fig2Result(
        rows=rows,
        geomean_minimal=geomean(r.minimal_whole_program for r in rows.values()),
        geomean_substantial=geomean(
            r.substantial_whole_program for r in rows.values()),
    )


def format_fig2(result: Fig2Result) -> str:
    table_rows = [
        [name, f"{row.minimal_whole_program:.2f}x",
         f"{row.substantial_whole_program:.2f}x"]
        for name, row in result.rows.items()
    ]
    table_rows.append(["geomean", f"{result.geomean_minimal:.2f}x",
                       f"{result.geomean_substantial:.2f}x"])
    return format_table(
        ["benchmark", "minimal R/W set", "substantial R/W set"],
        table_rows,
        title="Figure 2: SMTX whole-program speedup over sequential")
