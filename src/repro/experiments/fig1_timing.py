"""Figure 1: execution-timing comparison of the parallelisation paradigms.

Runs the motivating linked-list loop under Sequential, DOACROSS, DSWP and
PS-DSWP and reports each paradigm's cycles and speedup — the quantitative
form of Figure 1's timing diagrams.  The expected shape (section 2.1):

* DOACROSS suffers the inter-core latency on every iteration;
* DSWP pays it once (pipeline fill) and beats DOACROSS, but tops out at
  two useful threads;
* PS-DSWP replicates the parallel stage and wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import MachineConfig
from ..runtime.paradigms import run_doacross, run_dswp, run_ps_dswp, run_sequential
from ..workloads.linkedlist import LinkedListWorkload
from .reporting import format_table


@dataclass
class Fig1Result:
    cycles: Dict[str, int]
    speedups: Dict[str, float]
    queue_latency: int


def run_fig1(nodes: int = 48, work_cycles: int = 400,
             config: Optional[MachineConfig] = None) -> Fig1Result:
    """Regenerate Figure 1's paradigm comparison."""
    config = config or MachineConfig()

    def fresh() -> LinkedListWorkload:
        return LinkedListWorkload(nodes=nodes, work_cycles=work_cycles)

    runs = {
        "Sequential": run_sequential(fresh(), config),
        "DOACROSS": run_doacross(fresh(), config, workers=2),
        "DSWP": run_dswp(fresh(), config),
        "PS-DSWP": run_ps_dswp(fresh(), config),
    }
    sequential = runs["Sequential"].cycles
    return Fig1Result(
        cycles={k: r.cycles for k, r in runs.items()},
        speedups={k: sequential / r.cycles for k, r in runs.items()},
        queue_latency=config.queue_latency,
    )


def format_fig1(result: Fig1Result) -> str:
    rows = [
        [name, f"{cycles:,}", f"{result.speedups[name]:.2f}x"]
        for name, cycles in result.cycles.items()
    ]
    return format_table(
        ["paradigm", "hot-loop cycles", "speedup"],
        rows,
        title=(f"Figure 1: paradigm timing on the linked-list loop "
               f"(inter-core latency {result.queue_latency} cycles)"))
