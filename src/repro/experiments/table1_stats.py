"""Table 1: per-benchmark statistics from speculative execution.

Columns: parallel paradigm, hot-loop native time %, average speculative
memory accesses per transaction, aborts avoided via SLA per transaction,
% of speculative loads needing an SLA, % branch instructions, and branch
misprediction rate inside the hot loop.

Scale note: accesses/TX and avoided-aborts/TX scale with transaction size
(~1000x smaller here than native); the paradigm, hot-loop %, SLA %, branch
mix and mispredict columns are scale-free.  EXPERIMENTS.md discusses each
column's paper-vs-measured agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..workloads.suite import BENCHMARK_NAMES, PAPER_TABLE1, Table1Row
from .engine import SweepSpec
from .reporting import BenchmarkRunner, format_table


@dataclass
class MeasuredRow:
    benchmark: str
    paradigm: str
    hot_loop_pct: float
    spec_accesses_per_tx: float
    aborts_avoided_per_tx: float
    sla_pct_of_loads: float
    branch_pct: float
    mispredict_pct: float
    #: Abort breakdown by txctl cause ("-" when the run never aborted);
    #: no paper column exists — the paper reports only totals per figure.
    aborts_by_cause: str = "-"


@dataclass
class Table1Result:
    measured: Dict[str, MeasuredRow]
    paper: Dict[str, Table1Row]


def table1_spec(runner: BenchmarkRunner) -> SweepSpec:
    """Every run Table 1 needs, in report order."""
    requests: list = []
    for name in BENCHMARK_NAMES:
        requests.append(runner.request(name, "hmtx"))
        requests.append(runner.request(name, "sequential"))
    return SweepSpec("table1", tuple(requests))


def run_table1(scale: float = 1.0,
               runner: Optional[BenchmarkRunner] = None) -> Table1Result:
    """Regenerate Table 1 from HMTX (max-validation) runs."""
    runner = runner or BenchmarkRunner(scale=scale)
    runner.engine.run_spec(table1_spec(runner))
    measured: Dict[str, MeasuredRow] = {}
    for name in BENCHMARK_NAMES:
        record = runner.hmtx(name)
        # Branch mix comes from the dedicated parallel run's executor; the
        # runner builds one CoreExecutor per run, but stats are per-system:
        # re-derive from the sequential run for an apples-to-apples mix.
        seq = runner.sequential(name)
        measured[name] = MeasuredRow(
            benchmark=name,
            paradigm=record.paradigm,
            hot_loop_pct=100.0 * record.hot_loop_fraction,
            spec_accesses_per_tx=record.avg_spec_accesses_per_tx,
            aborts_avoided_per_tx=record.avoided_aborts_per_tx,
            sla_pct_of_loads=100.0 * record.sla_fraction_of_spec_loads,
            branch_pct=100.0 * seq.branch_fraction,
            mispredict_pct=100.0 * seq.mispredict_rate,
            aborts_by_cause=record.cause_summary,
        )
    return Table1Result(measured=measured, paper=dict(PAPER_TABLE1))


def format_table1(result: Table1Result) -> str:
    rows = []
    for name, m in result.measured.items():
        p = result.paper[name]
        rows.append([
            name,
            m.paradigm,
            f"{m.hot_loop_pct:.1f}%",
            f"{m.spec_accesses_per_tx:,.0f} ({p.spec_accesses_per_tx:,.0f})",
            f"{m.aborts_avoided_per_tx:.3f} ({p.aborts_avoided_per_tx})",
            f"{m.sla_pct_of_loads:.2f}% ({p.sla_pct_of_loads}%)",
            f"{m.branch_pct:.1f}% ({p.branch_pct}%)",
            f"{m.mispredict_pct:.2f}% ({p.mispredict_pct}%)",
            m.aborts_by_cause,
        ])
    return format_table(
        ["benchmark", "paradigm", "hot loop", "spec acc/TX (paper)",
         "SLA-avoided/TX (paper)", "% loads SLA (paper)",
         "% branches (paper)", "mispredict (paper)", "aborts by cause"],
        rows,
        title="Table 1: speculative-execution statistics (measured vs paper)")
