"""Experiment drivers: regenerate every table and figure of the evaluation.

============  =====================================  =====================
artifact      driver                                 bench target
============  =====================================  =====================
Figure 1      :func:`run_fig1` / :func:`format_fig1`  benchmarks/test_fig1
Figure 2      :func:`run_fig2` / :func:`format_fig2`  benchmarks/test_fig2
Figure 5      :func:`run_fig5` / :func:`format_fig5`  tests/core/test_fig5
Figure 8      :func:`run_fig8` / :func:`format_fig8`  benchmarks/test_fig8
Figure 9      :func:`run_fig9` / :func:`format_fig9`  benchmarks/test_fig9
Table 1       :func:`run_table1` / ``format_table1``  benchmarks/test_table1
Table 3       :func:`run_table3` / ``format_table3``  benchmarks/test_table3
============  =====================================  =====================
"""

from .bench import check_regression, format_bench, run_bench, write_report
from .contention_sweep import (
    ContentionSweepResult,
    contention_spec,
    format_contention_sweep,
    run_contention_sweep,
)
from .engine import (
    RunRecord,
    RunRequest,
    SweepEngine,
    SweepSpec,
    execute_request,
)
from .fig1_timing import Fig1Result, format_fig1, run_fig1
from .fig2_smtx_rwset import Fig2Result, format_fig2, run_fig2
from .fig5_walkthrough import WalkStep, format_fig5, run_fig5
from .fig8_speedup import Fig8Result, format_fig8, run_fig8
from .fig9_setsizes import Fig9Result, format_fig9, run_fig9
from .reporting import BenchmarkRunner, format_table, geomean
from .statsdump import collect_stats, format_stats, stats_report
from .table1_stats import Table1Result, format_table1, run_table1
from .table3_power import Table3Result, format_table3, run_table3

__all__ = [
    "BenchmarkRunner",
    "ContentionSweepResult",
    "RunRecord",
    "RunRequest",
    "SweepEngine",
    "SweepSpec",
    "contention_spec",
    "execute_request",
    "Fig1Result",
    "Fig2Result",
    "Fig8Result",
    "Fig9Result",
    "Table1Result",
    "Table3Result",
    "WalkStep",
    "format_contention_sweep",
    "format_fig1",
    "format_fig2",
    "format_fig5",
    "format_fig8",
    "format_fig9",
    "format_table",
    "collect_stats",
    "format_stats",
    "stats_report",
    "format_table1",
    "format_table3",
    "geomean",
    "run_contention_sweep",
    "run_fig1",
    "run_fig2",
    "run_fig5",
    "run_fig8",
    "run_fig9",
    "run_table1",
    "run_table3",
    "check_regression",
    "format_bench",
    "run_bench",
    "write_report",
]
