"""Wall-clock benchmark harness for the simulator's hot path.

Unlike every other driver in this package — which reports *simulated*
metrics (cycles, speedups, set sizes) — this one measures the simulator
itself: how many wall-clock seconds the Figure 8 suite and the contended
workloads take to run, and the resulting simulated-ops-per-second and
memory-accesses-per-second throughput.  It exists to keep the fast-path
layer (DESIGN.md, "Fast-path indexing") honest: the layer is worthless if
it stops being fast, and dangerous if anyone "optimises" it into changed
behaviour — the golden equivalence suite guards the latter, this harness
the former.

Usage::

    python -m repro bench                 # full run, writes BENCH_hotpath.json
    python -m repro bench --quick         # reduced scale (CI perf smoke)
    python -m repro bench --quick --check # fail on >30% ops/sec regression

The output file keeps one section per mode (``full``/``quick``), so a quick
CI run refreshes its own section without clobbering the committed full-run
numbers.  ``--check`` compares the fresh measurement against the same-mode
section of the committed baseline file *before* overwriting it.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..workloads.contended import CapacityHogWorkload
from ..workloads.suite import BENCHMARK_NAMES
from .engine import RunRecord, RunRequest, SweepEngine, SweepSpec

#: Pre-PR baseline: wall-clock seconds for the full-scale Figure 8 suite
#: under the seed (pre-fast-path) simulator, measured on the machine that
#: produced the committed ``BENCH_hotpath.json`` (best of 3).  The fast-path
#: acceptance bar is >= 3x against this number.
PRE_FASTPATH_FIG8_WALL_SECONDS = 3.65

#: Default output/baseline file, at the repository root when run from there.
DEFAULT_OUTPUT = "BENCH_hotpath.json"

#: CI regression tolerance: fail when measured ops/sec drops more than this
#: fraction below the committed same-mode baseline.
DEFAULT_TOLERANCE = 0.30

_QUICK_SCALE = 0.25


def bench_spec(quick: bool) -> SweepSpec:
    """(group-tagged) requests; group 'fig8' feeds the speedup gate.

    ``calibrated=False`` preserves the harness's historical timing basis
    (no calibrated branch-mix executor); the contended workloads always
    run at full size so their numbers stay mode-comparable.
    """
    scale = _QUICK_SCALE if quick else 1.0
    requests: List[RunRequest] = [
        RunRequest(workload=name, system="hmtx", scale=scale,
                   calibrated=False)
        for name in BENCHMARK_NAMES
    ]
    requests.append(RunRequest(
        workload="contended-list", system="hmtx", paradigm="PS-DSWP",
        policy="backoff", calibrated=False))
    requests.append(RunRequest(
        workload="capacity-hog", system="hmtx", paradigm="PS-DSWP",
        policy="capacity-aware", machine=CapacityHogWorkload.tiny_config(),
        calibrated=False))
    return SweepSpec("bench", tuple(requests))


def _group_of(request: RunRequest) -> str:
    return "contended" if request.workload in ("contended-list",
                                               "capacity-hog") else "fig8"


def _best_of(engine: SweepEngine, request: RunRequest,
             repeat: int) -> Tuple[float, RunRecord]:
    """Best-of-``repeat`` wall time; the record of the first run.

    Repeats are distinct requests (the ``repeat`` tag busts the engine
    cache) so each one is a fresh simulation with its own wall clock.
    """
    tagged = [replace(request, repeat=k) for k in range(max(1, repeat))]
    records = engine.run(tagged)
    return min(r.wall_seconds for r in records), records[0]


def run_bench(quick: bool = False, repeat: int = 1,
              jobs: int = 1, engine: Optional[SweepEngine] = None) -> Dict:
    """Run the suite and return one mode section of the report."""
    engine = engine or SweepEngine(jobs=jobs)
    workloads: Dict[str, Dict] = {}
    for request in bench_spec(quick).requests:
        wall, record = _best_of(engine, request, repeat)
        ops = record.ops_executed
        accesses = record.l1_accesses
        workloads[request.workload] = {
            "group": _group_of(request),
            "wall_seconds": round(wall, 4),
            "simulated_cycles": record.cycles,
            "ops_executed": ops,
            "accesses": accesses,
            "sim_ops_per_sec": round(ops / wall) if wall > 0 else None,
            "accesses_per_sec": round(accesses / wall) if wall > 0 else None,
        }
    def _total(key: str, group: Optional[str] = None) -> float:
        return sum(w[key] for w in workloads.values()
                   if group is None or w["group"] == group)
    wall = _total("wall_seconds")
    ops = _total("ops_executed")
    accesses = _total("accesses")
    fig8_wall = _total("wall_seconds", "fig8")
    section = {
        "mode": "quick" if quick else "full",
        "scale": _QUICK_SCALE if quick else 1.0,
        "repeat": repeat,
        "workloads": workloads,
        "totals": {
            "wall_seconds": round(wall, 4),
            "ops_executed": ops,
            "accesses": accesses,
            "ops_per_sec": round(ops / wall) if wall > 0 else None,
            "accesses_per_sec": round(accesses / wall) if wall > 0 else None,
            "fig8_wall_seconds": round(fig8_wall, 4),
            "fig8_ops_per_sec": round(_total("ops_executed", "fig8")
                                      / fig8_wall) if fig8_wall > 0 else None,
        },
    }
    if not quick:
        section["fig8_speedup_vs_baseline"] = round(
            PRE_FASTPATH_FIG8_WALL_SECONDS / fig8_wall, 2) \
            if fig8_wall > 0 else None
    return section


def check_regression(section: Dict, baseline_path: pathlib.Path,
                     tolerance: float = DEFAULT_TOLERANCE) -> Tuple[bool, str]:
    """Compare a fresh mode section against the committed baseline file.

    Returns ``(ok, message)``.  A missing baseline (or missing same-mode
    section) passes with a warning: there is nothing to regress against.
    """
    if not baseline_path.exists():
        return True, f"no baseline at {baseline_path}; skipping check"
    baseline = json.loads(baseline_path.read_text())
    ref = baseline.get("runs", {}).get(section["mode"])
    if ref is None:
        return True, (f"baseline {baseline_path} has no "
                      f"{section['mode']!r} section; skipping check")
    ref_rate = ref["totals"]["ops_per_sec"]
    rate = section["totals"]["ops_per_sec"]
    if not ref_rate or not rate:
        return True, "baseline or measurement lacks ops/sec; skipping check"
    floor = ref_rate * (1.0 - tolerance)
    msg = (f"{section['mode']} ops/sec: measured {rate:,}, baseline "
           f"{ref_rate:,}, floor {floor:,.0f} (-{tolerance:.0%})")
    if rate < floor:
        return False, "REGRESSION: " + msg
    return True, "OK: " + msg


def write_report(section: Dict, output: pathlib.Path) -> Dict:
    """Merge ``section`` into the report file, keeping other modes."""
    data: Dict = {}
    if output.exists():
        try:
            data = json.loads(output.read_text())
        except ValueError:
            data = {}
    data.setdefault("schema", "hmtx-hotpath-bench/1")
    data["python"] = platform.python_version()
    data["baseline"] = {
        "fig8_wall_seconds": PRE_FASTPATH_FIG8_WALL_SECONDS,
        "description": "full-scale Figure 8 suite under the pre-fast-path "
                       "seed simulator, same machine as the committed "
                       "full-mode numbers (best of 3)",
    }
    data.setdefault("runs", {})[section["mode"]] = section
    output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def format_bench(section: Dict) -> str:
    lines = [f"hot-path bench ({section['mode']} mode, "
             f"scale {section['scale']}, best of {section['repeat']})"]
    lines.append(f"{'workload':<16} {'wall s':>8} {'sim cycles':>13} "
                 f"{'ops/s':>12} {'acc/s':>12}")
    for name, w in section["workloads"].items():
        lines.append(
            f"{name:<16} {w['wall_seconds']:>8.3f} "
            f"{w['simulated_cycles']:>13,} {w['sim_ops_per_sec']:>12,} "
            f"{w['accesses_per_sec']:>12,}")
    totals = section["totals"]
    lines.append(
        f"{'TOTAL':<16} {totals['wall_seconds']:>8.3f} {'':>13} "
        f"{totals['ops_per_sec']:>12,} {totals['accesses_per_sec']:>12,}")
    lines.append(
        f"fig8 suite wall: {totals['fig8_wall_seconds']:.3f}s "
        f"(pre-fast-path baseline "
        f"{PRE_FASTPATH_FIG8_WALL_SECONDS:.2f}s)")
    speedup = section.get("fig8_speedup_vs_baseline")
    if speedup is not None:
        lines.append(f"fig8 speedup vs baseline: {speedup:.2f}x")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="measure simulator wall-clock throughput "
                    "(Figure 8 suite + contended workloads)")
    parser.add_argument("--quick", action="store_true",
                        help=f"reduced scale ({_QUICK_SCALE}) for CI smoke")
    parser.add_argument("--repeat", type=int, default=1,
                        help="best-of-N wall-clock per workload (default 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="sweep-engine worker processes (default 1; "
                             "parallel workers contend for CPU, so keep 1 "
                             "when the wall numbers matter)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"report file (default {DEFAULT_OUTPUT})")
    parser.add_argument("--baseline", default=None,
                        help="baseline file for --check "
                             "(default: the output file before rewriting)")
    parser.add_argument("--check", action="store_true",
                        help="fail when ops/sec regresses more than "
                             "--tolerance below the committed baseline")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional ops/sec regression "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--history", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="after timing, rerun the suite observed and "
                             "append the obs digests to the cross-run "
                             "history store (default dir .obs-history "
                             "when no DIR given)")
    parser.add_argument("--profile", action="store_true",
                        help="print a snoop/scrub/lazy-fold/scheduler phase "
                             "breakdown of wall time; the (wrapper-inflated) "
                             "measurements are NOT written to the report")
    args = parser.parse_args(argv)

    if args.profile:
        from .phase_profile import PhaseProfiler, format_profile  # lint-ok: RL005 (profiling-only stack, loaded on --profile alone)
        # Wrappers live in this process only, so the run must be serial;
        # a single pass keeps the phase totals and the wall denominator
        # describing the same runs (best-of-N would not).
        profiler = PhaseProfiler().install()
        try:
            section = run_bench(quick=args.quick, repeat=1, jobs=1)
        finally:
            profiler.uninstall()
        print(format_bench(section))
        print()
        print(format_profile(
            profiler.report(section["totals"]["wall_seconds"])))
        print("(profiled walls are wrapper-inflated; report not written)")
        return 0

    engine = SweepEngine(jobs=args.jobs)
    section = run_bench(quick=args.quick, repeat=args.repeat,
                        jobs=args.jobs, engine=engine)
    history_note = None
    if args.history is not None:
        # Observed runs happen *after* every timed one, so attaching the
        # profiler cannot perturb the wall numbers above.
        from ..obs.history import DEFAULT_ROOT, HistoryStore  # lint-ok: RL005 (history is opt-in; keeps the obs store off the timing path)
        observed = [replace(r, observe=True)
                    for r in bench_spec(args.quick).requests]
        engine.run(observed)
        store = HistoryStore(args.history or DEFAULT_ROOT)
        appended = store.append_runs(engine.observed_pairs, source="bench")
        history_note = (f"history: generation {appended['generation']} at "
                        f"{store.root} ({appended['runs']} run(s), "
                        f"{appended['new_digests']} new digest(s))")
    output = pathlib.Path(args.output)
    baseline = pathlib.Path(args.baseline) if args.baseline else output
    ok, message = (True, "")
    if args.check:
        # Read the committed baseline before the merge below rewrites it.
        ok, message = check_regression(section, baseline, args.tolerance)
    write_report(section, output)
    print(format_bench(section))
    print(f"wrote {output}")
    if history_note:
        print(history_note)
    if args.check:
        print(message)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
