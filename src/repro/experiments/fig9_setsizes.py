"""Figure 9: average read/write-set size per transaction in kilobytes.

Set sizes are measured at cache-line granularity (the hardware's conflict
granularity).  The paper's geomean combined set is 957 kB with 256.bzip2 by
far the largest (16,222 kB); the models run ~1/400 scale, so EXPERIMENTS.md
compares *relative* sizes (who is largest, spread between benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..workloads.suite import BENCHMARK_NAMES
from .engine import SweepSpec
from .reporting import BenchmarkRunner, format_table, geomean

#: Published Figure 9 summary points (kB per transaction).
PAPER_GEOMEAN_COMBINED_KB = 957.0
PAPER_LARGEST = ("256.bzip2", 16222.0)


@dataclass
class Fig9Row:
    benchmark: str
    read_set_kb: float
    write_set_kb: float
    combined_kb: float


@dataclass
class Fig9Result:
    rows: Dict[str, Fig9Row]
    geomean_combined_kb: float

    def largest(self) -> str:
        return max(self.rows.values(), key=lambda r: r.combined_kb).benchmark


def fig9_spec(runner: BenchmarkRunner) -> SweepSpec:
    """Every run Figure 9 needs, in report order."""
    return SweepSpec("fig9", tuple(runner.request(name, "hmtx")
                                   for name in BENCHMARK_NAMES))


def run_fig9(scale: float = 1.0,
             runner: Optional[BenchmarkRunner] = None) -> Fig9Result:
    """Regenerate Figure 9 from HMTX (max-validation) runs."""
    runner = runner or BenchmarkRunner(scale=scale)
    runner.engine.run_spec(fig9_spec(runner))
    rows: Dict[str, Fig9Row] = {}
    for name in BENCHMARK_NAMES:
        record = runner.hmtx(name)
        rows[name] = Fig9Row(
            benchmark=name,
            read_set_kb=record.avg_read_set_kb,
            write_set_kb=record.avg_write_set_kb,
            combined_kb=record.avg_combined_set_kb,
        )
    return Fig9Result(
        rows=rows,
        geomean_combined_kb=geomean(
            max(r.combined_kb, 1e-3) for r in rows.values()),
    )


def format_fig9(result: Fig9Result) -> str:
    table_rows = [
        [name, f"{row.read_set_kb:.2f}", f"{row.write_set_kb:.2f}",
         f"{row.combined_kb:.2f}"]
        for name, row in result.rows.items()
    ]
    table_rows.append(["geomean", "", "", f"{result.geomean_combined_kb:.2f}"])
    table = format_table(
        ["benchmark", "read set (kB)", "write set (kB)", "combined (kB)"],
        table_rows,
        title="Figure 9: average R/W set size per transaction (scaled runs)")
    return (f"{table}\npaper: geomean combined {PAPER_GEOMEAN_COMBINED_KB} kB; "
            f"largest {PAPER_LARGEST[0]} at {PAPER_LARGEST[1]:,.0f} kB")
