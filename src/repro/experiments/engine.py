"""Declarative sweep engine: run requests, records, parallel execution.

The experiment drivers used to each own a private run loop over
``(benchmark, system)`` pairs.  This module replaces those loops with one
declarative model:

* :class:`RunRequest` — a picklable value object naming one simulated
  run: workload, system (a backend/validation-mode label), scale,
  paradigm, contention policy, machine config.
* :class:`RunRecord` — the plain-data snapshot of one completed run:
  every metric any driver reads (cycles, stats, abort taxonomy, thread
  activity for the power model), detached from the live simulator so it
  crosses process boundaries.
* :class:`SweepSpec` — a named, ordered list of requests.
* :class:`SweepEngine` — executes requests serially or across a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs=N``), caching by
  request key.

Determinism contract (pinned by ``tests/experiments/test_engine.py`` and
the CI sweep-smoke job): results are merged in **spec order**, never
completion order, and each worker runs exactly one deterministic
simulation per request — so ``--jobs N`` output is byte-identical to
serial for every N.  Wall-clock timing is recorded per run
(``wall_seconds``) but excluded from :meth:`RunRecord.to_report`, keeping
reports diffable across machines and job counts.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..backends import backend_names
from ..core.config import MachineConfig
from ..power.mcpat import RunProfile
from ..runtime.paradigms import ParadigmResult, run_workload
from ..smtx import ValidationMode, run_smtx
from ..txctl import ContentionManager, make_policy
from ..workloads import executor_factory_for, make_workload
from ..workloads.base import Workload

#: Adversarial workloads runnable by name alongside the Table 1 suite.
CONTENDED_WORKLOADS = ("contended-list", "capacity-hog")

#: System labels with dedicated handling; any registered backend name
#: (e.g. ``"oracle"``) is also accepted verbatim.
SYSTEM_LABELS = ("sequential", "hmtx", "hmtx-nosla",
                 "smtx-minimal", "smtx-substantial", "smtx-maximal")


def config_digest(config: Optional[MachineConfig]) -> str:
    """Stable short digest of a machine config (cache-key component)."""
    if config is None:
        return "default"
    payload = repr(sorted(vars(config).items()))
    return hashlib.sha1(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class RunRequest:
    """One simulated run, as a value: what to execute, not how."""

    workload: str
    system: str = "hmtx"
    scale: float = 1.0
    paradigm: Optional[str] = None
    #: txctl retry-policy name (``repro.txctl.POLICIES``); None = default.
    policy: Optional[str] = None
    machine: Optional[MachineConfig] = None
    #: Use the benchmark's calibrated branch-mix executor (drivers do;
    #: the wall-clock bench harness historically does not).
    calibrated: bool = True
    #: Identity tag: requests differing only in ``repeat`` are distinct
    #: cache entries.  The bench harness uses this for best-of-N timing
    #: (a cached record would report the first run's wall time forever).
    repeat: int = 0
    #: Run with an :mod:`repro.obs` session attached; the record then
    #: carries the cycle-attribution digest.  Distinct cache entry from
    #: the unobserved run even though the simulation is identical.
    observe: bool = False
    #: Workload-factory keyword arguments as a sorted, hashable tuple of
    #: ``(name, value)`` pairs (build with :func:`request_options`) —
    #: how e.g. an svc seed reaches the factory through the registry.
    options: Tuple[Tuple[str, Any], ...] = ()

    def key(self) -> Tuple:
        """Cache/dedupe key; hashes the (mutable) machine config."""
        return (self.workload, self.system, self.scale, self.paradigm,
                self.policy, self.calibrated, self.repeat, self.observe,
                self.options, config_digest(self.machine))


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered batch of runs (order defines merge order)."""

    name: str
    requests: Tuple[RunRequest, ...]

    def __post_init__(self):
        object.__setattr__(self, "requests", tuple(self.requests))


@dataclass(frozen=True)
class RunRecord:
    """Plain-data snapshot of one completed run.

    Carries everything any experiment driver reads, so drivers never
    touch a live system object — records are picklable, cacheable, and
    identical whether produced in-process or by a pool worker.
    """

    workload: str
    system: str
    scale: float
    paradigm: str
    cycles: int
    recoveries: int
    committed: int
    aborted: int
    ops_executed: int
    #: Did the run preserve sequential semantics?
    correct: bool
    hot_loop_fraction: float
    # SystemStats derivatives (Table 1 / Figure 9)
    avg_spec_accesses_per_tx: float
    avoided_aborts_per_tx: float
    sla_fraction_of_spec_loads: float
    avg_read_set_kb: float
    avg_write_set_kb: float
    avg_combined_set_kb: float
    # Instruction mix from the run's core executor (Table 1)
    branch_fraction: float
    mispredict_rate: float
    # txctl contention outcome (contention sweep)
    aborts_by_cause: Dict[str, int]
    cause_summary: str
    backoff_cycles: int
    fallback_iterations: int
    degraded_serial: bool
    serial_fallback: bool
    # SMTX commit-process accounting (Table 3, Figure 2)
    commit_process_cycles: Optional[int]
    worker_cycles: Optional[int]
    validation_mode: Optional[str]
    # Activity profile inputs (Table 3 power model, bench)
    thread_clocks: Dict[Any, int]
    l1_accesses: int
    l2_accesses: int
    #: Simulator wall time for this run; excluded from reports.
    wall_seconds: float = field(compare=False)
    #: Cycle-attribution digest (``hmtx-obs-digest/1``) when the request
    #: ran observed; plain data so it crosses the pool boundary.
    obs_digest: Optional[Dict[str, Any]] = None

    def power_profile(self, commit_process: bool = False,
                      hmtx_active: bool = False) -> RunProfile:
        """Activity profile for the McPAT model (was profile_from_result)."""
        cycles = max(1, self.cycles)
        busy = {tid: min(1.0, clock / cycles)
                for tid, clock in self.thread_clocks.items()}
        if commit_process:
            commit_cycles = self.commit_process_cycles
            if commit_cycles is None:
                commit_cycles = cycles
            busy["commit"] = min(1.0, commit_cycles / cycles)
        return RunProfile(cycles=cycles, busy_fractions=busy,
                          l1_accesses=self.l1_accesses,
                          l2_accesses=self.l2_accesses,
                          hmtx_active=hmtx_active)

    def to_report(self) -> Dict[str, Any]:
        """JSON-ready dict, excluding wall-clock (the one field that is
        not deterministic across machines and job counts)."""
        data = asdict(self)
        del data["wall_seconds"]
        data["thread_clocks"] = {str(k): v
                                 for k, v in self.thread_clocks.items()}
        data["aborts_by_cause"] = dict(sorted(self.aborts_by_cause.items()))
        return data


# ----------------------------------------------------------------------
# Request execution (top-level, picklable: pool workers import this)
# ----------------------------------------------------------------------

def request_options(**options: Any) -> Tuple[Tuple[str, Any], ...]:
    """Workload-factory kwargs as the sorted tuple ``RunRequest`` wants."""
    return tuple(sorted(options.items()))


def build_workload(request: RunRequest) -> Workload:
    return make_workload(request.workload, request.scale,
                         **dict(request.options))


def _run(request: RunRequest) -> Tuple[Workload, ParadigmResult]:
    workload = build_workload(request)
    executor_factory = executor_factory_for(workload) \
        if request.calibrated else None
    manager = ContentionManager(policy=make_policy(request.policy)) \
        if request.policy else None
    kwargs: Dict[str, Any] = {}
    if request.paradigm:
        kwargs["paradigm"] = request.paradigm
    if manager is not None:
        kwargs["manager"] = manager
    system = request.system
    if system == "sequential":
        result = run_workload(workload, request.machine,
                              paradigm=request.paradigm or "Sequential",
                              executor_factory=executor_factory)
    elif system in ("hmtx", "hmtx-nosla"):
        result = run_workload(workload, request.machine,
                              sla_enabled=(system == "hmtx"),
                              executor_factory=executor_factory, **kwargs)
    elif system.startswith("smtx-"):
        mode = ValidationMode(system.split("-", 1)[1])
        result = run_smtx(workload, request.machine, mode=mode,
                          executor_factory=executor_factory, **kwargs)
    elif system in backend_names():
        result = run_workload(workload, request.machine, backend=system,
                              executor_factory=executor_factory, **kwargs)
    else:
        raise ValueError(f"unknown system {system!r}; expected one of "
                         f"{SYSTEM_LABELS} or a backend in {backend_names()}")
    return workload, result


def _cache_accesses(result: ParadigmResult) -> Tuple[int, int]:
    """L1/L2 access totals, however the backend exposes its hierarchy."""
    hier_stats = getattr(result.system.hierarchy, "stats", None)
    if hier_stats is not None and hasattr(hier_stats, "loads"):
        return (hier_stats.loads + hier_stats.stores,
                hier_stats.bus_snoops + hier_stats.memory_fetches)
    timing = getattr(result.system, "timing", None)
    if timing is not None:
        return (timing.stats.loads + timing.stats.stores,
                timing.stats.bus_snoops)
    return 0, 0


def snapshot(request: RunRequest, workload: Workload,
             result: ParadigmResult, wall_seconds: float,
             obs_digest: Optional[Dict[str, Any]] = None) -> RunRecord:
    """Freeze one live run into a plain-data :class:`RunRecord`."""
    stats = result.system.stats
    contention = stats.contention
    exec_stats = result.extra.get("exec_stats")
    l1, l2 = _cache_accesses(result)
    correct = (workload.observed_result(result.system)
               == workload.expected_result(result.system))
    return RunRecord(
        workload=request.workload,
        system=request.system,
        scale=request.scale,
        paradigm=result.paradigm,
        cycles=result.cycles,
        recoveries=result.recoveries,
        committed=stats.committed,
        aborted=stats.aborted,
        ops_executed=result.run.ops_executed,
        correct=correct,
        hot_loop_fraction=getattr(workload, "hot_loop_fraction", 1.0),
        avg_spec_accesses_per_tx=stats.avg_spec_accesses_per_tx,
        avoided_aborts_per_tx=stats.avoided_aborts_per_tx,
        sla_fraction_of_spec_loads=stats.sla_fraction_of_spec_loads,
        avg_read_set_kb=stats.avg_read_set_kb,
        avg_write_set_kb=stats.avg_write_set_kb,
        avg_combined_set_kb=stats.avg_combined_set_kb,
        branch_fraction=exec_stats.branch_fraction if exec_stats else 0.0,
        mispredict_rate=exec_stats.mispredict_rate if exec_stats else 0.0,
        aborts_by_cause=dict(contention.by_cause),
        cause_summary=contention.cause_summary(),
        backoff_cycles=contention.backoff_cycles,
        fallback_iterations=contention.fallback_iterations,
        degraded_serial=bool(result.extra.get("degraded_serial", False)),
        serial_fallback=bool(result.extra.get("serial_fallback", False)),
        commit_process_cycles=result.extra.get("commit_process_cycles"),
        worker_cycles=result.extra.get("worker_cycles"),
        validation_mode=result.extra.get("validation_mode"),
        thread_clocks=dict(result.run.thread_clocks),
        l1_accesses=l1,
        l2_accesses=l2,
        wall_seconds=wall_seconds,
        obs_digest=obs_digest,
    )


def _pool_context():
    """Lowest-overhead multiprocessing start method for this platform.

    ``fork`` workers inherit the parent's imported modules *and* the
    pending request list (read-only, copy-on-write), so dispatch sends a
    list index instead of pickling each request — machine configs never
    cross the pipe.  ``forkserver`` still avoids re-importing the
    simulator per worker; the platform default (spawn) is the fallback.
    """
    for method in ("fork", "forkserver"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return multiprocessing.get_context()


#: Requests served by the current parallel batch, inherited read-only by
#: fork-started pool workers.  Set immediately before the pool forks and
#: cleared after it drains; never mutated while a pool is live.
_SHARED_REQUESTS: List[RunRequest] = []


def _execute_shared(index: int) -> RunRecord:
    """Pool-worker entry point: run the ``index``-th inherited request."""
    return execute_request(_SHARED_REQUESTS[index])


def execute_request(request: RunRequest) -> RunRecord:
    """Run one request start-to-finish; the unit a pool worker executes."""
    start = time.perf_counter()
    if request.observe:
        from ..obs.profile import attribute, digest  # lint-ok: RL005 (observed runs only; keeps the obs stack out of unobserved pool workers)
        from ..obs.session import ObsSession  # lint-ok: RL005 (same)
        session = ObsSession()
        with session.activate():
            workload, result = _run(request)
        session.detach()
        session.finalize(result)
        obs_digest = digest(session, attribute(session))
        return snapshot(request, workload, result,
                        time.perf_counter() - start, obs_digest=obs_digest)
    workload, result = _run(request)
    return snapshot(request, workload, result, time.perf_counter() - start)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class SweepEngine:
    """Execute :class:`RunRequest` batches, serially or across processes.

    ``jobs <= 1`` runs in-process.  ``jobs > 1`` fans unique uncached
    requests out to a ``ProcessPoolExecutor``; results come back as plain
    :class:`RunRecord` objects and are merged **in request order** — the
    output of :meth:`run` is a deterministic function of its input list,
    independent of worker count or completion order.

    Records are cached by :meth:`RunRequest.key`, so a request repeated
    across drivers (every figure needs the sequential baselines) simulates
    once and every caller gets the *same object* back.
    """

    def __init__(self, jobs: int = 1, observe: bool = False) -> None:
        self.jobs = max(1, int(jobs))
        #: When set, every request runs with an obs session attached and
        #: its record carries the cycle-attribution digest — sweeps gain
        #: attribution without any driver changes (or reruns, via cache).
        self.observe = observe
        self._cache: Dict[Tuple, RunRecord] = {}
        #: Freshly *executed* observed runs, in execution order — the
        #: hand-off :class:`repro.obs.history.HistoryStore.append_runs`
        #: consumes.  Cache hits are not re-appended, so a driver that
        #: re-reads a record does not duplicate history lines.
        self.observed_pairs: List[Tuple[RunRequest, RunRecord]] = []
        #: Upper bound on pool workers.  More processes than CPUs cannot
        #: run concurrently — they only add spawn and timeslice overhead
        #: (the old BENCH_sweep honesty gap: ``--jobs 4`` on a 1-CPU host
        #: ran 4% *slower* than serial).  When the cap leaves a single
        #: worker, the batch runs in-process with no pool at all.
        self.worker_cap = os.cpu_count() or 1
        #: Cumulative pool-management cost: parallel-section wall time
        #: not spent inside a worker's simulation (spawn, dispatch, IPC).
        self.spawn_overhead_seconds = 0.0

    def run_one(self, request: RunRequest) -> RunRecord:
        return self.run([request])[0]

    def run(self, requests: Sequence[RunRequest]) -> List[RunRecord]:
        """Execute ``requests``; returns records in request order."""
        if self.observe:
            requests = [r if r.observe else replace(r, observe=True)
                        for r in requests]
        todo: List[RunRequest] = []
        seen = set()
        for request in requests:
            key = request.key()
            if key not in self._cache and key not in seen:
                seen.add(key)
                todo.append(request)
        if todo:
            if self.jobs > 1 and len(todo) > 1:
                records = self._run_pool(todo)
            else:
                records = [execute_request(r) for r in todo]
            for request, record in zip(todo, records):
                self._cache[request.key()] = record
                if record.obs_digest is not None:
                    self.observed_pairs.append((request, record))
        return [self._cache[r.key()] for r in requests]

    def _run_pool(self, todo: List[RunRequest]) -> List[RunRecord]:
        """Fan ``todo`` out to a process pool (order-preserving)."""
        workers = max(1, min(self.jobs, self.worker_cap))
        if workers == 1:
            # A one-worker pool is pure overhead; the in-process loop is
            # the same work in the same order.
            return [execute_request(r) for r in todo]
        start = time.perf_counter()
        ctx = _pool_context()
        # Batched dispatch: each worker pulls a contiguous slice of the
        # batch instead of one request per IPC round trip.
        chunksize = max(1, len(todo) // (workers * 2))
        if ctx.get_start_method() == "fork":
            # Forked workers see the request list through copy-on-write
            # memory; only indices and records cross the pipe.
            _SHARED_REQUESTS[:] = todo
            try:
                with ProcessPoolExecutor(max_workers=workers,
                                         mp_context=ctx) as pool:
                    records = list(pool.map(_execute_shared,
                                            range(len(todo)),
                                            chunksize=chunksize))
            finally:
                del _SHARED_REQUESTS[:]
        else:
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=ctx) as pool:
                records = list(pool.map(execute_request, todo,
                                        chunksize=chunksize))
        wall = time.perf_counter() - start
        self.spawn_overhead_seconds += max(
            0.0, wall - sum(r.wall_seconds for r in records))
        return records

    def run_spec(self, spec: SweepSpec) -> List[RunRecord]:
        return self.run(spec.requests)

    def cached(self, request: RunRequest) -> Optional[RunRecord]:
        return self._cache.get(request.key())


def scaled(spec: SweepSpec, scale: float) -> SweepSpec:
    """A copy of ``spec`` with every request rescaled."""
    return SweepSpec(spec.name,
                     tuple(replace(r, scale=scale) for r in spec.requests))
