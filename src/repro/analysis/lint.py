"""Repo-specific AST lint: conventions a generic linter cannot know.

Each rule encodes an invariant this codebase relies on for correctness
(not style).  Violations are errors; a deliberate exception is recorded
in-source with a suppression marker so the reason survives review:

* ``# lint-ok: RL005 (why this is fine)`` on the offending line or the
  line directly above suppresses one rule at that site;
* ``# lint-file-ok: RL005 (why)`` anywhere in a file suppresses the rule
  for the whole file (used by ``__main__.py``, whose lazy subcommand
  imports are its documented dispatch pattern).

Both forms **require** the parenthesised reason — a bare marker does not
suppress anything.

Rule catalog (details in DESIGN.md section 10):

``RL001`` misspeculation raises must stamp ``cause=``
    Every ``raise MisspeculationError(...)`` / ``SpeculativeOverflowError``
    site must pass the ``cause=`` keyword so txctl's contention managers
    never fall back to exception-type guessing.
``RL002`` protocol module purity
    ``coherence/protocol.py``, ``states.py`` and ``vid.py`` are pure
    transition math over ``(state, modVID, highVID, requestVID)``; they
    must not import the stateful container/runtime layers, or the model
    checker's exhaustive enumeration stops being a proof about them.
``RL003`` ``__slots__`` discipline
    A class declaring ``__slots__`` must only assign declared attributes
    on ``self`` — a typo'd attribute would raise ``AttributeError`` at
    runtime on the protocol hot path instead of failing here.
``RL004`` wall-clock-free cache keys
    ``RunRequest`` and the sweep engine's digest/key helpers must never
    read wall-clock time; the deterministic-sweep cache contract requires
    ``key()`` to be a pure function of the request.
``RL005`` function-local imports need a documented reason
    Imports belong at module top level; a function-local import is only
    acceptable to break a cycle or defer a heavy optional stack, and the
    marker must say which.
``RL006`` no per-access allocation in ``# hot-path`` functions
    A function whose ``def`` line carries a ``# hot-path`` marker runs
    per simulated memory access; container literals, comprehensions,
    closures and object constructions inside it are allocation churn the
    struct-of-arrays rewrite exists to avoid.  Constructing the result
    object a ``return`` hands back (or an exception a ``raise`` throws on
    the failure path) is the function's contract and is exempt.
``RL007`` determinism in report/output paths
    Every report, digest and JSON artifact in this repo is contractually
    byte-identical across runs (the sweep cache, the CI artifact diffs,
    the explorer's canonical keys all depend on it).  Two AST patterns
    silently break that: ordering by object identity (``key=id`` —
    addresses vary run to run), flagged anywhere; and iterating an
    unordered ``set``/``frozenset`` expression directly (not wrapped in
    ``sorted``) inside a function whose name marks it as an output path
    (``to_json`` / ``render`` / ``format`` / ``report`` / ``digest`` /
    ``emit`` / ``encode`` / ``serial`` / ``artifact`` / ``key``).
``RL008`` no wall-clock reads in artifact-writing functions
    A function that writes a report artifact (``write_text``, a ``dump``
    call, or ``open(..., "w")``) must not also read wall-clock time —
    that is how a timestamp sneaks into an artifact and breaks the
    byte-identity contract (``obs diff`` on two identical runs must be
    exactly zero).  Timing that is only *printed* (never written) is the
    legitimate exception and carries a ``lint-ok`` marker saying so.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import SEVERITY_ERROR, Finding, PassReport

#: rule id -> one-line description (the ``--lint`` catalog).
LINT_RULES: Dict[str, str] = {
    "RL001": "raise of a misspeculation error must pass cause=",
    "RL002": "protocol modules must not import container/runtime layers",
    "RL003": "__slots__ classes must not assign undeclared self attributes",
    "RL004": "RunRequest/cache-key code must not read wall-clock time",
    "RL005": "function-local imports require a lint-ok marker with a reason",
    "RL006": "# hot-path functions must not allocate per access",
    "RL007": "output/report paths must not order by id() or iterate "
             "unordered sets",
    "RL008": "artifact-writing functions must not read wall-clock time",
}

#: Exception classes whose raise sites must stamp ``cause=`` (RL001).
_CAUSE_STAMPED_ERRORS = {"MisspeculationError", "SpeculativeOverflowError"}

#: Module path suffixes that must stay pure (RL002) and the top-level
#: module segments they must not import.
_PURE_MODULES = ("coherence/protocol.py", "coherence/states.py",
                 "coherence/vid.py")
_IMPURE_SEGMENTS = {"cache", "hierarchy", "directory", "memory", "line",
                    "store", "core", "core_model", "cpu", "runtime",
                    "backends", "txctl", "experiments", "workloads"}

#: Scopes inside experiments/engine.py that must be wall-clock free
#: (RL004): the frozen request plus every digest/key helper.
_CACHE_KEY_FILE = "experiments/engine.py"
_CACHE_KEY_SCOPES = {"RunRequest", "config_digest"}
_WALLCLOCK_MODULES = {"time", "datetime", "date"}
_WALLCLOCK_CALLS = {"time", "time_ns", "monotonic", "monotonic_ns",
                    "perf_counter", "perf_counter_ns", "now", "utcnow",
                    "today", "localtime", "gmtime"}

_INLINE_MARKER = re.compile(
    r"#\s*lint-ok:\s*(?P<rule>RL\d{3})\s*\((?P<reason>[^)]+)\)")
_FILE_MARKER = re.compile(
    r"#\s*lint-file-ok:\s*(?P<rule>RL\d{3})\s*\((?P<reason>[^)]+)\)")


class _Suppressions:
    """Parsed ``lint-ok`` markers of one source file."""

    def __init__(self, source: str) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()
        self.used = 0
        for lineno, text in enumerate(source.splitlines(), start=1):
            for match in _INLINE_MARKER.finditer(text):
                rule = match.group("rule")
                # A marker covers its own line and the one below, so it
                # can sit above a long statement.
                self.by_line.setdefault(lineno, set()).add(rule)
                self.by_line.setdefault(lineno + 1, set()).add(rule)
            for match in _FILE_MARKER.finditer(text):
                self.file_wide.add(match.group("rule"))

    def active(self, rule: str, lineno: int) -> bool:
        if rule in self.file_wide or rule in self.by_line.get(lineno, ()):
            self.used += 1
            return True
        return False


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _rl001_cause_stamping(tree: ast.AST, rel: str,
                          lines: Sequence[str]) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or \
                not isinstance(node.exc, ast.Call):
            continue
        name = _call_name(node.exc)
        if name not in _CAUSE_STAMPED_ERRORS:
            continue
        keywords = {kw.arg for kw in node.exc.keywords}
        if "cause" in keywords or None in keywords:  # None = **kwargs
            continue
        yield Finding(
            "RL001", SEVERITY_ERROR, f"{rel}:{node.lineno}",
            f"raise {name}(...) without cause=",
            "stamp an AbortCause so txctl contention managers classify "
            "the abort without exception-type guessing")


def _rl002_protocol_purity(tree: ast.AST, rel: str,
                           lines: Sequence[str]) -> Iterable[Finding]:
    if not rel.endswith(_PURE_MODULES):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            modules = [node.module or ""]
        else:
            continue
        for module in modules:
            segments = set(module.split("."))
            dirty = segments & _IMPURE_SEGMENTS
            if dirty:
                yield Finding(
                    "RL002", SEVERITY_ERROR, f"{rel}:{node.lineno}",
                    f"pure protocol module imports {module!r}",
                    f"segment(s) {sorted(dirty)} belong to the stateful "
                    "container/runtime layers; protocol.py must stay "
                    "pure transition math (DESIGN.md section 2)")


def _rl003_slots_discipline(tree: ast.AST, rel: str,
                            lines: Sequence[str]) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        # Only enforceable when the MRO is fully visible: no bases (or
        # only ``object``) — a base class defined elsewhere could add
        # __dict__ back or declare more slots.
        if any(not (isinstance(b, ast.Name) and b.id == "object")
               for b in node.bases):
            continue
        slots = _declared_slots(node)
        if slots is None:
            continue
        class_level = {t.id for stmt in node.body
                       if isinstance(stmt, ast.Assign)
                       for t in stmt.targets if isinstance(t, ast.Name)}
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(method):
                target = _self_attr_target(sub)
                if target and target not in slots \
                        and target not in class_level:
                    yield Finding(
                        "RL003", SEVERITY_ERROR, f"{rel}:{sub.lineno}",
                        f"{node.name}.{method.name} assigns "
                        f"self.{target}, not in __slots__",
                        f"declared slots: {sorted(slots)}")


def _declared_slots(node: ast.ClassDef) -> Optional[Set[str]]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets):
            if isinstance(stmt.value, (ast.Tuple, ast.List)):
                elements = stmt.value.elts
            else:
                return None  # dynamic __slots__: not statically checkable
            slots = set()
            for element in elements:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str):
                    slots.add(element.value)
                else:
                    return None
            return slots
    return None


def _self_attr_target(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                return target.attr
    return None


def _rl004_wallclock(tree: ast.AST, rel: str,
                     lines: Sequence[str]) -> Iterable[Finding]:
    if not rel.endswith(_CACHE_KEY_FILE):
        return
    for node in ast.walk(tree):
        if isinstance(node, (ast.ClassDef, ast.FunctionDef)) and \
                node.name in _CACHE_KEY_SCOPES:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and \
                        isinstance(sub.func, ast.Attribute) and \
                        isinstance(sub.func.value, ast.Name) and \
                        sub.func.value.id in _WALLCLOCK_MODULES and \
                        sub.func.attr in _WALLCLOCK_CALLS:
                    yield Finding(
                        "RL004", SEVERITY_ERROR, f"{rel}:{sub.lineno}",
                        f"wall-clock call {sub.func.value.id}."
                        f"{sub.func.attr}() inside {node.name}",
                        "the sweep cache contract requires RunRequest.key "
                        "to be a pure function of the request "
                        "(DESIGN.md section 8)")


def _rl005_local_imports(tree: ast.AST, rel: str,
                         lines: Sequence[str]) -> Iterable[Finding]:
    def visit(node: ast.AST, in_function: bool) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)) \
                    and in_function:
                names = ", ".join(alias.name for alias in child.names)
                yield Finding(
                    "RL005", SEVERITY_ERROR, f"{rel}:{child.lineno}",
                    f"function-local import of {names}",
                    "hoist to module level, or add "
                    "'# lint-ok: RL005 (reason)' naming the cycle or "
                    "heavy optional stack it breaks")
            nested = in_function or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef))
            yield from visit(child, nested)

    yield from visit(tree, False)


#: The ``# hot-path`` marker naming functions RL006 polices.
_HOT_PATH_MARKER = re.compile(r"#\s*hot-path\b")

#: Lowercase builtins whose calls allocate a fresh container (RL006);
#: CamelCase names are treated as object construction by convention.
_ALLOCATING_BUILTINS = {"list", "dict", "set", "frozenset", "tuple",
                        "bytearray", "sorted"}

_CAMEL_CASE = re.compile(r"^[A-Z][A-Za-z0-9]*$")


def _is_hot_function(node: ast.AST, lines: Sequence[str]) -> bool:
    """True when the function's signature carries ``# hot-path``.

    The marker may sit on any signature line (``def`` through the line
    before the first body statement), so multi-line signatures can carry
    it at either end.
    """
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    end = node.body[0].lineno if node.body else node.lineno + 1
    for lineno in range(node.lineno, end + 1):
        if lineno - 1 < len(lines) and \
                _HOT_PATH_MARKER.search(lines[lineno - 1]):
            return True
    return False


def _rl006_hot_path_allocation(tree: ast.AST, rel: str,
                               lines: Sequence[str]) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not _is_hot_function(node, lines):
            continue
        yield from _scan_hot_body(node, rel)


def _scan_hot_body(func: ast.AST, rel: str) -> Iterable[Finding]:
    #: Allocation nodes whose *direct* use as a return value or a raised
    #: exception is the function's contract, not per-access churn.
    exempt: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and \
                isinstance(node.value, ast.Call):
            exempt.add(id(node.value))
        elif isinstance(node, ast.Raise) and \
                isinstance(node.exc, ast.Call):
            exempt.add(id(node.exc))
            # The exception message may be built in the raise arguments
            # (failure path: runs once, not per access).
            for sub in ast.walk(node.exc):
                exempt.add(id(sub))
    for node in ast.walk(func):
        if node is func or id(node) in exempt:
            continue
        kind = _allocation_kind(node)
        if kind is None:
            continue
        yield Finding(
            "RL006", SEVERITY_ERROR, f"{rel}:{node.lineno}",
            f"{kind} inside # hot-path function {func.name}",
            "this runs per simulated memory access; hoist the allocation "
            "out of the hot path, or add '# lint-ok: RL006 (reason)' "
            "explaining why it is not per-access (e.g. per-transaction, "
            "per-epoch fold, or eviction-only)")


def _allocation_kind(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if isinstance(node, ast.GeneratorExp):
        return "generator expression"
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.Lambda):
        return "lambda (closure creation)"
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return "nested function (closure creation)"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = node.func.id
        if name in _ALLOCATING_BUILTINS:
            return f"{name}() container construction"
        if _CAMEL_CASE.match(name):
            return f"object construction {name}(...)"
    return None


#: Function names that mark an output path (RL007): anything that
#: renders, serializes, digests or keys data for a report or artifact.
_OUTPUT_SCOPE = re.compile(
    r"to_json|render|format|report|digest|emit|encode|serial|artifact|key",
    re.IGNORECASE)

#: Builtins whose ``key=id`` ordering RL007 flags.
_ORDERING_CALLS = {"sorted", "min", "max", "sort"}


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically certain to evaluate to an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _rl007_determinism(tree: ast.AST, rel: str,
                       lines: Sequence[str]) -> Iterable[Finding]:
    # id()-based ordering: nondeterministic across runs, anywhere.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _ORDERING_CALLS:
            continue
        for kw in node.keywords:
            if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                    and kw.value.id == "id":
                yield Finding(
                    "RL007", SEVERITY_ERROR, f"{rel}:{node.lineno}",
                    f"{name}(..., key=id) orders by object identity",
                    "id() values vary run to run; order by a stable "
                    "attribute instead")
    # Unordered-set iteration inside output-path functions.
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _OUTPUT_SCOPE.search(node.name):
            continue
        iters = []
        for sub in ast.walk(node):
            if isinstance(sub, (ast.For, ast.AsyncFor)):
                iters.append(sub.iter)
            elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                                  ast.GeneratorExp)):
                iters.extend(gen.iter for gen in sub.generators)
        for target in iters:
            if _is_set_expr(target):
                yield Finding(
                    "RL007", SEVERITY_ERROR, f"{rel}:{target.lineno}",
                    f"unordered set iterated in output path {node.name}",
                    "set iteration order is not stable across runs; wrap "
                    "in sorted(...) so the report stays byte-identical, "
                    "or add '# lint-ok: RL007 (reason)' if the order is "
                    "provably folded away")


#: Calls that mark a function as writing a report artifact (RL008).
_ARTIFACT_WRITE_CALLS = {"write_text", "dump"}


def _writes_artifact(func: ast.AST) -> bool:
    """True when the function body contains an artifact-write call."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in _ARTIFACT_WRITE_CALLS:
            return True
        # open(..., "w"/"wb"/...) — positional or keyword mode.
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            modes = [a for a in node.args[1:2]]
            modes += [kw.value for kw in node.keywords
                      if kw.arg == "mode"]
            for mode in modes:
                if isinstance(mode, ast.Constant) and \
                        isinstance(mode.value, str) and "w" in mode.value:
                    return True
    return False


def _rl008_artifact_wallclock(tree: ast.AST, rel: str,
                              lines: Sequence[str]) -> Iterable[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _writes_artifact(node):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Attribute) and \
                    isinstance(sub.func.value, ast.Name) and \
                    sub.func.value.id in _WALLCLOCK_MODULES and \
                    sub.func.attr in _WALLCLOCK_CALLS:
                yield Finding(
                    "RL008", SEVERITY_ERROR, f"{rel}:{sub.lineno}",
                    f"wall-clock call {sub.func.value.id}."
                    f"{sub.func.attr}() inside artifact-writing "
                    f"function {node.name}",
                    "report artifacts are contractually byte-identical "
                    "across runs (obs diff of two identical runs must be "
                    "zero); keep timing out of written payloads, or add "
                    "'# lint-ok: RL008 (reason)' stating the reading is "
                    "print-only")


_RULE_CHECKS = (
    _rl001_cause_stamping,
    _rl002_protocol_purity,
    _rl003_slots_discipline,
    _rl004_wallclock,
    _rl005_local_imports,
    _rl006_hot_path_allocation,
    _rl007_determinism,
    _rl008_artifact_wallclock,
)


def lint_source(source: str, rel: str) -> Tuple[List[Finding], int]:
    """Lint one file's source; returns (findings, suppressions_used)."""
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as err:
        return [Finding("RL000", SEVERITY_ERROR, f"{rel}:{err.lineno}",
                        f"syntax error: {err.msg}")], 0
    suppressions = _Suppressions(source)
    lines = source.splitlines()
    findings = []
    for check in _RULE_CHECKS:
        for finding in check(tree, rel, lines):
            lineno = int(finding.where.rsplit(":", 1)[1])
            if not suppressions.active(finding.rule, lineno):
                findings.append(finding)
    return findings, suppressions.used


def default_lint_root() -> Path:
    """The package source tree this lint ships with (src/repro)."""
    return Path(__file__).resolve().parents[1]


def lint_paths(paths: Optional[Sequence[Path]] = None) -> PassReport:
    """Lint a set of files/directories (default: the repro package)."""
    roots = [Path(p) for p in paths] if paths else [default_lint_root()]
    files: List[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    report = PassReport(name="lint")
    suppressed = 0
    anchor = default_lint_root().parent
    for path in files:
        try:
            rel = str(path.resolve().relative_to(anchor))
        except ValueError:
            rel = str(path)
        findings, used = lint_source(path.read_text(encoding="utf-8"), rel)
        report.findings.extend(findings)
        suppressed += used
    report.coverage = {
        "files": len(files),
        "rules": len(LINT_RULES),
        "suppressions_used": suppressed,
        "violations": len(report.findings),
    }
    return report
