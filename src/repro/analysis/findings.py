"""Shared result model for the analysis passes.

Every pass — model checker, race detector, lint — reports through the same
:class:`Finding` shape so the CLI, the CI job, and downstream consumers
(the sweep engine, bots) read one schema: a stable rule id, a severity, a
location (``file:line`` for lint, an event sequence number for racecheck,
an exact state tuple for the model checker), and a human-readable message.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

#: Findings at this severity fail the analysis run (exit code 1).
SEVERITY_ERROR = "error"
#: Advisory findings; reported but never gate.
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One analysis result: a rule violation with its exact location."""

    #: Stable rule id (``MC0xx`` modelcheck, ``RC0xx`` racecheck,
    #: ``RL0xx`` lint).
    rule: str
    severity: str
    #: Where: ``path:line`` (lint), ``seq N`` (racecheck), or the exact
    #: ``(state, modVID, highVID, requestVID)`` tuple (modelcheck).
    where: str
    message: str
    #: Counterexample / context: the transition taken, expected vs got.
    detail: str = ""
    #: Structured, machine-readable counterexample: the exact inputs that
    #: reproduce the violation (modelcheck state tuples, explore schedules).
    #: ``None`` when a pass has no structured form; omitted from JSON then,
    #: so reports without counterexamples are byte-identical to before.
    counterexample: Optional[Dict[str, Any]] = None

    def render(self) -> str:
        text = f"{self.rule} [{self.severity}] {self.where}: {self.message}"
        if self.detail:
            text += f"\n    {self.detail}"
        return text

    def to_json(self) -> Dict[str, Any]:
        data = asdict(self)
        if data["counterexample"] is None:
            del data["counterexample"]
        return data


@dataclass
class PassReport:
    """Outcome of one analysis pass."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    #: Pass-specific coverage counters (tuples enumerated, files linted,
    #: traces replayed, ...) — the "we really looked" evidence.
    coverage: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(f.severity == SEVERITY_ERROR for f in self.findings)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ok": self.ok,
            "coverage": dict(sorted(self.coverage.items())),
            "findings": [f.to_json() for f in self.findings],
        }


@dataclass
class AnalysisReport:
    """The merged result of every pass one ``analyze`` invocation ran."""

    passes: List[PassReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.passes)

    @property
    def findings(self) -> List[Finding]:
        return [f for p in self.passes for f in p.findings]

    def pass_named(self, name: str) -> Optional[PassReport]:
        for p in self.passes:
            if p.name == name:
                return p
        return None

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": "hmtx-analysis-report/1",
            "ok": self.ok,
            "passes": [p.to_json() for p in self.passes],
        }

    def format_text(self) -> str:
        lines: List[str] = []
        for p in self.passes:
            status = "ok" if p.ok else f"{len(p.findings)} finding(s)"
            cov = ", ".join(f"{k}={v}" for k, v in sorted(p.coverage.items()))
            lines.append(f"[{p.name}] {status}" + (f"  ({cov})" if cov else ""))
            lines.extend("  " + f.render().replace("\n", "\n  ")
                         for f in p.findings)
        lines.append("analysis: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)
