"""Exhaustive model checker for the HMTX coherence protocol functions.

The paper's section 4.3 correctness argument rests on hit/miss/conflict
decisions being *purely local* functions of ``(state, modVID, highVID,
requestVID)``.  :mod:`repro.coherence.protocol` encodes them as
side-effect-free functions, which makes the whole decision space finitely
enumerable: 9 states x an m-bit ``modVID`` x an m-bit ``highVID`` x an
m-bit ``requestVID``.  This module walks that space — every tuple, the
full 2**m VID namespace, no sampling — and checks each invariant against
an *independent* specification transcribed from the paper's prose, so an
implementation bug and a spec transcription bug would have to coincide
exactly to slip through.

Invariants (rule catalog; see DESIGN.md section 10):

``MC001`` hit-window soundness
    ``version_hits`` equals the section 4.1 window spec: latest versions
    serve ``a >= modVID``, superseded versions serve ``modVID <= a <
    highVID``, valid non-speculative lines serve everything, Invalid
    nothing.
``MC002`` version partitioning
    Every version chain the protocol can create (a non-speculative backup
    plus superseded copies plus one latest version) partitions the VID
    space: each request VID hits *exactly one* version.
``MC003`` dependence-exact write aborts
    A speculative write aborts iff a flow/anti/output dependence would be
    violated — the hit version is superseded, or a logically-later access
    already touched the line (``a < highVID``) — and writes in place iff
    the same transaction re-writes its own version.
``MC004`` new-version partition preservation
    The Figure 4 copy-creating write splits the old service window
    exactly: backup ``S-O`` takes ``[modVID, a)``, the fresh ``S-M(a,a)``
    takes ``[a, ...)``; no request VID is gained, lost, or double-served.
``MC005`` read effects
    Superseded versions are immutable under reads; latest versions only
    ever raise ``highVID`` to the reading VID; non-speculative lines
    enter the speculative world as ``S-M(0,a)``/``S-E(0,a)`` preserving
    dirtiness.
``MC006`` lazy commit fold convergence
    Folding commits ``1..c`` one at a time equals applying
    ``commit_transition`` once with ``commit_vid=c`` — the property that
    lets a lazy cache process any backlog of commit broadcasts in a
    single step (section 5.3), in whatever order lines are touched.
``MC007`` abort convergence
    Abort after any commit prefix leaves no speculative state behind and
    is idempotent — lazy Committed/Aborted processing reaches the same
    final state regardless of when each line is touched.
``MC008`` VID-reset scrub
    The section 4.6 reset turns every surviving latest version into plain
    ``M``/``E`` data, kills every superseded copy, and zeroes all VIDs —
    so a recycled VID namespace can never alias a stale epoch.

On failure the report carries the exact counterexample: the input tuple,
the transition taken, and expected-vs-got.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Dict, List, Optional, Tuple

from ..coherence import protocol as _protocol_module
from ..coherence.protocol import WriteOutcome
from ..coherence.states import State
from ..coherence.vid import DEFAULT_VID_BITS
from .findings import SEVERITY_ERROR, Finding, PassReport

#: Cap on reported counterexamples per rule (every violation is *counted*;
#: only the first few are materialised as findings).
MAX_FINDINGS_PER_RULE = 5

#: Schema tag of the structured counterexample attached to each finding.
COUNTEREXAMPLE_SCHEMA = "hmtx-modelcheck-counterex/1"

#: Longest superseded-version chain enumerated for MC002.  Chains are
#: built from strictly increasing write VIDs, so length 3 plus the
#: non-speculative backup already exercises every structural case
#: (below-all, between-any-two, above-all request VIDs).
DEFAULT_MAX_CHAIN = 3

_LATEST = (State.SM, State.SE)
_SUPERSEDED = (State.SO, State.SS)
_NONSPEC_VALID = (State.MODIFIED, State.OWNED, State.EXCLUSIVE, State.SHARED)


# ----------------------------------------------------------------------
# Independent specification (transcribed from the paper, NOT from the
# implementation — section 4.1 windows, Figure 4/6/7 transitions).
# ----------------------------------------------------------------------

def _spec_hits(state: State, m: int, h: int, a: int) -> bool:
    if state is State.INVALID:
        return False
    if state in _LATEST:
        return a >= m
    if state in _SUPERSEDED:
        return m <= a < h
    return True


def _spec_write(state: State, m: int, h: int, a: int) -> WriteOutcome:
    """Dependence analysis of a write hitting ``(state, m, h)`` with VID ``a``.

    * superseded version: a logically-later write already superseded this
      copy — writing it would violate an output dependence -> ABORT;
    * latest version with ``a < h``: a logically-later load or store
      already observed/extended the line — flow/anti dependence -> ABORT;
    * same transaction re-writes its own latest version -> IN_PLACE;
    * otherwise the write is dependence-safe and creates a new version.
    """
    if state in _SUPERSEDED:
        return WriteOutcome.ABORT
    if state in _LATEST:
        if a < h:
            return WriteOutcome.ABORT
        if a == m:
            return WriteOutcome.IN_PLACE
        return WriteOutcome.NEW_VERSION
    return WriteOutcome.NEW_VERSION


def reachable(state: State, m: int, h: int) -> bool:
    """Can the protocol ever create a version tagged ``(state, m, h)``?

    Non-speculative lines carry no VIDs.  ``S-M`` is created as ``(a,a)``
    and its ``highVID`` only rises (``modVID`` may drop to 0 when its
    creating store's transaction commits under it, section 5.3);
    ``S-E``'s ``modVID`` is always 0; ``S-O`` records a strictly-later
    superseding write in ``highVID``; ``S-S`` mirrors the version it was
    snooped from.
    """
    if not state.speculative:
        return m == 0 and h == 0
    if state is State.SO:
        return 0 <= m < h
    if state is State.SE:
        return m == 0 and h >= 1
    # S-M / S-S
    return 0 <= m <= h and h >= 1


# ----------------------------------------------------------------------
# The checker
# ----------------------------------------------------------------------

class _Collector:
    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.violations = 0

    def emit(self, rule: str, where: str, message: str, detail: str,
             counterexample: Optional[Dict[str, Any]] = None) -> None:
        self.violations += 1
        per_rule = sum(1 for f in self.findings if f.rule == rule)
        if per_rule < MAX_FINDINGS_PER_RULE:
            if counterexample is not None:
                counterexample = dict(counterexample)
                counterexample.setdefault("schema", COUNTEREXAMPLE_SCHEMA)
                counterexample.setdefault("rule", rule)
            self.findings.append(Finding(rule, SEVERITY_ERROR, where,
                                         message, detail,
                                         counterexample=counterexample))


def _tuple_repr(state: State, m: int, h: int,
                a: Optional[int] = None) -> str:
    text = f"({state.value}, modVID={m}, highVID={h}"
    if a is not None:
        text += f", reqVID={a}"
    return text + ")"


def _tuple_doc(state: State, m: int, h: int, a: Optional[int] = None,
               **extra: Any) -> Dict[str, Any]:
    """The exact input tuple as a machine-readable counterexample."""
    doc: Dict[str, Any] = {"state": state.value, "mod_vid": m,
                           "high_vid": h}
    if a is not None:
        doc["request_vid"] = a
    doc.update(extra)
    return doc


def check_protocol(vid_bits: int = DEFAULT_VID_BITS,
                   max_chain: int = DEFAULT_MAX_CHAIN,
                   protocol=None) -> PassReport:
    """Run every invariant over the full ``vid_bits`` decision space.

    ``protocol`` defaults to :mod:`repro.coherence.protocol`; the mutation
    tests pass a patched namespace to prove a broken transition yields a
    counterexample.
    """
    proto = protocol if protocol is not None else _protocol_module
    version_hits = proto.version_hits
    write_outcome = proto.write_outcome
    plan_new_version = proto.plan_new_version
    read_transition = proto.read_transition
    commit_transition = proto.commit_transition
    abort_transition = proto.abort_transition
    reset_transition = proto.reset_transition

    max_vid = (1 << vid_bits) - 1
    vids = range(max_vid + 1)
    out = _Collector()

    enumerated = 0
    reachable_versions = 0
    request_tuples = 0
    commit_fold_steps = 0
    abort_pairs = 0

    for state in State:
        latest = state in _LATEST
        superseded = state in _SUPERSEDED
        for m in vids:
            for h in vids:
                enumerated += 1
                if not reachable(state, m, h):
                    continue
                reachable_versions += 1
                where_v = _tuple_repr(state, m, h)

                # ---- MC006: lazy commit fold convergence (induction:
                # one-shot commit at c == incremental commit of c applied
                # to the one-shot result at c-1).
                prev = (state, (m, h))
                for c in range(1, max_vid + 1):
                    one_shot = commit_transition(state, m, h, c)
                    stepped = commit_transition(prev[0], prev[1][0],
                                                prev[1][1], c)
                    commit_fold_steps += 1
                    if stepped != one_shot:
                        out.emit(
                            "MC006", where_v,
                            "lazy commit fold diverges from one-shot commit",
                            f"commit_transition folded up to {c} gives "
                            f"{stepped}, one-shot commit({c}) gives "
                            f"{one_shot}",
                            _tuple_doc(state, m, h, commit_vid=c))
                        break
                    prev = one_shot

                # ---- MC007: abort convergence after any commit prefix.
                for c in (0, m, h, max_vid):
                    base = ((state, (m, h)) if c == 0
                            else commit_transition(state, m, h, c))
                    aborted = abort_transition(base[0], base[1][0],
                                               base[1][1])
                    abort_pairs += 1
                    if aborted[0].speculative:
                        out.emit(
                            "MC007", where_v,
                            "speculative state survives an abort",
                            f"abort after commit({c}) left {aborted}",
                            _tuple_doc(state, m, h, commit_vid=c))
                    again = abort_transition(aborted[0], aborted[1][0],
                                             aborted[1][1])
                    if again != aborted:
                        out.emit(
                            "MC007", where_v,
                            "abort is not idempotent",
                            f"abort(abort(v)) = {again} != abort(v) = "
                            f"{aborted} (after commit({c}))",
                            _tuple_doc(state, m, h, commit_vid=c))

                # ---- MC008: VID-reset scrub.
                if state.speculative:
                    expect = ((State.MODIFIED if state is State.SM
                               else State.EXCLUSIVE) if latest
                              else State.INVALID)
                    got = reset_transition(state, m, h)
                    if got != (expect, (0, 0)):
                        out.emit(
                            "MC008", where_v,
                            "VID reset does not scrub the version",
                            f"reset_transition gave {got}, the 4.6 scrub "
                            f"requires ({expect}, (0, 0))",
                            _tuple_doc(state, m, h))

                # ---- The request-VID dimension.
                for a in vids:
                    request_tuples += 1
                    where = _tuple_repr(state, m, h, a)

                    # MC001: hit-window soundness.
                    hits = version_hits(state, m, h, a)
                    if hits != _spec_hits(state, m, h, a):
                        out.emit(
                            "MC001", where,
                            "version_hits disagrees with the section 4.1 "
                            "window spec",
                            f"version_hits={hits}, spec="
                            f"{_spec_hits(state, m, h, a)}",
                            _tuple_doc(state, m, h, a))
                        continue
                    if not hits:
                        continue

                    # MC003: dependence-exact write classification
                    # (checked on hit tuples: the hierarchy only consults
                    # write_outcome for the version a request hits).
                    outcome = write_outcome(state, m, h, a)
                    expected = _spec_write(state, m, h, a)
                    if outcome is not expected:
                        out.emit(
                            "MC003", where,
                            "write_outcome violates the dependence rules",
                            f"write_outcome={outcome.value}, dependence "
                            f"analysis requires {expected.value}",
                            _tuple_doc(state, m, h, a))
                        continue

                    # MC004: the copy-creating write preserves the
                    # partition.  MC001 proved the windows are the spec
                    # intervals, so boundary request VIDs suffice.
                    if outcome is WriteOutcome.NEW_VERSION:
                        plan = plan_new_version(state, m, h, a)
                        src_m = m if state.speculative else 0
                        if (plan.old_state is not State.SO
                                or plan.old_vids != (src_m, a)
                                or plan.new_vids != (a, a)):
                            out.emit(
                                "MC004", where,
                                "new-version plan deviates from Figure 4",
                                f"got old={plan.old_state.value}"
                                f"{plan.old_vids} new=S-M{plan.new_vids}; "
                                f"expected old=S-O({src_m},{a}) "
                                f"new=S-M({a},{a})",
                                _tuple_doc(state, m, h, a))
                        else:
                            for q in {0, max(0, src_m - 1), src_m,
                                      max(0, a - 1), a, max_vid}:
                                before = version_hits(state, m, h, q)
                                after = (version_hits(State.SO, src_m, a, q)
                                         + version_hits(State.SM, a, a, q))
                                if after != (1 if before else 0):
                                    out.emit(
                                        "MC004", where,
                                        "copy-creating write gains/loses "
                                        "a request VID",
                                        f"reqVID {q}: hit {before} before "
                                        f"the write, {after} version(s) "
                                        f"after",
                                        _tuple_doc(state, m, h, a,
                                                   probe_vid=q))

                    # MC005: read effects (speculative reads carry a >= 1).
                    if a >= 1:
                        rt = read_transition(state, m, h, a)
                        if superseded:
                            ok = rt == (state, (m, h))
                            want = f"immutable {(state, (m, h))}"
                        elif latest:
                            ok = rt == (state, (m, max(h, a)))
                            want = f"({state}, ({m}, {max(h, a)}))"
                        elif state in (State.MODIFIED, State.OWNED):
                            ok = rt == (State.SM, (0, a))
                            want = f"(S-M, (0, {a}))"
                        else:
                            ok = rt == (State.SE, (0, a))
                            want = f"(S-E, (0, {a}))"
                        if not ok:
                            out.emit(
                                "MC005", where,
                                "read transition corrupts the version",
                                f"read_transition gave {rt}, expected "
                                f"{want}",
                                _tuple_doc(state, m, h, a))

    # ---- MC002: version-chain partitioning.  A chain is the backup
    # S-O(0,b1), superseded copies S-O(b_i, b_{i+1}), and the latest
    # S-M(b_k, b_k) — exactly what successive dependence-safe writes with
    # VIDs b1 < ... < bk build (MC004 verified each individual split).
    # MC001 proved every window is the spec interval, so checking the
    # interval boundaries covers all 2**m request VIDs.
    chains = 0
    chain_points = 0
    for k in range(1, max_chain + 1):
        for bases in combinations(range(1, max_vid + 1), k):
            chains += 1
            versions: List[Tuple[State, int, int]] = [(State.SO, 0, bases[0])]
            versions += [(State.SO, bases[i], bases[i + 1])
                         for i in range(k - 1)]
            versions.append((State.SM, bases[-1], bases[-1]))
            points = {0, max_vid}
            for b in bases:
                points.update((b - 1, b))
            for q in points:
                chain_points += 1
                serving = [v for v in versions
                           if version_hits(v[0], v[1], v[2], q)]
                if len(serving) != 1:
                    out.emit(
                        "MC002",
                        "chain " + " -> ".join(
                            f"{s.value}({m},{h})" for s, m, h in versions),
                        f"request VID {q} hits {len(serving)} versions "
                        "(must be exactly 1)",
                        f"serving: {[f'{s.value}({m},{h})' for s, m, h in serving]}",
                        {"chain": [[s.value, m, h] for s, m, h in versions],
                         "request_vid": q})
            if out.violations > 10_000:  # runaway mutant; coverage is moot
                break
        if out.violations > 10_000:
            break

    report = PassReport(name="modelcheck", findings=out.findings)
    report.coverage = {
        "vid_bits": vid_bits,
        "tuples_enumerated": enumerated,
        "version_tuples_reachable": reachable_versions,
        "request_tuples_checked": request_tuples,
        "commit_fold_steps": commit_fold_steps,
        "abort_pairs_checked": abort_pairs,
        "chains_checked": chains,
        "chain_points_checked": chain_points,
        "violations": out.violations,
    }
    return report


# ----------------------------------------------------------------------
# Structural pass: sliced-LLC / directory invariants on a live machine
# ----------------------------------------------------------------------

#: Deterministic op script for :func:`check_topology_structure` — enough
#: load/store/commit/abort/reset churn to populate every slice, force L1
#: victims into home slices, and exercise the lazy sharer map.
_STRUCTURE_VIDS = (1, 2, 3)


def check_topology_structure(hierarchy_factory=None,
                             lines: int = 48) -> PassReport:
    """Hold the sliced-LLC structural invariants on a 2-socket machine.

    The pure-function checker above cannot see *placement* bugs — a
    version installed in the wrong LLC slice, a holder missing from the
    directory's sharer map — because those live in the hierarchy objects,
    not the protocol tables.  This pass builds a small 2-socket
    :class:`~repro.coherence.directory.DirectoryHierarchy`, drives a
    deterministic access script across both sockets, and re-checks after
    every step:

    ``MC009`` home-slice ownership
        Every LLC-resident version sits in its address's home slice
        (victim routing and installs never target a foreign slice).
    ``MC010`` sharer-map completeness
        Every cache holding a version of a line appears in the line's
        directory sharer entry, and the per-cache version indices mirror
        the set contents they summarise.

    ``hierarchy_factory`` defaults to the real machine; the mutation
    tests pass a factory producing a deliberately broken subclass (e.g.
    a ``_home_llc`` that picks the wrong slice) to prove a placement bug
    yields a counterexample instead of silently passing.
    """
    from ..coherence.directory import DirectoryConfig, DirectoryHierarchy  # lint-ok: RL005 (pulls in the full coherence stack; loaded only when the pass runs)
    from ..topology import TopologySpec  # lint-ok: RL005 (same)

    if hierarchy_factory is None:
        def hierarchy_factory():
            # Tiny L1s (16 lines, 2-way) so the script's working set
            # overflows them and victims actually flow into the LLC
            # slices — otherwise the home-slice invariant is vacuous.
            return DirectoryHierarchy(DirectoryConfig(
                num_cores=8, l1_size=16 * 64, l1_assoc=2,
                topology=TopologySpec(sockets=2, cores_per_socket=4)))

    out = _Collector()
    hierarchy = hierarchy_factory()
    line_size = hierarchy.config.line_size
    num_cores = hierarchy.config.num_cores

    def classify(message: str) -> str:
        return "MC010" if ("unrecorded" in message
                           or "presence map" in message
                           or "index" in message) else "MC009"

    steps = 0
    checks = 0

    def recheck(where: str) -> None:
        nonlocal checks
        for check in (hierarchy.check_invariants,
                      hierarchy.check_directory_invariant):
            checks += 1
            try:
                check()
            except AssertionError as exc:
                message = str(exc) or "structural invariant violated"
                out.emit(classify(message), where,
                         "sliced-LLC structural invariant violated",
                         message,
                         {"where": where, "phase": "recheck",
                          "assertion": message, "step": steps})

    def drive(op, where: str) -> bool:
        # A corrupted machine may trip an internal assertion mid-op (a
        # stale index serving two versions, say); that is a counterexample,
        # not a harness crash.
        nonlocal steps
        steps += 1
        try:
            op()
            return True
        except AssertionError as exc:
            message = str(exc) or "operation tripped internal assertion"
            out.emit(classify(message), where,
                     "access on the sliced machine tripped an internal "
                     "assertion", message,
                     {"where": where, "phase": "drive",
                      "assertion": message, "step": steps})
            return False

    addrs = [i * line_size for i in range(lines)]
    now = 0
    aborted_run = False
    for round_index, vid in enumerate(_STRUCTURE_VIDS):
        for i, addr in enumerate(addrs):
            core = (i + round_index) % num_cores
            far = (core + num_cores // 2) % num_cores
            where = f"round {round_index} addr 0x{addr:x}"
            # Read on one socket, write from the other, so versions and
            # victims cross the socket boundary both ways.
            if not (drive(lambda: hierarchy.load(core, addr, vid, now=now),
                          where)
                    and drive(lambda: hierarchy.store(
                        far, addr, vid, value=i + round_index, now=now),
                        where)):
                aborted_run = True
                break
            now += 1
            if i % 8 == 7:
                recheck(where)
        if aborted_run:
            break
        drive(hierarchy.abort if vid == 2
              else lambda: hierarchy.commit(vid),
              f"outcome of vid {vid}")
        recheck(f"after outcome of vid {vid}")
        if out.violations > 1_000:  # runaway mutant; coverage is moot
            break
    if not aborted_run:
        drive(hierarchy.vid_reset, "vid_reset")
        recheck("after vid_reset")

    report = PassReport(name="modelcheck-structure", findings=out.findings)
    report.coverage = {
        "sockets": getattr(hierarchy.config.topology, "sockets", 1),
        "cores": num_cores,
        "lines_driven": lines,
        "ops_executed": steps,
        "invariant_checks": checks,
        "violations": out.violations,
    }
    return report
