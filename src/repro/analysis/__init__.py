"""``repro.analysis`` — correctness tooling over the protocol and traces.

Three coordinated static/dynamic analysis passes, all reachable through
``python -m repro analyze`` and the CI ``analysis`` job:

``modelcheck``
    Exhaustively enumerates the protocol's ``(state, modVID, highVID,
    requestVID)`` decision space over the full m-bit VID namespace and
    asserts the paper's section 4.3 invariants (window soundness, version
    partitioning, superseded immutability, dependence-exact write aborts,
    lazy commit/abort fold convergence, VID-reset scrubbing).  Failures
    come back as exact tuple counterexamples.
``racecheck``
    An offline detector over recorded trace event streams: rebuilds the
    VID happens-before order, replays MTX value forwarding, and flags lost
    forwarded values, group-commit atomicity violations, aborts attributed
    to committed VIDs, and VID-recycling hazards.
``lint``
    AST-based repo-specific rules (RL001..RL005): abort-cause stamping,
    protocol purity, ``__slots__`` discipline, wall-clock-free cache keys,
    and no undocumented function-local imports.

See DESIGN.md section 10 for the rule catalog and counterexample format.
"""

from .findings import AnalysisReport, Finding, PassReport
from .lint import LINT_RULES, lint_paths, lint_source
from .modelcheck import check_protocol
from .racecheck import check_trace

__all__ = [
    "AnalysisReport",
    "Finding",
    "LINT_RULES",
    "PassReport",
    "check_protocol",
    "check_trace",
    "lint_paths",
    "lint_source",
]
