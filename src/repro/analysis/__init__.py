"""``repro.analysis`` — correctness tooling over the protocol and traces.

Three coordinated static/dynamic analysis passes, all reachable through
``python -m repro analyze`` and the CI ``analysis`` job:

``modelcheck``
    Exhaustively enumerates the protocol's ``(state, modVID, highVID,
    requestVID)`` decision space over the full m-bit VID namespace and
    asserts the paper's section 4.3 invariants (window soundness, version
    partitioning, superseded immutability, dependence-exact write aborts,
    lazy commit/abort fold convergence, VID-reset scrubbing).  Failures
    come back as exact tuple counterexamples.
``racecheck``
    An offline detector over recorded trace event streams: rebuilds the
    VID happens-before order, replays MTX value forwarding, and flags lost
    forwarded values, group-commit atomicity violations, aborts attributed
    to committed VIDs, and VID-recycling hazards.
``lint``
    AST-based repo-specific rules (RL001..RL007): abort-cause stamping,
    protocol purity, ``__slots__`` discipline, wall-clock-free cache keys,
    no undocumented function-local imports, and report-path determinism
    (no unordered-set iteration or ``id()`` ordering feeding output).
``explore`` (opt-in: ``analyze --explore``)
    The interleaving-level stateful model checker: drives the real
    ``MemoryHierarchy`` / ``DirectoryHierarchy`` through every schedule
    of a bounded scenario, quotienting by VID-rank renaming and the
    2-socket mirror symmetry, and checks the global rules EX001
    (serializability), EX002 (no lost updates), EX003 (directory-cache
    agreement on every reachable state), EX004 (liveness).  Violations
    are delta-debugged into replayable counterexample artifacts.

See DESIGN.md sections 10 and 15 for the rule catalogs and
counterexample formats.
"""

from .findings import AnalysisReport, Finding, PassReport
from .lint import LINT_RULES, lint_paths, lint_source
from .modelcheck import check_protocol
from .racecheck import check_trace

__all__ = [
    "AnalysisReport",
    "Finding",
    "LINT_RULES",
    "PassReport",
    "check_protocol",
    "check_trace",
    "explore_pass",
    "lint_paths",
    "lint_source",
    "replay_counterexample",
]


def __getattr__(name):
    # PEP 562 lazy exports: the explorer pulls in the full coherence
    # stack, which `import repro.analysis` alone should not pay for.
    if name in ("explore_pass", "replay_counterexample"):
        from . import explore  # lint-ok: RL005 (lazy PEP 562 export; keeps `import repro.analysis` import-light)
        return getattr(explore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
