"""Drive every registered backend over the workload suite and racecheck it.

This is the dynamic half of ``python -m repro analyze``: for each
``(backend, workload)`` pair a fresh system is built, a
:class:`~repro.trace.capture.BackendTracer` attached, the workload run
under its Table 1 paradigm, and the recorded event stream handed to
:func:`~repro.analysis.racecheck.check_trace`.  Every registered backend
(hmtx / smtx / oracle / any future plugin) must produce a clean trace —
the conformance contract the race detector enforces on top of the
signature-level checks in ``tests/backends/test_conformance.py``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..backends import backend_names, get_backend
from ..coherence.memory import DEFAULT_WORD_SIZE
from ..runtime.paradigms import run_workload
from ..trace.capture import BackendTracer
from ..workloads import executor_factory_for, make_benchmark
from ..workloads.suite import BENCHMARK_NAMES
from .findings import SEVERITY_ERROR, Finding, PassReport
from .racecheck import check_trace

#: The quick-scale the CI analysis job replays (matches the sweep smoke).
QUICK_SCALE = 0.25

#: Adversarial extra workloads (aborts, capacity pressure) replayed on top
#: of the Table 1 suite; names resolved by the sweep engine's builder.
EXTRA_WORKLOADS = ("contended-list",)


def default_workloads() -> Tuple[str, ...]:
    return tuple(BENCHMARK_NAMES) + EXTRA_WORKLOADS


def _build_workload(name: str, scale: float):
    if name in BENCHMARK_NAMES:
        return make_benchmark(name, scale)
    from ..workloads import make_workload  # lint-ok: RL005 (only needed for non-suite workload names, e.g. svc survivors; keeps optional subsystems out of the analyze fast path)
    return make_workload(name, scale)


def capture_trace(backend: str, workload_name: str,
                  scale: float = QUICK_SCALE):
    """Run one workload on one backend with a tracer attached.

    Returns ``(tracer, result, workload)``; the tracer is already
    detached.
    """
    workload = _build_workload(workload_name, scale)
    factory = get_backend(backend)
    tracers = []

    def system_factory():
        system = factory(config=None)
        tracers.append(BackendTracer.attach(system))
        return system

    result = run_workload(workload,
                          executor_factory=executor_factory_for(workload),
                          system_factory=system_factory)
    tracer = tracers[0]
    tracer.detach()
    return tracer, result, workload


def racecheck_backends(backends: Optional[Sequence[str]] = None,
                       workloads: Optional[Iterable[str]] = None,
                       scale: float = QUICK_SCALE) -> PassReport:
    """Racecheck recorded traces of every backend over the workload set.

    Merges the per-trace reports into one ``racecheck`` pass report whose
    findings are labelled ``backend/workload``; also asserts each run
    preserved sequential semantics (rule ``RC005``).
    """
    backends = tuple(backends) if backends else backend_names()
    workloads = tuple(workloads) if workloads else default_workloads()
    merged = PassReport(name="racecheck")
    totals = {"traces": 0, "events": 0, "loads_checked": 0,
              "stores": 0, "commits": 0, "aborts": 0, "violations": 0}
    for backend in backends:
        for workload_name in workloads:
            label = f"{backend}/{workload_name}"
            tracer, result, workload = capture_trace(backend, workload_name,
                                                     scale)
            sub = check_trace(tracer.events, word_size=DEFAULT_WORD_SIZE,
                              label=label)
            merged.findings.extend(sub.findings)
            totals["traces"] += 1
            for key in ("events", "loads_checked", "stores", "commits",
                        "aborts", "violations"):
                totals[key] += sub.coverage[key]
            if tracer.dropped_events:
                merged.findings.append(Finding(
                    "RC000", SEVERITY_ERROR, label,
                    f"trace ring overflowed: {tracer.dropped_events} oldest "
                    "events evicted — the replay window is partial",
                    "raise BackendTracer capacity or lower the scale"))
            observed = workload.observed_result(result.system)
            expected = workload.expected_result(result.system)
            if observed != expected:
                merged.findings.append(Finding(
                    "RC005", SEVERITY_ERROR, label,
                    "run did not preserve sequential semantics",
                    f"observed {observed!r} != expected {expected!r}"))
    merged.coverage = dict(totals,
                           backends=",".join(backends), scale=scale)
    return merged
