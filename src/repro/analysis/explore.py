"""Interleaving-level stateful model checker for the HMTX coherence stack.

``repro.analysis.modelcheck`` proves the *local* argument: every
hit/miss/abort decision is a pure function of ``(state, modVID, highVID,
requestVID)`` and each transition obeys Figures 4-7.  The bugs that
actually bite an MTX implementation live in *interleavings*: commit
broadcasts racing lazy folds, VID-reset scrubs racing in-flight writes,
cross-socket directory forwarding reordering against L1 victims.  This
module drives the **real** machine — :class:`~repro.coherence.hierarchy.
MemoryHierarchy` / :class:`~repro.coherence.directory.DirectoryHierarchy`,
flat and 2-socket — through every interleaving of a small bounded scenario
and checks global rules the local checker cannot express:

``EX001`` **serializability** — at every terminal state, the loads each
    committed transaction observed equal a sequential replay of the
    committed programs in commit order (commit order is VID order under
    the group-commit rule, so the witness order is determined).
``EX002`` **no lost updates** — after every step, the committed view
    (what a non-speculative request would observe, i.e. the resolved
    version hitting ``LC_VID``) of every scenario address agrees across
    caches and equals the fold of the committed transactions' stores;
    when no cache holds a committed copy, memory must.
``EX003`` **directory-cache agreement** — after every step the machine's
    own invariants hold on the *reachable* state: unique latest version,
    unique hit per (cache, VID), presence map exact, sliced-LLC home
    ownership, every holder recorded in the directory (MC009/MC010
    extended from static structure to all reachable states).
``EX004`` **liveness** — no reachable state deadlocks under fair
    scheduling (some event is enabled until everything committed and the
    VID space was reset), and every abort has a *blocker*: a conflicting
    speculative version that justifies it.  A genuine livelock ends in
    txctl-style escalation after ``max_attempts`` — that is recorded as
    coverage, not a violation; a spurious abort or a stuck schedule is.

Reduction (DESIGN.md §15 gives the full soundness argument): classical
static persistent-set DPOR is *unsound* here — commit/abort broadcasts
touch every cache and the lazy-fold timing makes nearly all transitions
pairwise dependent — so the state space is instead quotiented by
canonicalization: states are hashed over their **resolved** line-store
columns (the pure :func:`_resolved` fold mirrors ``_process_lazy_slot``,
which is confluent, so pending lazy events do not split states), VIDs are
renamed by their rank (an order-isomorphism: the protocol compares
request VIDs against tags only with ``>=``/``<`` and tests equality only
against ``modVID`` tags, so any order-preserving renaming is a behavior
isomorphism), and on symmetric 2-socket scenarios the socket-mirror
automorphism folds mirrored states together.  VIDs are allocated lazily
at a thread's first action — an MTX epoch receives its VID when it
starts — which is exactly what makes mirrored schedules reach
rank-identical states.  ``--no-reduce`` keeps the dedup but disables
the renaming and mirror.

On violation the schedule is delta-debugged (:func:`minimize`) and
emitted as a self-contained, replayable counterexample artifact
(``hmtx-explore-counterex/1``) that :func:`replay_counterexample` — and
the committed regression harness under ``tests/analysis/counterexamples``
— can execute directly, the same survivor-replay pattern ``repro.svc``
uses.  Mutation hooks (:data:`INJECTIONS`) break the machine in eight
distinct ways so the test suite proves every EX rule bites.
"""

from __future__ import annotations

import copy
import json
import types
from dataclasses import dataclass
from itertools import permutations
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..coherence.cache import VersionedCache
from ..coherence.directory import DirectoryConfig, DirectoryHierarchy
from ..coherence.hierarchy import HierarchyConfig, MemoryHierarchy
from ..coherence.line import CacheLine
from ..coherence.protocol import (
    abort_transition_code,
    commit_transition_code,
    version_hits_code,
)
from ..coherence.states import CODE_INVALID, CODE_SM, State
from ..errors import MisspeculationError
from ..topology import TopologySpec, place_core
from ..txctl.causes import AbortCause
from .findings import SEVERITY_ERROR, Finding, PassReport

#: Schema tag of the replayable counterexample artifact.
COUNTEREXAMPLE_SCHEMA = "hmtx-explore-counterex/1"

#: Pseudo-event: the section 4.6 VID reset (legal once everything committed).
RESET_EVENT = -1

#: Reported findings are capped per (shape, rule); the rest are counted.
MAX_FINDINGS_PER_RULE = 5

DEFAULT_MAX_STATES = 20000
DEFAULT_MAX_DEPTH = 80

#: Known machine shapes.
SHAPES = ("flat", "2socket")

_LINE = 64
_A, _B, _C = 0x000, 0x040, 0x080


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """A bounded exploration scenario: one program per thread.

    Each thread models one MTX epoch: it runs its ops speculatively under
    a VID allocated when it first acts (epochs receive their VID at
    start), then commits.  Commits follow the group-commit rule (VID
    order, i.e. epoch-start order); after every thread committed, the VID
    space is reset.  Ops are ``("load", addr)`` / ``("store", addr,
    value)`` tuples.
    """

    name: str
    threads: Tuple[Tuple[Tuple, ...], ...]
    addrs: Tuple[int, ...]
    vid_bits: int = 4
    max_attempts: int = 2
    vid_start: int = 1


#: Scenario presets.  ``small`` is deliberately symmetric under the
#: address swap A<->B (same store value), so the 2-socket mirror
#: reduction actually quotients; ``chain`` exercises cross-thread
#: uncommitted-value forwarding; ``scrub`` adds a third line so VID-reset
#: scrubs race extra resident versions.
EXPLORE_PRESETS: Dict[str, Scenario] = {
    "small": Scenario(
        name="small",
        threads=(
            (("store", _A, 10), ("load", _B)),
            (("store", _B, 10), ("load", _A)),
        ),
        addrs=(_A, _B),
    ),
    "chain": Scenario(
        name="chain",
        threads=(
            (("store", _A, 1),),
            (("load", _A), ("store", _B, 2)),
            (("load", _B),),
        ),
        addrs=(_A, _B),
    ),
    "scrub": Scenario(
        name="scrub",
        threads=(
            (("store", _A, 7), ("store", _C, 9), ("load", _B)),
            (("store", _B, 8), ("load", _C)),
        ),
        addrs=(_A, _B, _C),
    ),
}


def build_hierarchy(scenario: Scenario, shape: str):
    """Build the real machine for a scenario; returns ``(hierarchy, cores)``.

    Tiny geometry (4-line L1s, 16-line flat LLC / 8-line slices) so
    eviction and overflow paths are reachable within the bounded state
    space; all latencies 1 — exploration is untimed, only the protocol
    decisions matter.
    """
    n = len(scenario.threads)
    if shape == "flat":
        config = HierarchyConfig(
            num_cores=n, l1_size=256, l1_assoc=2, l1_latency=1,
            l2_size=1024, l2_assoc=4, l2_latency=1, line_size=_LINE,
            memory_latency=1, vid_bits=scenario.vid_bits,
            broadcast_latency=1, bus_occupancy=1)
        return MemoryHierarchy(config), tuple(range(n))
    if shape == "2socket":
        cps = (n + 1) // 2
        topo = TopologySpec(
            sockets=2, cores_per_socket=cps, llc_slice_size=512,
            llc_slice_assoc=4, llc_slice_latency=1, intra_hop_latency=1,
            cross_hop_latency=1)
        config = DirectoryConfig(
            num_cores=topo.num_cores, l1_size=256, l1_assoc=2,
            l1_latency=1, line_size=_LINE, memory_latency=1,
            vid_bits=scenario.vid_bits, broadcast_latency=1,
            bus_occupancy=1, topology=topo, directory_banks=2,
            directory_latency=1, bank_occupancy=1, link_latency=1)
        cores = tuple(place_core(i, topo.num_cores, topo, "spread")
                      for i in range(n))
        return DirectoryHierarchy(config), cores
    raise ValueError(f"unknown shape {shape!r} (expected one of {SHAPES})")


# ----------------------------------------------------------------------
# Run state
# ----------------------------------------------------------------------

class _Thread:
    """Per-thread execution state (one MTX epoch, possibly retried)."""

    def __init__(self) -> None:
        self.status = "running"        # running | committed | escalated
        self.pc = 0
        self.attempt = 1
        self.vid = 0
        self.committed_vid = 0
        #: ``(pc, value)`` observations of the *current* attempt.
        self.loads: List[Tuple[int, int]] = []


class _Run:
    """One exploration node: the real machine plus scheduler state."""

    def __init__(self, scenario: Scenario, shape: str,
                 inject: Optional[str] = None) -> None:
        self.scenario = scenario
        self.shape = shape
        self.inject = inject
        self.hierarchy, self.cores = build_hierarchy(scenario, shape)
        self.next_vid = scenario.vid_start
        self.threads = [_Thread() for _ in scenario.threads]
        self.committed_order: List[int] = []
        self.reset_done = False
        self.escalated = False
        self.schedule: List[int] = []
        self.abort_log: List[Tuple[int, str, int]] = []
        #: Violations raised mid-step, drained by :func:`step_and_check`.
        self.pending: List[Dict[str, Any]] = []
        if inject is not None:
            INJECTIONS[inject](self)

    def _fresh_vid(self, thread: int) -> int:
        # Keep headroom for the eff+1 successors the protocol mints
        # (forwarded-copy windows, overflow retrieval).
        cap = (1 << self.scenario.vid_bits) - 2
        if self.next_vid > cap:
            raise RuntimeError(
                f"scenario {self.scenario.name!r} exhausted the "
                f"{self.scenario.vid_bits}-bit VID space")
        vid = self.next_vid
        self.next_vid += 1
        return vid


# ----------------------------------------------------------------------
# Pure resolved-state reader
# ----------------------------------------------------------------------

def _resolved(cache: VersionedCache, slot: int) -> Optional[Tuple[int, int, int]]:
    """What ``(state, modVID, highVID)`` this slot folds to — *without*
    mutating anything.

    A pure mirror of ``VersionedCache._process_lazy_slot``: replays, in
    broadcast order, every event the line has not yet processed.  Because
    lazy folding is incremental and confluent (resolving now and then
    applying future events equals resolving later), hashing resolved
    triples is a sound state abstraction.  Returns ``None`` for slots
    that fold to INVALID.
    """
    store = cache._store
    code = store.state[slot]
    if code == CODE_INVALID:
        return None
    mod = store.mod_vid[slot]
    high = store.high_vid[slot]
    if store.epoch[slot] == cache._epoch or code < CODE_SM:
        return code, mod, high
    history = cache._abort_history
    seen = store.seen_aborts[slot]
    while seen < len(history):
        code, mod, high = commit_transition_code(code, mod, high,
                                                 history[seen])
        seen += 1
        code, mod, high = abort_transition_code(code, mod, high)
        if code == CODE_INVALID:
            return None
        if code < CODE_SM:
            return code, mod, high
    code, mod, high = commit_transition_code(code, mod, high, cache.lc_vid)
    if code == CODE_INVALID:
        return None
    return code, mod, high


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------

def enabled_events(run: _Run) -> List[int]:
    """The events a fair scheduler could fire next.

    Event ``i`` advances thread ``i``: its next op, or — once its program
    finished — its commit.  Group commit: a thread may commit only when
    its VID is the minimum among started running threads (commits happen
    in VID order; an epoch that has not started yet will draw a larger
    VID, so it never blocks an earlier commit).  ``RESET_EVENT`` is
    enabled exactly when everything committed and the reset has not
    happened yet.
    """
    if run.escalated:
        return []
    if all(t.status == "committed" for t in run.threads):
        return [] if run.reset_done else [RESET_EVENT]
    started = [t.vid for t in run.threads
               if t.status == "running" and t.vid > 0]
    min_vid = min(started) if started else 0
    stuck = getattr(run.hierarchy, "_commits_stuck", False)
    events = []
    for i, thread in enumerate(run.threads):
        if thread.status != "running":
            continue
        if thread.pc < len(run.scenario.threads[i]):
            events.append(i)
        elif thread.vid in (0, min_vid) and not stuck:
            events.append(i)
    return events


def step(run: _Run, event: int) -> None:
    """Fire one event on the run (mutates it in place)."""
    run.schedule.append(event)
    hierarchy = run.hierarchy
    if event == RESET_EVENT:
        hierarchy.vid_reset()
        run.reset_done = True
        return
    thread = run.threads[event]
    program = run.scenario.threads[event]
    if thread.vid == 0:
        # Lazy VID allocation: the epoch starts at its first action.
        thread.vid = run._fresh_vid(event)
    if thread.pc >= len(program):
        hierarchy.commit(thread.vid)
        thread.status = "committed"
        thread.committed_vid = thread.vid
        run.committed_order.append(event)
        return
    op = program[thread.pc]
    core = run.cores[event]
    try:
        if op[0] == "load":
            result = hierarchy.load(core, op[1], thread.vid)
            thread.loads.append((thread.pc, result.value))
        else:
            hierarchy.store(core, op[1], thread.vid, op[2])
    except MisspeculationError as exc:
        _handle_abort(run, event, exc)
        return
    thread.pc += 1


def _has_blocker(run: _Run, exc: MisspeculationError) -> bool:
    """Is there a conflicting speculative version justifying this abort?

    A blocker is any resolved speculative version of the faulting line
    created by another transaction (``modVID`` set and different from the
    aborting VID) or read by a strictly different one (``highVID`` set,
    differing from both the aborting VID and its own ``modVID``).
    """
    base = run.hierarchy.l2.line_addr(exc.addr)
    eff = exc.vid
    for cache in run.hierarchy._caches:
        for slot in cache._by_base.get(base, ()):
            resolved = _resolved(cache, slot)
            if resolved is None:
                continue
            code, mod, high = resolved
            if code < CODE_SM:
                continue
            if mod > 0 and mod != eff:
                return True
            if high > 0 and high != eff and high != mod:
                return True
    return False


def _handle_abort(run: _Run, event: int, exc: MisspeculationError) -> None:
    """Group abort: every running transaction restarts with a fresh VID."""
    cause = exc.cause.name if exc.cause is not None else "UNKNOWN"
    run.abort_log.append((event, cause, exc.addr or 0))
    if exc.cause is AbortCause.CONFLICT and not _has_blocker(run, exc):
        run.pending.append({
            "rule": "EX004",
            "message": f"spurious abort: thread {event} aborted at "
                       f"0x{(exc.addr or 0):x} with no conflicting "
                       f"speculative version anywhere",
            "detail": str(exc),
        })
    run.hierarchy.abort()
    for thread in run.threads:
        if thread.status != "running":
            continue
        thread.attempt += 1
        thread.pc = 0
        thread.loads = []
        thread.vid = 0  # re-allocated lazily at the retry's first action
        if thread.attempt > run.scenario.max_attempts:
            # txctl escalation ladder: retries exhausted, the software
            # falls back to non-speculative serial execution.  Genuine
            # livelock, not a checker violation — recorded as coverage.
            thread.status = "escalated"
            run.escalated = True


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------

def _violation(run: _Run, rule: str, message: str, detail: str) -> Dict[str, Any]:
    return {"rule": rule, "message": message, "detail": detail,
            "schedule": list(run.schedule)}


def _expected_committed(run: _Run) -> Dict[int, int]:
    """Fold the committed transactions' stores in commit order."""
    memory: Dict[int, int] = {addr: 0 for addr in run.scenario.addrs}
    for idx in run.committed_order:
        for op in run.scenario.threads[idx]:
            if op[0] == "store":
                memory[op[1]] = op[2]
    return memory


def _check_committed_view(run: _Run) -> List[Dict[str, Any]]:
    """EX002 (+ the EX003 unique-hit corollary) on the current state."""
    violations = []
    expected = _expected_committed(run)
    hierarchy = run.hierarchy
    for addr in run.scenario.addrs:
        want = expected[addr]
        word = hierarchy._word(addr)
        hit_anywhere = False
        for cache in hierarchy._caches:
            hits = []
            for slot in cache._by_base.get(addr, ()):
                resolved = _resolved(cache, slot)
                if resolved is None:
                    continue
                code, mod, high = resolved
                if version_hits_code(code, mod, high, cache.lc_vid):
                    hits.append((slot, code, mod, high))
            if len(hits) > 1:
                violations.append(_violation(
                    run, "EX003",
                    f"{cache.name}: two resolved versions of 0x{addr:x} "
                    f"hit the committed view (LC_VID {cache.lc_vid})",
                    f"versions: {[(c, m, h) for _, c, m, h in hits]}"))
                continue
            if hits:
                hit_anywhere = True
                slot = hits[0][0]
                got = cache._store.data[slot][word]
                if got != want:
                    violations.append(_violation(
                        run, "EX002",
                        f"lost update at 0x{addr:x}: {cache.name} "
                        f"committed view reads {got}, expected {want}",
                        f"committed order {list(run.committed_order)}, "
                        f"version {hits[0][1:]}, LC_VID {cache.lc_vid}"))
        if not hit_anywhere:
            got = hierarchy.memory.read_word(addr)
            if got != want:
                violations.append(_violation(
                    run, "EX002",
                    f"lost update at 0x{addr:x}: no cached committed "
                    f"copy and memory reads {got}, expected {want}",
                    f"committed order {list(run.committed_order)}"))
    return violations


def check_machine(run: _Run) -> List[Dict[str, Any]]:
    """EX003 structural invariants + EX002 committed view, every step."""
    try:
        run.hierarchy.check_invariants()
        if isinstance(run.hierarchy, DirectoryHierarchy):
            run.hierarchy.check_directory_invariant()
    except AssertionError as exc:
        return [_violation(
            run, "EX003",
            "machine invariant violated after step", str(exc))]
    return _check_committed_view(run)


def _check_serializability(run: _Run) -> List[Dict[str, Any]]:
    """EX001: committed observations equal the sequential commit-order run."""
    violations = []
    memory: Dict[int, int] = {}
    for idx in run.committed_order:
        thread = run.threads[idx]
        observed = dict(thread.loads)
        for pc, op in enumerate(run.scenario.threads[idx]):
            if op[0] == "store":
                memory[op[1]] = op[2]
                continue
            want = memory.get(op[1], 0)
            got = observed.get(pc)
            if got != want:
                violations.append(_violation(
                    run, "EX001",
                    f"not serializable: thread {idx} (committed VID "
                    f"{thread.committed_vid}) load pc={pc} of "
                    f"0x{op[1]:x} observed {got}, sequential replay in "
                    f"commit order gives {want}",
                    f"committed order {list(run.committed_order)}"))
    return violations


def leaf_checks(run: _Run) -> List[Dict[str, Any]]:
    """Checks at states with no enabled events (EX004 deadlock + EX001)."""
    violations = []
    if not run.reset_done and not run.escalated:
        stalled = [i for i, t in enumerate(run.threads)
                   if t.status != "committed"]
        violations.append(_violation(
            run, "EX004",
            f"deadlock: no enabled event but threads {stalled} have not "
            f"committed",
            f"statuses {[t.status for t in run.threads]}, "
            f"vids {[t.vid for t in run.threads]}"))
    violations.extend(_check_serializability(run))
    return violations


def step_and_check(run: _Run, event: int) -> List[Dict[str, Any]]:
    """Fire ``event`` and run the per-step rules; returns violations."""
    violations = []
    try:
        step(run, event)
    except AssertionError as exc:
        violations.append(_violation(
            run, "EX003", "machine invariant violated during step",
            str(exc)))
    for item in run.pending:
        violations.append(_violation(run, item["rule"], item["message"],
                                     item["detail"]))
    run.pending = []
    if not violations:
        violations.extend(check_machine(run))
    return violations


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------

def _encode(run: _Run, amap: Optional[Dict[int, int]],
            tperm: Optional[Sequence[int]], sperm: Sequence[int],
            vmap: Optional[Dict[int, int]]) -> Tuple:
    """Encode the behavioral state under an (address, thread, socket)
    relabeling and a VID renaming.

    Encodes only what future behavior depends on: resolved slot triples
    plus data and relative LRU order, per-cache ``LC_VID``, memory words
    at the scenario addresses, thread tuples, commit order and the
    scheduler flags.  Excluded as behaviorally irrelevant (argument in
    DESIGN.md §15): timing state, statistics, abort-history tails
    (subsumed by resolution), the conservative directory sharer map.
    """
    scenario = run.scenario
    n = len(run.threads)
    if tperm is None:
        tperm = range(n)
    inverse = {old: role for role, old in enumerate(tperm)}

    def a(addr: int) -> int:
        return amap[addr] if amap else addr

    def v(vid: int) -> int:
        return vmap[vid] if vmap and vid > 0 else vid

    caches = [run.hierarchy.l1s[run.cores[old]] for old in tperm]
    caches.extend(run.hierarchy.llc_slices[s] for s in sperm)
    cache_enc = []
    for cache in caches:
        slots = []
        for base, bucket in cache._by_base.items():
            for slot in bucket:
                resolved = _resolved(cache, slot)
                if resolved is None:
                    continue
                code, mod, high = resolved
                slots.append((cache._store.lru_tick[slot], a(base), code,
                              v(mod), v(high),
                              tuple(cache._store.data[slot])))
        slots.sort()
        cache_enc.append((v(cache.lc_vid),
                          tuple(entry[1:] for entry in slots)))
    memory = run.hierarchy.memory
    mem_enc = tuple(sorted(
        (a(addr), memory.read_word(addr)) for addr in scenario.addrs))
    thread_enc = []
    for old in tperm:
        thread = run.threads[old]
        thread_enc.append((thread.status, thread.pc, thread.attempt,
                           v(thread.vid), v(thread.committed_vid),
                           tuple(thread.loads)))
    order_enc = tuple(inverse[old] for old in run.committed_order)
    return (tuple(cache_enc), mem_enc, tuple(thread_enc), order_enc,
            v(run.next_vid), run.reset_done, run.escalated)


def _vid_ranks(run: _Run) -> Dict[int, int]:
    """Order-isomorphic VID renaming: map every live VID to its rank.

    Sound because every comparison the protocol makes against a VID tag
    is an order comparison (``>=`` / ``<`` for hit windows, commit folds
    and the ``eff + 1`` successor caps) or an equality test against a
    ``modVID`` tag, and both are preserved by any order-preserving
    bijection of the values actually present in the state (0 stays 0).
    Two runs whose VID assignments differ only by such a renaming —
    a uniform offset, post-abort gaps, mirrored allocation order —
    canonicalize identically; the hypothesis property pins the quotient.
    """
    vids = {t.vid for t in run.threads if t.vid > 0}
    vids.update(t.committed_vid for t in run.threads if t.committed_vid > 0)
    vids.add(run.next_vid)
    for cache in run.hierarchy._caches:
        if cache.lc_vid > 0:
            vids.add(cache.lc_vid)
        for bucket in cache._by_base.values():
            for slot in bucket:
                resolved = _resolved(cache, slot)
                if resolved is None:
                    continue
                _, mod, high = resolved
                if mod > 0:
                    vids.add(mod)
                if high > 0:
                    vids.add(high)
    return {vid: rank for rank, vid in enumerate(sorted(vids), start=1)}


def _mirror_mapping(run: _Run):
    """The 2-socket line-swap automorphism, when the scenario admits it.

    ``sigma(addr) = addr XOR line_size`` swaps home sockets (line-index
    parity flips) and is a geometry automorphism of the symmetric
    2-socket machine.  Valid only when it permutes the scenario addresses
    and some thread permutation maps the programs onto each other while
    swapping sockets.  Returns ``(amap, tperm, sperm)`` or ``None``.
    """
    if run.shape != "2socket":
        return None
    topo = run.hierarchy.config.topology
    addrs = run.scenario.addrs
    amap = {addr: addr ^ _LINE for addr in addrs}
    if sorted(amap.values()) != sorted(addrs):
        return None

    def mapped_program(program):
        return tuple(
            ("load", amap[op[1]]) if op[0] == "load"
            else ("store", amap[op[1]], op[2])
            for op in program)

    programs = run.scenario.threads
    n = len(programs)
    for perm in permutations(range(n)):
        if any(mapped_program(programs[perm[i]]) != programs[i]
               for i in range(n)):
            continue
        if all(topo.socket_of_core(run.cores[perm[i]])
               == 1 - topo.socket_of_core(run.cores[i])
               for i in range(n)):
            return amap, list(perm), (1, 0)
    return None


def canonical_key(run: _Run, reduce: bool = True) -> Tuple:
    """The state's canonical encoding (quotient key for the visited set)."""
    sperm = tuple(range(len(run.hierarchy.llc_slices)))
    if not reduce:
        return _encode(run, None, None, sperm, None)
    vmap = _vid_ranks(run)
    key = _encode(run, None, None, sperm, vmap)
    mirror = _mirror_mapping(run)
    if mirror is not None:
        amap, tperm, msperm = mirror
        key = min(key, _encode(run, amap, tperm, msperm, vmap))
    return key


# ----------------------------------------------------------------------
# Exploration
# ----------------------------------------------------------------------

class Explorer:
    """Exhaustive DFS over the canonical quotient of the schedule space."""

    def __init__(self, scenario: Scenario, shape: str = "flat",
                 inject: Optional[str] = None, reduce: bool = True,
                 max_states: int = DEFAULT_MAX_STATES,
                 max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        self.scenario = scenario
        self.shape = shape
        self.inject = inject
        self.reduce = reduce
        self.max_states = max_states
        self.max_depth = max_depth
        self.visited: Set[Tuple] = set()
        self.violations: List[Dict[str, Any]] = []
        self.states = 0
        self.transitions = 0
        self.dedup_hits = 0
        self.leaves = 0
        self.exhausted = True

    def run(self) -> List[Dict[str, Any]]:
        root = _Run(self.scenario, self.shape, self.inject)
        self.visited.add(canonical_key(root, self.reduce))
        self.states = 1
        stack = [root]
        while stack:
            node = stack.pop()
            events = enabled_events(node)
            if not events:
                self.leaves += 1
                self.violations.extend(leaf_checks(node))
                continue
            if len(node.schedule) >= self.max_depth:
                self.exhausted = False
                continue
            for event in reversed(events):
                if self.states >= self.max_states:
                    self.exhausted = False
                    break
                child = copy.deepcopy(node)
                self.transitions += 1
                violations = step_and_check(child, event)
                if violations:
                    # Record and prune: everything below a violating
                    # transition reproduces it.
                    self.violations.extend(violations)
                    continue
                key = canonical_key(child, self.reduce)
                if key in self.visited:
                    self.dedup_hits += 1
                    continue
                self.visited.add(key)
                self.states += 1
                stack.append(child)
        return self.violations


# ----------------------------------------------------------------------
# Replay, minimization, artifacts
# ----------------------------------------------------------------------

def _replay(scenario: Scenario, shape: str, inject: Optional[str],
            schedule: Sequence[int]) -> Optional[List[Dict[str, Any]]]:
    """Replay a schedule from scratch.

    Returns ``None`` when the schedule is not executable (an event not
    enabled at its turn), the violations it triggers (possibly from the
    leaf checks when it runs to quiescence), or ``[]`` for a clean run.
    """
    run = _Run(scenario, shape, inject)
    for event in schedule:
        if event not in enabled_events(run):
            return None
        violations = step_and_check(run, event)
        if violations:
            return violations
    if not enabled_events(run):
        return leaf_checks(run)
    return []


def _ddmin(events: List[int], failing) -> List[int]:
    """Classic delta debugging over the event list."""
    granularity = 2
    while len(events) >= 2:
        chunk = max(1, len(events) // granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk:]
            if candidate and failing(candidate):
                events = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return events


def minimize(scenario: Scenario, shape: str, inject: Optional[str],
             schedule: Sequence[int], rule: str) -> List[int]:
    """Delta-debug a violating schedule down to a minimal reproducer."""

    def failing(candidate: List[int]) -> bool:
        result = _replay(scenario, shape, inject, candidate)
        return result is not None and any(v["rule"] == rule for v in result)

    events = list(schedule)
    if not failing(events):
        return events
    return _ddmin(events, failing)


def _schedule_label(schedule: Sequence[int]) -> str:
    return ",".join("R" if e == RESET_EVENT else str(e) for e in schedule)


def counterexample_doc(scenario: Scenario, shape: str,
                       inject: Optional[str], rule: str, message: str,
                       detail: str, schedule: Sequence[int]) -> Dict[str, Any]:
    """Self-contained replayable counterexample artifact."""
    return {
        "schema": COUNTEREXAMPLE_SCHEMA,
        "rule": rule,
        "shape": shape,
        "inject": inject,
        "message": message,
        "detail": detail,
        "schedule": list(schedule),
        "scenario": {
            "name": scenario.name,
            "threads": [[list(op) for op in program]
                        for program in scenario.threads],
            "addrs": list(scenario.addrs),
            "vid_bits": scenario.vid_bits,
            "max_attempts": scenario.max_attempts,
            "vid_start": scenario.vid_start,
        },
    }


def scenario_from_doc(doc: Dict[str, Any]) -> Scenario:
    """Rebuild the frozen scenario a counterexample artifact embeds."""
    spec = doc["scenario"]
    return Scenario(
        name=spec["name"],
        threads=tuple(tuple(tuple(op) for op in program)
                      for program in spec["threads"]),
        addrs=tuple(spec["addrs"]),
        vid_bits=spec["vid_bits"],
        max_attempts=spec["max_attempts"],
        vid_start=spec["vid_start"])


def replay_counterexample(doc: Dict[str, Any]) -> List[str]:
    """Replay an artifact; returns the rules its schedule violates."""
    if doc.get("schema") != COUNTEREXAMPLE_SCHEMA:
        raise ValueError(f"not a {COUNTEREXAMPLE_SCHEMA} artifact: "
                         f"{doc.get('schema')!r}")
    scenario = scenario_from_doc(doc)
    result = _replay(scenario, doc["shape"], doc.get("inject"),
                     doc["schedule"])
    if result is None:
        return []
    return [violation["rule"] for violation in result]


# ----------------------------------------------------------------------
# Mutation hooks
# ----------------------------------------------------------------------
#
# Each injection breaks the machine in one specific way so the EX rules
# can be proven to bite.  All overrides are module-level functions bound
# with ``types.MethodType`` (never closures): ``copy.deepcopy`` rebinds
# bound methods to the copied instance, so the bug survives the
# explorer's state snapshots.

def _broken_fold_commit(self, vid: int) -> None:
    # Drops the LC_VID update: commits are never folded into this cache.
    self._epoch += 1
    self.stats.commit_broadcasts += 1


def _inject_broken_fold(run: _Run) -> None:
    l1 = run.hierarchy.l1s[run.cores[0]]
    l1.broadcast_commit = types.MethodType(_broken_fold_commit, l1)


def _broken_scrub_reset(self) -> None:
    # The real scrub, then one stale speculative residue left behind — a
    # line the section 4.6 sweep "missed".
    VersionedCache.vid_reset(self)
    if self._scrub_bug_done:
        return
    self._scrub_bug_done = True
    residue = CacheLine(self._scrub_bug_addr, State.SO,
                        [0] * self._scrub_bug_words, 0, 1)
    residue.epoch = self._epoch
    self._inject_line(residue)


def _inject_broken_scrub(run: _Run) -> None:
    l1 = run.hierarchy.l1s[run.cores[0]]
    l1._scrub_bug_done = False
    l1._scrub_bug_addr = run.scenario.addrs[0]
    l1._scrub_bug_words = run.hierarchy.memory.words_per_line
    l1.vid_reset = types.MethodType(_broken_scrub_reset, l1)


def _broken_forward_receive(self, core, owner_cache, owner, vid, kind):
    # Corrupts the data word of forwarded speculative (S-S) copies.
    line = MemoryHierarchy._receive_from_owner(
        self, core, owner_cache, owner, vid, kind)
    if line.state is State.SS:
        line.data[0] ^= 0x5A
    return line


def _inject_broken_forward(run: _Run) -> None:
    hierarchy = run.hierarchy
    hierarchy._receive_from_owner = types.MethodType(
        _broken_forward_receive, hierarchy)


def _broken_presence_on(self, cache, base, present):
    # Drops presence-map additions; removals still land.
    if present:
        return
    MemoryHierarchy._on_presence(self, cache, base, present)


def _inject_broken_presence(run: _Run) -> None:
    hierarchy = run.hierarchy
    hierarchy._on_presence = types.MethodType(_broken_presence_on, hierarchy)
    # The caches captured the bound listener at construction: repoint it.
    for cache in hierarchy._caches:
        cache.presence_listener = hierarchy._on_presence


def _broken_sharers_install(self, cache, line):
    # Bypasses the directory's eager sharer recording on install.
    return MemoryHierarchy._install(self, cache, line)


def _broken_sharers_record(self, cache, addr):
    pass


def _inject_broken_sharers(run: _Run) -> None:
    hierarchy = run.hierarchy
    if not isinstance(hierarchy, DirectoryHierarchy):
        return  # no directory to break on the flat machine
    hierarchy._install = types.MethodType(_broken_sharers_install, hierarchy)
    hierarchy._record_presence = types.MethodType(
        _broken_sharers_record, hierarchy)


def _skewed_read_load(self, core, addr, vid, now=0):
    # One-shot observation corruption: the machine state stays fully
    # consistent (EX002/EX003 hold), only the value handed to the core
    # is wrong — exactly the class of bug only end-to-end
    # serializability (EX001) can catch.
    result = MemoryHierarchy.load(self, core, addr, vid, now)
    if not self._skew_fired and vid > 0:
        self._skew_fired = True
        result.value ^= 0x1
    return result


def _inject_skewed_read(run: _Run) -> None:
    hierarchy = run.hierarchy
    hierarchy._skew_fired = False
    hierarchy.load = types.MethodType(_skewed_read_load, hierarchy)


def _inject_stuck_commit(run: _Run) -> None:
    # Commits never become enabled: the schedule wedges once every
    # thread finished its ops (EX004 deadlock).
    run.hierarchy._commits_stuck = True


def _phantom_abort_store(self, core, addr, vid, value, now=0):
    # One-shot conflict signal with no conflicting version behind it.
    if not self._phantom_fired:
        self._phantom_fired = True
        raise MisspeculationError(
            f"phantom conflict on store with VID {vid}",
            vid=vid, addr=addr, cause=AbortCause.CONFLICT)
    return MemoryHierarchy.store(self, core, addr, vid, value, now)


def _inject_phantom_abort(run: _Run) -> None:
    hierarchy = run.hierarchy
    hierarchy._phantom_fired = False
    hierarchy.store = types.MethodType(_phantom_abort_store, hierarchy)


INJECTIONS = {
    "broken-fold": _inject_broken_fold,
    "broken-scrub": _inject_broken_scrub,
    "broken-forward": _inject_broken_forward,
    "broken-presence": _inject_broken_presence,
    "broken-sharers": _inject_broken_sharers,
    "skewed-read": _inject_skewed_read,
    "stuck-commit": _inject_stuck_commit,
    "phantom-abort": _inject_phantom_abort,
}

#: Rules each injection may legitimately trip (mutation tests assert the
#: reported rules are a non-empty subset).
EXPECTED_INJECTION_RULES = {
    "broken-fold": {"EX002"},
    "broken-scrub": {"EX002", "EX003"},
    "broken-forward": {"EX001", "EX002"},
    "broken-presence": {"EX003"},
    "broken-sharers": {"EX003"},
    "skewed-read": {"EX001"},
    "stuck-commit": {"EX004"},
    "phantom-abort": {"EX004"},
}

#: The shape each injection's bug is reachable on ("flat" works for all
#: but the directory-specific one).
INJECTION_SHAPES = {
    "broken-fold": ("flat", "2socket"),
    "broken-scrub": ("flat", "2socket"),
    "broken-forward": ("flat", "2socket"),
    "broken-presence": ("flat", "2socket"),
    "broken-sharers": ("2socket",),
    "skewed-read": ("flat", "2socket"),
    "stuck-commit": ("flat", "2socket"),
    "phantom-abort": ("flat", "2socket"),
}


# ----------------------------------------------------------------------
# Pass entry point
# ----------------------------------------------------------------------

def explore_pass(preset: str = "small",
                 shapes: Sequence[str] = SHAPES,
                 inject: Optional[str] = None,
                 reduce: bool = True,
                 max_states: int = DEFAULT_MAX_STATES,
                 max_depth: int = DEFAULT_MAX_DEPTH,
                 emit_dir: Optional[str] = None) -> PassReport:
    """Run the explorer over a preset on the requested machine shapes.

    Deterministic and seed-free: the DFS order, the canonical encoding
    and the minimizer are all pure functions of (scenario, shape, code),
    so repeated runs produce byte-identical reports.  Violating schedules
    are minimized and attached to their findings as replayable
    counterexample artifacts; ``emit_dir`` additionally writes each as a
    JSON file.
    """
    if preset not in EXPLORE_PRESETS:
        raise ValueError(f"unknown preset {preset!r} "
                         f"(expected one of {sorted(EXPLORE_PRESETS)})")
    if inject is not None and inject not in INJECTIONS:
        raise ValueError(f"unknown injection {inject!r} "
                         f"(expected one of {sorted(INJECTIONS)})")
    scenario = EXPLORE_PRESETS[preset]
    findings: List[Finding] = []
    coverage: Dict[str, Any] = {
        "preset": preset,
        "reduce": reduce,
        "rules": "EX001,EX002,EX003,EX004",
    }
    if inject is not None:
        coverage["inject"] = inject
    total = 0
    emitted = 0
    for shape in shapes:
        if inject is not None and shape not in INJECTION_SHAPES[inject]:
            continue
        explorer = Explorer(scenario, shape, inject=inject, reduce=reduce,
                            max_states=max_states, max_depth=max_depth)
        violations = explorer.run()
        coverage[f"{shape}_states"] = explorer.states
        coverage[f"{shape}_transitions"] = explorer.transitions
        coverage[f"{shape}_dedup_hits"] = explorer.dedup_hits
        coverage[f"{shape}_leaves"] = explorer.leaves
        coverage[f"{shape}_exhausted"] = explorer.exhausted
        total += len(violations)
        per_rule: Dict[str, int] = {}
        for violation in violations:
            rule = violation["rule"]
            per_rule[rule] = per_rule.get(rule, 0) + 1
            if per_rule[rule] > MAX_FINDINGS_PER_RULE:
                continue
            schedule = minimize(scenario, shape, inject,
                                violation["schedule"], rule)
            doc = counterexample_doc(scenario, shape, inject, rule,
                                     violation["message"],
                                     violation["detail"], schedule)
            if emit_dir is not None:
                emitted += 1
                path = Path(emit_dir)
                path.mkdir(parents=True, exist_ok=True)
                name = f"{preset}-{shape}-{rule}-{per_rule[rule]:02d}.json"
                (path / name).write_text(
                    json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
            findings.append(Finding(
                rule=rule, severity=SEVERITY_ERROR,
                where=f"{preset}/{shape} schedule "
                      f"[{_schedule_label(schedule)}]",
                message=violation["message"],
                detail=violation["detail"],
                counterexample=doc))
    coverage["violations"] = total
    if emit_dir is not None:
        coverage["emitted"] = emitted
    return PassReport(name="explore", findings=findings, coverage=coverage)
