"""Offline race/ordering detector over recorded MTX trace event streams.

Input is a :class:`~repro.trace.events.TraceEvent` sequence as recorded by
:class:`~repro.trace.capture.BackendTracer` (any registered backend) —
architectural loads/stores with values, commits, aborts, VID resets.  The
detector rebuilds the VID happens-before order and *replays* the paper's
MTX memory semantics over it:

* a store by VID ``v`` is **uncommitted** until ``commitMTX(v)``; an abort
  discards every uncommitted store; a commit folds VID ``v``'s stores into
  committed state;
* a load by VID ``a`` must observe the store of the **greatest VID
  <= a** among uncommitted stores (uncommitted value forwarding in VID
  order, section 3) falling back to committed state; VID 0 loads observe
  committed state only.

Any disagreement between the replay and the recorded load values is a
semantic violation of the protocol — a lost forwarded value, a leaked
aborted value, or a non-atomic group commit.  Ordering violations are
flagged directly from the event structure.

Rule catalog (DESIGN.md section 10):

``RC001`` lost/incorrect forwarded value
    A load observed a value different from the VID-ordered forwarding
    spec — e.g. a later-VID load that missed an earlier-VID uncommitted
    store, or that observed a value discarded by an abort.
``RC002`` group-commit atomicity / ordering
    Commits must occur in consecutive VID order (exactly the section 4.4
    contract), and no transaction may issue further speculative accesses
    under a VID that already committed (partial commit visibility).
``RC003`` abort attributed to a committed VID
    A misspeculation blamed on a VID at or below the commit horizon —
    the signature of stale wrong-path/SLA marks surviving a commit.
``RC004`` VID-recycling hazard
    A VID reset (section 4.6) while uncommitted speculative stores are
    still live — a recycled VID could alias the previous epoch's state.

The first traced load of a word initialised outside the traced window has
no replayable provenance: it is not judged, and its observed value is
adopted as the word's committed baseline (it must be — there is no
forwardable uncommitted store and no prior traced write).  Every later
load of the word is then fully checked, and the detector never reports a
false mismatch.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..trace.events import TraceEvent
from .findings import SEVERITY_ERROR, Finding, PassReport

#: Word granularity of value replay; matches
#: :data:`repro.coherence.memory.DEFAULT_WORD_SIZE`.
DEFAULT_WORD_SIZE = 8

#: Reported-finding cap per rule (all violations are counted).
MAX_FINDINGS_PER_RULE = 10


class _Replay:
    """The architectural memory state rebuilt from the event stream."""

    def __init__(self) -> None:
        #: word -> committed value (known only once a store establishes it).
        self.committed: Dict[int, int] = {}
        #: word -> {vid: value} uncommitted speculative stores.
        self.spec: Dict[int, Dict[int, int]] = {}
        self.last_committed = 0
        self.live_spec_stores = 0

    def store(self, vid: int, word: int, value: int) -> None:
        if vid == 0:
            self.committed[word] = value
            return
        bucket = self.spec.setdefault(word, {})
        if vid not in bucket:
            self.live_spec_stores += 1
        bucket[vid] = value

    def expected_load(self, vid: int, word: int) -> Optional[int]:
        """The value the forwarding spec requires, or None if unknown."""
        best_vid = -1
        value = None
        if vid > 0:
            for svid, sval in self.spec.get(word, {}).items():
                if svid <= vid and svid > best_vid:
                    best_vid, value = svid, sval
        if best_vid >= 0:
            return value
        return self.committed.get(word)

    def commit(self, vid: int) -> None:
        self.last_committed = vid
        for word, bucket in list(self.spec.items()):
            if vid in bucket:
                self.committed[word] = bucket.pop(vid)
                self.live_spec_stores -= 1
            if not bucket:
                del self.spec[word]

    def abort(self) -> None:
        self.spec.clear()
        self.live_spec_stores = 0

    def reset(self) -> None:
        self.last_committed = 0


def check_trace(events: Iterable[TraceEvent],
                word_size: int = DEFAULT_WORD_SIZE,
                label: str = "trace") -> PassReport:
    """Replay MTX semantics over one recorded event stream."""
    replay = _Replay()
    report = PassReport(name="racecheck")
    counts = {"events": 0, "loads_checked": 0, "loads_unknown_baseline": 0,
              "stores": 0, "commits": 0, "aborts": 0, "vid_resets": 0,
              "violations": 0}
    per_rule: Dict[str, int] = {}

    def emit(rule: str, event: TraceEvent, message: str, detail: str) -> None:
        counts["violations"] += 1
        per_rule[rule] = per_rule.get(rule, 0) + 1
        if per_rule[rule] <= MAX_FINDINGS_PER_RULE:
            report.findings.append(Finding(
                rule, SEVERITY_ERROR, f"{label} seq {event.seq}",
                message, detail + f" | event: {event.render().strip()}"))

    for event in events:
        counts["events"] += 1
        kind = event.kind
        if kind == "store":
            counts["stores"] += 1
            vid = event.vid or 0
            word = event.addr - (event.addr % word_size)
            if 0 < vid <= replay.last_committed:
                emit("RC002", event,
                     f"speculative store under already-committed VID {vid}",
                     f"commit horizon is {replay.last_committed}; a store "
                     "after the group commit breaks atomicity")
            replay.store(vid, word, event.value)
        elif kind == "load":
            vid = event.vid or 0
            word = event.addr - (event.addr % word_size)
            if 0 < vid <= replay.last_committed:
                emit("RC002", event,
                     f"speculative load under already-committed VID {vid}",
                     f"commit horizon is {replay.last_committed}")
            expected = replay.expected_load(vid, word)
            if expected is None:
                counts["loads_unknown_baseline"] += 1
                # First traced touch of this word: no forwardable store
                # and no committed knowledge, so the observed value IS
                # the pre-existing committed value.  Adopt it as the
                # baseline so every later load of the word is judged.
                if event.value is not None:
                    replay.committed[word] = event.value
            else:
                counts["loads_checked"] += 1
                if event.value != expected:
                    detail = _mismatch_provenance(replay, vid, word,
                                                  expected, event.value)
                    emit("RC001", event,
                         f"load(VID {vid}, 0x{word:x}) observed "
                         f"{event.value}, forwarding spec requires "
                         f"{expected}", detail)
        elif kind == "commit":
            counts["commits"] += 1
            vid = event.vid if event.vid is not None else -1
            expected = replay.last_committed + 1
            if vid != expected:
                emit("RC002", event,
                     f"commit of VID {vid} out of order",
                     f"expected the consecutive commit of VID {expected} "
                     "(section 4.4 group-commit contract)")
            if vid > 0:
                replay.commit(vid)
        elif kind == "abort":
            counts["aborts"] += 1
            replay.abort()
        elif kind == "misspeculation":
            if event.vid is not None and \
                    0 < event.vid <= replay.last_committed:
                emit("RC003", event,
                     f"abort attributed to VID {event.vid}, which already "
                     "committed",
                     f"commit horizon is {replay.last_committed}; stale "
                     "wrong-path/SLA marks are the usual culprit")
        elif kind == "vid_reset":
            counts["vid_resets"] += 1
            if replay.live_spec_stores:
                emit("RC004", event,
                     "VID reset with uncommitted speculative stores live",
                     f"{replay.live_spec_stores} uncommitted store(s) "
                     "would alias recycled VIDs of the new epoch")
            replay.abort()
            replay.reset()

    report.coverage = counts
    return report


def _mismatch_provenance(replay: _Replay, vid: int, word: int,
                         expected: int, observed) -> str:
    """Explain where a mismatched load value (probably) came from."""
    sources = []
    for svid, sval in sorted(replay.spec.get(word, {}).items()):
        if sval == observed:
            sources.append(f"uncommitted store by VID {svid}")
    if replay.committed.get(word) == observed:
        sources.append("committed state")
    candidates = sorted(v for v in replay.spec.get(word, {}) if v <= vid)
    forwarding = (f"forwardable VIDs <= {vid}: {candidates or 'none'}, "
                  f"committed={replay.committed.get(word, 'unknown')}")
    if sources:
        return f"observed value matches {', '.join(sources)}; {forwarding}"
    return f"observed value has no traced provenance; {forwarding}"
