"""``python -m repro analyze`` — run the static/dynamic analysis passes.

With no pass flags the three default passes run (model check, racecheck,
lint); ``--explore`` opts into the interleaving-level stateful model
checker (``repro.analysis.explore``), which drives the real coherence
stack through every schedule of a bounded scenario preset.  Exit status
is 0 when every selected pass is clean, 1 when any pass produced an
error-severity finding — which is what the CI ``analysis`` job keys
off.  ``--format json`` emits the machine-readable
``hmtx-analysis-report/1`` schema for tooling; ``--output`` tees the
report to a file (the CI counterexample artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .findings import AnalysisReport, PassReport


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="protocol model checker, MTX trace race detector and "
                    "repo lint (DESIGN.md section 10)")
    parser.add_argument("--modelcheck", action="store_true",
                        help="exhaustively check the coherence protocol "
                             "over the full VID space")
    parser.add_argument("--racecheck", action="store_true",
                        help="trace every backend over the workload suite "
                             "and replay MTX semantics")
    parser.add_argument("--lint", action="store_true",
                        help="run the repo-specific AST lint over src/")
    parser.add_argument("--explore", action="store_true",
                        help="run the interleaving explorer (EX001-EX004) "
                             "over a bounded scenario preset")
    parser.add_argument("--vid-bits", type=int, default=6, metavar="M",
                        help="VID width for the model checker "
                             "(default: the paper's m=6)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale for racecheck traces "
                             "(default 0.25, the CI quick scale)")
    parser.add_argument("--backends", default=None, metavar="A,B",
                        help="comma-separated backends to racecheck "
                             "(default: every registered backend)")
    parser.add_argument("--workloads", default=None, metavar="W,X",
                        help="comma-separated workloads to racecheck "
                             "(default: Table 1 suite + contended-list)")
    parser.add_argument("--paths", nargs="*", default=None,
                        help="files/directories to lint "
                             "(default: the repro package)")
    parser.add_argument("--preset", default="small", metavar="NAME",
                        help="explorer scenario preset "
                             "(small | chain | scrub; default small)")
    parser.add_argument("--shapes", default=None, metavar="S,T",
                        help="comma-separated machine shapes to explore "
                             "(default: flat,2socket)")
    parser.add_argument("--inject", default=None, metavar="BUG",
                        help="explore with a mutation hook enabled "
                             "(mutation-kill gate; see INJECTIONS)")
    parser.add_argument("--max-states", type=int, default=None, metavar="N",
                        help="explorer state budget "
                             "(default 20000; exhaustion is reported)")
    parser.add_argument("--depth", type=int, default=None, metavar="D",
                        help="explorer schedule-depth budget (default 80)")
    parser.add_argument("--no-reduce", action="store_true",
                        help="disable the canonicalization quotient "
                             "(VID renaming + socket mirror)")
    parser.add_argument("--emit-counterexamples", default=None,
                        metavar="DIR",
                        help="write each minimized counterexample as a "
                             "replayable JSON artifact under DIR")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the report (in the chosen "
                             "format) to FILE")
    return parser


def _split(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item for item in (part.strip() for part in value.split(","))
            if item]


def run_passes(args: argparse.Namespace) -> AnalysisReport:
    selected_all = not (args.modelcheck or args.racecheck or args.lint
                        or args.explore)
    passes: List[PassReport] = []
    if args.modelcheck or selected_all:
        from .modelcheck import check_protocol, check_topology_structure  # lint-ok: RL005 (each pass loads only when selected so `analyze --lint` stays import-light)
        passes.append(check_protocol(vid_bits=args.vid_bits))
        passes.append(check_topology_structure())
    if args.racecheck or selected_all:
        from .traces import racecheck_backends  # lint-ok: RL005 (pulls in the full backend/runtime stack; loaded only when the pass is selected)
        passes.append(racecheck_backends(backends=_split(args.backends),
                                         workloads=_split(args.workloads),
                                         scale=args.scale))
    if args.lint or selected_all:
        from .lint import lint_paths  # lint-ok: RL005 (symmetry with the other passes; loaded only when selected)
        paths = [Path(p) for p in args.paths] if args.paths else None
        passes.append(lint_paths(paths))
    if args.explore:
        # Opt-in only: deliberately not part of the default pass set —
        # exploring deep-copies the full hierarchy per transition.
        from .explore import DEFAULT_MAX_DEPTH, DEFAULT_MAX_STATES, SHAPES, explore_pass  # lint-ok: RL005 (each pass loads only when selected so `analyze --lint` stays import-light)
        passes.append(explore_pass(
            preset=args.preset,
            shapes=tuple(_split(args.shapes) or SHAPES),
            inject=args.inject,
            reduce=not args.no_reduce,
            max_states=(args.max_states if args.max_states is not None
                        else DEFAULT_MAX_STATES),
            max_depth=(args.depth if args.depth is not None
                       else DEFAULT_MAX_DEPTH),
            emit_dir=args.emit_counterexamples))
    return AnalysisReport(passes=passes)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    report = run_passes(args)
    rendered = json.dumps(report.to_json(), indent=2, sort_keys=True) \
        if args.fmt == "json" else report.format_text()
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    sys.stdout.write(rendered + "\n")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
