"""Benchmark: regenerate Figure 8 (the headline speedup comparison)."""

from conftest import run_once

from repro.experiments import format_fig8, run_fig8
from repro.experiments.fig8_speedup import (
    PAPER_GEOMEAN_HMTX_ALL,
    PAPER_GEOMEAN_SMTX_COMPARABLE,
)


def test_fig8_hot_loop_speedup(benchmark, runner):
    result = run_once(benchmark, run_fig8, runner=runner)
    print("\n" + format_fig8(result))
    # Paper: HMTX 1.99x (All) / 2.02x (Comp.) vs SMTX 1.44x.
    assert result.geomean_hmtx_all == PAPER_GEOMEAN_HMTX_ALL \
        or abs(result.geomean_hmtx_all - PAPER_GEOMEAN_HMTX_ALL) < 0.25
    assert result.geomean_hmtx_comparable > result.geomean_smtx_comparable
    assert abs(result.geomean_smtx_comparable
               - PAPER_GEOMEAN_SMTX_COMPARABLE) < 0.35
    # Every benchmark achieves profitable parallelisation with *maximal*
    # validation, and sequential semantics hold.
    for row in result.rows.values():
        assert row.hmtx_speedup > 1.4, row.benchmark
        assert row.correct, row.benchmark
