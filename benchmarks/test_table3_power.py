"""Benchmark: regenerate Table 3 (area, power, energy)."""

import pytest
from conftest import run_once

from repro.experiments import format_table3, run_table3


def test_table3_area_power_energy(benchmark, runner):
    result = run_once(benchmark, run_table3, runner=runner)
    print("\n" + format_table3(result))
    # Published anchors: 107.1 -> 111.1 mm^2, 5.515 -> 5.607 W.
    assert result.area_commodity == pytest.approx(107.1, abs=0.5)
    assert result.area_hmtx == pytest.approx(111.1, abs=0.5)
    assert result.leakage_commodity == pytest.approx(5.515, abs=0.05)
    assert result.leakage_hmtx == pytest.approx(5.607, abs=0.05)
    # Energy story: HMTX beats SMTX (it finishes sooner); HMTX hardware
    # taxes software that ignores it by ~1%.
    rows = result.rows
    assert rows["HMTX-hw / HMTX, Max R/W (Comp.)"].energy_j \
        < rows["HMTX-hw / SMTX, Min R/W"].energy_j
    seq_plain = rows["Commodity / Sequential (All)"].dynamic_w
    seq_taxed = rows["HMTX-hw / Sequential (All)"].dynamic_w
    assert seq_plain < seq_taxed < seq_plain * 1.02
