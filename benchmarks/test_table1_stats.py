"""Benchmark: regenerate Table 1 (speculative-execution statistics)."""

from conftest import run_once

from repro.experiments import format_table1, run_table1


def test_table1_statistics(benchmark, runner):
    result = run_once(benchmark, run_table1, runner=runner)
    print("\n" + format_table1(result))
    m, p = result.measured, result.paper
    # Paradigm column matches exactly.
    for name in m:
        assert m[name].paradigm == p[name].paradigm, name
    # Branch density within 50% of the paper for every benchmark.
    for name in m:
        assert abs(m[name].branch_pct - p[name].branch_pct) \
            < 0.5 * p[name].branch_pct + 0.5, name
    # Transaction-size ordering: li largest, ispell smallest.
    accesses = {n: r.spec_accesses_per_tx for n, r in m.items()}
    assert max(accesses, key=accesses.get) == "130.li"
    assert min(accesses, key=accesses.get) == "ispell"
    # SLA need: ispell highest; hmmer/alvinn near the bottom.
    sla = {n: r.sla_pct_of_loads for n, r in m.items()}
    assert max(sla, key=sla.get) == "ispell"
    assert sla["456.hmmer"] < 5 and sla["052.alvinn"] < 5
    # Avoided-abort ordering: branch-heavy pointer-chasers lead.
    avoided = {n: r.aborts_avoided_per_tx for n, r in m.items()}
    assert avoided["130.li"] > avoided["456.hmmer"]
    assert avoided["130.li"] > avoided["052.alvinn"]
