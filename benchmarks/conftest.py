"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one published table or figure (or an ablation
of a design choice).  Simulation runs are seconds long, so benchmarks use
``benchmark.pedantic`` with a single round — the interesting output is the
regenerated artifact (printed with ``-s``) and the asserted shape, not
nanosecond timing stability.
"""

import pytest

from repro.experiments import BenchmarkRunner


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as a paper artifact.

    CI's tier-1 job deselects these with ``-m "not paper_artifact"``;
    they run on demand (``pytest benchmarks/ -s``) to regenerate the
    published tables and figures.
    """
    for item in items:
        item.add_marker(pytest.mark.paper_artifact)

#: One full-scale runner shared by the table/figure benchmarks so the
#: expensive per-benchmark runs are computed once per session.
_RUNNER = BenchmarkRunner(scale=1.0)


@pytest.fixture(scope="session")
def runner() -> BenchmarkRunner:
    return _RUNNER


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
