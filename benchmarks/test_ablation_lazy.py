"""Ablation: lazy vs eager commit processing (section 5.3).

The naive section 4.4 scheme walks every cache line at each commit; the
lazy scheme broadcasts in O(1) and defers per-line transitions to the next
touch.  Measures simulated commit cost and wall-clock simulation effort.
"""

import time

from conftest import run_once

from repro.core import HMTXSystem, MachineConfig

LINES = 400


def _populate(system):
    system.thread(0, core=0)
    vid = system.allocate_vid()
    system.begin_mtx(0, vid)
    for i in range(LINES):
        system.store(0, 0x10_0000 + i * 64, i)
    return vid


def _commit_lazy(system, vid):
    return system.commit_mtx(0, vid)


def _commit_eager(system, vid):
    """The naive scheme: commit, then immediately walk and transition
    every line in every cache (what Vachharajani's design required)."""
    latency = system.commit_mtx(0, vid)
    walked = 0
    for cache in system.hierarchy.l1s + [system.hierarchy.l2]:
        for line in list(cache.all_lines()):
            cache.process_lazy(line)
            walked += 1
    return latency + walked  # one cycle per explicitly processed line


def test_lazy_commit_is_constant_cost(benchmark):
    system = HMTXSystem(MachineConfig())
    vid = _populate(system)
    latency = run_once(benchmark, _commit_lazy, system, vid)
    print(f"\nlazy commit: {latency} cycles for a {LINES}-line write set")
    assert latency == system.config.hierarchy_config().broadcast_latency


def test_eager_commit_scales_with_write_set():
    small = HMTXSystem(MachineConfig())
    small.thread(0, core=0)
    v = small.allocate_vid()
    small.begin_mtx(0, v)
    small.store(0, 0x10_0000, 1)
    small_cost = _commit_eager(small, v)

    large = HMTXSystem(MachineConfig())
    large_vid = _populate(large)
    large_cost = _commit_eager(large, large_vid)
    print(f"\neager commit: {small_cost} cycles (1 line) vs "
          f"{large_cost} cycles ({LINES} lines)")
    assert large_cost > small_cost + LINES / 2
