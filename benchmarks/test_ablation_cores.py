"""Ablation: PS-DSWP scaling with core count (2 / 4 / 8).

The snoopy-bus design targets small core counts (the paper's future work
proposes a directory protocol for more); speedup should grow from 2 to 4
cores and keep growing — sublinearly — to 8.
"""

from conftest import run_once

from repro.core import MachineConfig
from repro.runtime import run_ps_dswp, run_sequential
from repro.workloads import LinkedListWorkload


def _speedup(num_cores: int) -> float:
    seq = run_sequential(LinkedListWorkload(nodes=48, work_cycles=600))
    workload = LinkedListWorkload(nodes=48, work_cycles=600)
    par = run_ps_dswp(workload, MachineConfig(num_cores=num_cores))
    assert workload.observed_result(par.system) == \
        workload.expected_result(par.system)
    return seq.cycles / par.cycles


def test_core_scaling(benchmark):
    sweep = {n: _speedup(n) for n in (2, 4, 8)}
    run_once(benchmark, _speedup, 4)
    print("\ncores  speedup")
    for cores, speedup in sweep.items():
        print(f"{cores:>5}  {speedup:.2f}x")
    assert sweep[4] > sweep[2]
    assert sweep[8] > sweep[4]
    # Sublinear: 8 cores deliver well under 2x the 4-core speedup
    # (bus + pipeline-structure limits).
    assert sweep[8] < 1.9 * sweep[4]
