"""Ablation: PS-DSWP scaling with core count (2 / 4 / 8, plus 64).

The snoopy-bus design targets small core counts (the paper's future work
proposes a directory protocol for more); speedup should grow from 2 to 4
cores and keep growing — sublinearly — to 8.  The 64-core point runs the
section 8 path instead: a 2-socket directory machine with sliced LLCs
(:mod:`repro.topology`), which must not be *worse* than the 8-core bus.
"""

from conftest import run_once

from repro.core import MachineConfig
from repro.runtime import run_ps_dswp, run_sequential
from repro.workloads import LinkedListWorkload


def _run_pair(config: MachineConfig) -> float:
    seq = run_sequential(LinkedListWorkload(nodes=48, work_cycles=600))
    workload = LinkedListWorkload(nodes=48, work_cycles=600)
    par = run_ps_dswp(workload, config)
    assert workload.observed_result(par.system) == \
        workload.expected_result(par.system)
    return seq.cycles / par.cycles


def _speedup(num_cores: int) -> float:
    return _run_pair(MachineConfig(num_cores=num_cores))


def _directory_speedup(preset: str) -> float:
    return _run_pair(MachineConfig.for_topology(preset))


def test_core_scaling(benchmark):
    sweep = {n: _speedup(n) for n in (2, 4, 8)}
    run_once(benchmark, _speedup, 4)
    print("\ncores  speedup")
    for cores, speedup in sweep.items():
        print(f"{cores:>5}  {speedup:.2f}x")
    assert sweep[4] > sweep[2]
    assert sweep[8] > sweep[4]
    # Sublinear: 8 cores deliver well under 2x the 4-core speedup
    # (bus + pipeline-structure limits).
    assert sweep[8] < 1.9 * sweep[4]


def test_directory_64_core_point(benchmark):
    """The 2-socket 64-core directory machine vs the 8-core snoopy bus.

    NUMA hops and the banked directory add latency per miss, but the bus
    serialisation is gone — on this pipeline workload the big machine
    must at least hold the 8-core bus speedup's ballpark, and the run
    must stay semantically correct (asserted inside the runner).
    """
    bus8 = _speedup(8)
    big = run_once(benchmark, _directory_speedup, "2s64c")
    print(f"\n8-core bus {bus8:.2f}x   2s64c directory {big:.2f}x")
    assert big > 0.8 * bus8
