"""Ablation: snoopy bus vs directory coherence across core counts.

Section 8: "Future work could adapt the HMTX coherence scheme to a
directory-based protocol to allow for efficient scaling to many more
cores."  Measures PS-DSWP speedup at 4/8/16 cores under both organisations.
"""

from conftest import run_once

from repro.core import MachineConfig
from repro.runtime import run_ps_dswp, run_sequential
from repro.workloads import LinkedListWorkload


def _speedup(coherence: str, num_cores: int) -> float:
    seq = run_sequential(LinkedListWorkload(nodes=64, work_cycles=900))
    workload = LinkedListWorkload(nodes=64, work_cycles=900)
    result = run_ps_dswp(workload,
                         MachineConfig(num_cores=num_cores, coherence=coherence),
                         stage2_workers=num_cores - 2)
    assert workload.observed_result(result.system) == \
        workload.expected_result(result.system)
    return seq.cycles / result.cycles


def test_directory_scaling(benchmark):
    sweep = {(coherence, cores): _speedup(coherence, cores)
             for coherence in ("snoopy", "directory")
             for cores in (4, 8, 16)}
    run_once(benchmark, _speedup, "directory", 16)
    print("\ncores  snoopy  directory")
    for cores in (4, 8, 16):
        print(f"{cores:>5}  {sweep[('snoopy', cores)]:.2f}x   "
              f"{sweep[('directory', cores)]:.2f}x")
    # At 4 cores the organisations are comparable...
    assert abs(sweep[("snoopy", 4)] - sweep[("directory", 4)]) < 0.5
    # ...and the directory pulls ahead as cores (and bus pressure) grow.
    assert sweep[("directory", 16)] > sweep[("snoopy", 16)]
    assert sweep[("directory", 16)] > sweep[("directory", 4)]
