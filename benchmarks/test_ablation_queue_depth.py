"""Ablation: bounded DSWP queue depth / live-transaction throttle.

Live transactions each pin a version of hot forwarded lines in one cache
set (section 5.4); unbounded run-ahead overflows the set and aborts.
Measures throughput across queue depths.
"""

from conftest import run_once

from repro.runtime import paradigms, run_ps_dswp
from repro.workloads import LinkedListWorkload


def _cycles_with_throttle(max_live: int) -> int:
    original = paradigms.base._MAX_LIVE_TRANSACTIONS
    paradigms.base._MAX_LIVE_TRANSACTIONS = max_live
    try:
        workload = LinkedListWorkload(nodes=48, work_cycles=300)
        result = run_ps_dswp(workload)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)
        return result.cycles, result.system.stats.aborted
    finally:
        paradigms.base._MAX_LIVE_TRANSACTIONS = original


def test_throttle_depth(benchmark):
    sweep = {}
    for depth in (2, 4, 8, 20):
        sweep[depth] = _cycles_with_throttle(depth)
    run_once(benchmark, _cycles_with_throttle, 20)
    print("\nmax live TXs  cycles     aborts")
    for depth, (cycles, aborts) in sweep.items():
        print(f"{depth:>12}  {cycles:>8,}  {aborts}")
    # Too tight a window strangles the pipeline.
    assert sweep[2][0] > sweep[20][0]
    # The default window completes without overflow aborts.
    assert sweep[20][1] == 0
