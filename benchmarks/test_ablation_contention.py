"""Ablation: the txctl contention-management subsystem under hostile loads.

The seed runtime's recovery loop (fixed restart bound, serialize-after-2)
handled the polite Table 1 suite but livelocked on transactions whose
write sets can never fit the cache hierarchy: serial *speculative*
re-execution still overflows, so it burned its recovery budget and raised
``abort livelock``.  The txctl escalation ladder ends in a non-speculative
serial fallback instead, so the same workloads now complete — at serial
speed, with sequential semantics preserved.  The sweep also shows the
pluggable policies differ where the taxonomy says they should: a
capacity-aware policy stops retrying a deterministic capacity abort a
full recovery earlier than cause-blind backoff.
"""

from conftest import run_once

from repro.experiments import format_contention_sweep, run_contention_sweep
from repro.runtime import run_workload
from repro.txctl import AbortCause, ContentionManager, make_policy
from repro.workloads import CapacityHogWorkload, HighContentionListWorkload


def test_contention_sweep(benchmark):
    result = run_once(benchmark, run_contention_sweep)
    print("\n" + format_contention_sweep(result))
    # Every (workload, policy) cell must preserve sequential semantics —
    # the subsystem's progress guarantee.
    assert all(cell.correct for cell in result.cells)
    # Conflict-only contention is cured speculatively (no fallback)…
    for cell in result.cells:
        if cell.workload == "contended-list":
            assert not cell.fallback
            assert cell.aborts_by_cause.get("conflict", 0) > 0
    # …while capacity overflow forces the non-speculative fallback.
    for cell in result.cells:
        if cell.workload == "capacity-hog":
            assert cell.fallback
            assert cell.aborts_by_cause.get("capacity", 0) > 0
    # The capacity-aware policy gives up on the deterministic abort
    # sooner than cause-blind exponential backoff.
    aware = result.cell("capacity-hog", "capacity-aware")
    blind = result.cell("capacity-hog", "backoff")
    assert aware.recoveries < blind.recoveries


def test_capacity_livelock_now_completes(benchmark):
    """The acceptance scenario: a workload that livelocked the seed
    runtime (capacity aborts survive serialisation) completes via the
    serial fallback with the result intact."""

    def attempt():
        workload = CapacityHogWorkload()
        result = run_workload(workload,
                              config=CapacityHogWorkload.tiny_config())
        return workload, result

    workload, result = run_once(benchmark, attempt)
    contention = result.system.stats.contention
    print(f"\ncapacity-hog on tiny caches: {result.cycles:,} cycles, "
          f"{result.recoveries} recoveries "
          f"({contention.cause_summary()}), "
          f"fallback iterations={contention.fallback_iterations}")
    assert result.extra["serial_fallback"]
    assert contention.cause_count(AbortCause.CAPACITY_OVERFLOW) > 0
    assert contention.fallback_iterations == workload.iterations
    assert workload.observed_result(result.system) == \
        workload.expected_result(result.system)


def test_backoff_beats_immediate_on_conflicts(benchmark):
    """Deterministic-jitter backoff spaces out conflicting attempts; with
    immediate retry the same conflict recurs until serialisation."""

    def run_policy(name):
        workload = HighContentionListWorkload(nodes=32, rmw_per_iteration=2)
        manager = ContentionManager(policy=make_policy(name))
        result = run_workload(workload, manager=manager)
        assert workload.observed_result(result.system) == \
            workload.expected_result(result.system)
        return result

    immediate = run_once(benchmark, run_policy, "immediate")
    backoff = run_policy("backoff")
    print(f"\nimmediate: {immediate.cycles:,} cycles "
          f"{immediate.recoveries} recoveries; "
          f"backoff: {backoff.cycles:,} cycles "
          f"{backoff.recoveries} recoveries "
          f"({backoff.system.stats.contention.backoff_cycles} stall cycles)")
    # Both complete; backoff must not need more recoveries than immediate.
    assert backoff.recoveries <= immediate.recoveries
    assert backoff.system.stats.contention.backoff_cycles > 0
