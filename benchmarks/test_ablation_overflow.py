"""Ablation: section 5.4 overflow handling vs the section 8 extension.

The base design aborts when a speculative version is evicted past the LLC
(mitigated by victim prioritisation); the "unlimited read and write sets"
extension spills such versions into a memory-side table instead.  Measures
both behaviours on a machine with deliberately tiny caches.
"""

import pytest
from conftest import run_once

from repro.core import MachineConfig
from repro.errors import ReproError
from repro.runtime import run_ps_dswp, run_sequential
from repro.workloads import Bzip2Workload

TINY_CACHES = dict(l1_size=2 * 1024, l1_assoc=4, l2_size=8 * 1024, l2_assoc=8)


def _run(unbounded: bool):
    config = MachineConfig(num_cores=4, unbounded_sets=unbounded,
                           **TINY_CACHES)
    workload = Bzip2Workload(iterations=4, block_lines=32)
    try:
        result = run_ps_dswp(workload, config)
    except ReproError:
        return workload, None
    return workload, result


def test_overflow_spill_vs_abort(benchmark):
    _, bounded = _run(unbounded=False)
    workload, unbounded = run_once(benchmark, _run, unbounded=True)
    assert unbounded is not None
    hierarchy = unbounded.system.hierarchy
    print(f"\nbounded caches : "
          f"{'completed with aborts/serialisation' if bounded else 'no forward progress'}"
          + (f" ({bounded.system.stats.aborted} aborts, "
             f"degraded={bounded.extra['degraded_serial']})" if bounded else ""))
    print(f"unbounded sets : completed, {hierarchy.stats.spec_overflow_spills} "
          f"versions spilled, {hierarchy.overflow_table.refills} refilled, "
          f"0 overflow aborts")
    # The extension absorbs the working set without a single abort...
    assert unbounded.system.stats.aborted == 0
    assert hierarchy.stats.spec_overflow_spills > 0
    # ...and the result is exact.
    assert workload.observed_result(unbounded.system) == \
        workload.expected_result(unbounded.system)
    # The bounded system either aborted repeatedly or had to serialise.
    if bounded is not None:
        assert bounded.system.stats.aborted > 0 \
            or bounded.extra["degraded_serial"]
