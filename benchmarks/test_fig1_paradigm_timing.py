"""Benchmark: regenerate Figure 1 (paradigm execution timing)."""

from conftest import run_once

from repro.experiments import format_fig1, run_fig1


def test_fig1_paradigm_timing(benchmark):
    result = run_once(benchmark, run_fig1, nodes=48, work_cycles=400)
    print("\n" + format_fig1(result))
    # Figure 1's shape: PS-DSWP > DSWP > Sequential >= DOACROSS on a
    # latency-bound pointer-chasing loop.
    assert result.speedups["PS-DSWP"] > result.speedups["DSWP"] \
        > result.speedups["DOACROSS"]
    assert result.speedups["PS-DSWP"] > 1.5
