"""Benchmark: regenerate Figure 9 (read/write-set sizes per transaction)."""

from conftest import run_once

from repro.experiments import format_fig9, run_fig9


def test_fig9_set_sizes(benchmark, runner):
    result = run_once(benchmark, run_fig9, runner=runner)
    print("\n" + format_fig9(result))
    # 256.bzip2 dominates (paper: 16,222 kB vs geomean 957 kB).
    assert result.largest() == "256.bzip2"
    bzip2 = result.rows["256.bzip2"].combined_kb
    assert bzip2 > 3 * result.geomean_combined_kb
    # ispell's tiny transactions sit at the bottom.
    assert min(result.rows.values(),
               key=lambda r: r.combined_kb).benchmark == "ispell"
